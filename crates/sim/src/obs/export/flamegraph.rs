//! Collapsed-stack flamegraph text: one line per unique stack,
//! `root;child;grandchild value`, the input format of `flamegraph.pl`
//! and `inferno-flamegraph`.
//!
//! Values are **self-time in nanoseconds** (a span's duration minus its
//! children's durations), so a rendered flamegraph's widths add up
//! correctly instead of double-counting nested spans. Stacks from
//! different threads are merged by name, matching profiler convention.

use std::collections::HashMap;

use crate::obs::SpanRecord;

use super::ExportError;

/// Aggregates spans into collapsed `(stack, self_ns)` pairs, sorted by
/// stack for deterministic output. Frame separators inside span names are
/// sanitized (`;` → `:`), since the format reserves them.
#[must_use]
pub fn collapse_spans(spans: &[SpanRecord]) -> Vec<(String, u64)> {
    // Children's total duration per parent id, for self-time.
    let mut child_ns: HashMap<u64, u64> = HashMap::new();
    for s in spans {
        if let Some(p) = s.parent {
            *child_ns.entry(p).or_insert(0) += s.duration_ns();
        }
    }
    let by_id: HashMap<u64, &SpanRecord> = spans.iter().map(|s| (s.id, s)).collect();
    let mut agg: HashMap<String, u64> = HashMap::new();
    for s in spans {
        // Build the frame path root→self by walking parents.
        let mut frames: Vec<&str> = Vec::with_capacity(s.depth as usize + 1);
        let mut cur = Some(s);
        while let Some(span) = cur {
            frames.push(&span.name);
            cur = span.parent.and_then(|p| by_id.get(&p).copied());
        }
        frames.reverse();
        let stack = frames
            .iter()
            .map(|f| f.replace(';', ":"))
            .collect::<Vec<_>>()
            .join(";");
        let self_ns = s
            .duration_ns()
            .saturating_sub(child_ns.get(&s.id).copied().unwrap_or(0));
        *agg.entry(stack).or_insert(0) += self_ns;
    }
    let mut out: Vec<(String, u64)> = agg.into_iter().collect();
    out.sort();
    out
}

/// Renders spans as collapsed-stack text (one `stack value` line each).
#[must_use]
pub fn spans_to_collapsed(spans: &[SpanRecord]) -> String {
    let mut out = String::new();
    for (stack, ns) in collapse_spans(spans) {
        out.push_str(&stack);
        out.push(' ');
        out.push_str(&ns.to_string());
        out.push('\n');
    }
    out
}

/// Parses collapsed-stack text back into `(stack, value)` pairs (blank
/// lines skipped, order preserved).
///
/// # Errors
///
/// Returns [`ExportError::Parse`] with a 1-based line number when a line
/// has no value or a non-integer value.
pub fn collapsed_from_text(text: &str) -> Result<Vec<(String, u64)>, ExportError> {
    let mut out = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim_end();
        if line.is_empty() {
            continue;
        }
        let (stack, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| ExportError::at(i + 1, "line has no value field"))?;
        let value = value
            .parse::<u64>()
            .map_err(|_| ExportError::at(i + 1, format!("bad value {value:?}")))?;
        out.push((stack.to_string(), value));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::borrow::Cow;

    fn span(id: u64, parent: Option<u64>, name: &'static str, s: u64, e: u64) -> SpanRecord {
        SpanRecord {
            id,
            parent,
            name: Cow::Borrowed(name),
            thread: 0,
            depth: 0,
            start_ns: s,
            end_ns: e,
        }
    }

    #[test]
    fn golden_self_time_collapse() {
        // step [0, 100] with children act [10, 30] and resolve [30, 90];
        // resolve has child fallback [40, 50].
        let spans = vec![
            span(0, None, "step", 0, 100),
            span(1, Some(0), "act", 10, 30),
            span(2, Some(0), "resolve", 30, 90),
            span(3, Some(2), "fallback", 40, 50),
        ];
        let text = spans_to_collapsed(&spans);
        assert_eq!(
            text,
            "step 20\nstep;act 20\nstep;resolve 50\nstep;resolve;fallback 10\n"
        );
    }

    #[test]
    fn repeated_stacks_aggregate_and_round_trip() {
        let spans = vec![
            span(0, None, "step", 0, 10),
            span(1, None, "step", 20, 35),
            span(2, Some(1), "act", 21, 25),
        ];
        let collapsed = collapse_spans(&spans);
        assert_eq!(
            collapsed,
            vec![("step".to_string(), 21), ("step;act".to_string(), 4)]
        );
        let back = collapsed_from_text(&spans_to_collapsed(&spans)).unwrap();
        assert_eq!(back, collapsed);
    }

    #[test]
    fn semicolons_in_names_are_sanitized() {
        let spans = vec![span(0, None, "a;b", 0, 5)];
        assert_eq!(spans_to_collapsed(&spans), "a:b 5\n");
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = collapsed_from_text("ok 5\nbroken\n").unwrap_err();
        let ExportError::Parse { line, .. } = err;
        assert_eq!(line, 2);
        assert!(collapsed_from_text("bad notanumber\n").is_err());
    }

    #[test]
    fn stack_names_with_spaces_parse_from_the_right() {
        let pairs = collapsed_from_text("a b;c 7\n").unwrap();
        assert_eq!(pairs, vec![("a b;c".to_string(), 7)]);
    }
}
