//! Chrome trace-event JSON ("JSON array format"): one complete event
//! (`"ph":"X"`) per span, loadable in `chrome://tracing` and
//! [Perfetto](https://ui.perfetto.dev).
//!
//! The viewer wants microsecond floats (`ts`/`dur`), which cannot carry a
//! `u64` of nanoseconds exactly — so every event also stashes the exact
//! integers (`start_ns`, `end_ns`, `id`, `parent`, `depth`) in `args`,
//! and [`spans_from_chrome_trace`] reads those back for a bit-exact
//! round trip (tested in `crates/sim/tests/obs.rs`).

use std::borrow::Cow;
use std::fmt::Write as _;

use crate::obs::SpanRecord;
use crate::telemetry::jsonl::{parse_json, JsonValue};

use super::ExportError;

fn escape_json(out: &mut String, s: &str) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Writes `ns` nanoseconds as an exact decimal microsecond literal
/// (`12345` ns → `12.345`): at most three fractional digits, so the text
/// is exact even where an `f64` would round.
fn fmt_us(out: &mut String, ns: u64) {
    let _ = write!(out, "{}", ns / 1000);
    let frac = ns % 1000;
    if frac != 0 {
        let _ = write!(out, ".{frac:03}");
    }
}

/// Renders spans as a Chrome trace-event JSON array. Load the output in
/// `chrome://tracing` or Perfetto; each span becomes a complete (`X`)
/// event on its thread's track, nested by time.
#[must_use]
pub fn spans_to_chrome_trace(spans: &[SpanRecord]) -> String {
    let mut out = String::with_capacity(64 + spans.len() * 160);
    out.push_str("[\n");
    for (i, s) in spans.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str("{\"name\":\"");
        escape_json(&mut out, &s.name);
        let _ = write!(out, "\",\"cat\":\"sim\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":", s.thread);
        fmt_us(&mut out, s.start_ns);
        out.push_str(",\"dur\":");
        fmt_us(&mut out, s.duration_ns());
        let _ = write!(
            out,
            ",\"args\":{{\"id\":{},\"parent\":{},\"depth\":{},\"start_ns\":{},\"end_ns\":{}}}}}",
            s.id,
            s.parent.map_or_else(|| "null".to_string(), |p| p.to_string()),
            s.depth,
            s.start_ns,
            s.end_ns,
        );
    }
    out.push_str("\n]\n");
    out
}

fn field_u64(v: &JsonValue, key: &str) -> Result<u64, ExportError> {
    let n = v
        .get(key)
        .and_then(JsonValue::as_f64)
        .ok_or_else(|| ExportError::at(0, format!("missing numeric key {key:?}")))?;
    if n.fract() == 0.0 && (0.0..9.007_199_254_740_992e15).contains(&n) {
        Ok(n as u64)
    } else {
        Err(ExportError::at(0, format!("key {key:?} is not a u64: {n}")))
    }
}

/// Parses a trace written by [`spans_to_chrome_trace`] back into spans,
/// reading the exact integers from `args` (ignoring the lossy `ts`/`dur`
/// floats). Events other than `"ph":"X"` are skipped.
///
/// # Errors
///
/// Returns [`ExportError::Parse`] on malformed JSON or a complete event
/// missing its `args` integers.
pub fn spans_from_chrome_trace(text: &str) -> Result<Vec<SpanRecord>, ExportError> {
    let doc = parse_json(text).map_err(|e| ExportError::at(0, e.to_string()))?;
    let events = doc
        .as_array()
        .ok_or_else(|| ExportError::at(0, "trace document is not a JSON array"))?;
    let mut spans = Vec::with_capacity(events.len());
    for ev in events {
        if ev.get("ph").and_then(JsonValue::as_str) != Some("X") {
            continue;
        }
        let name = ev
            .get("name")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| ExportError::at(0, "event without a name"))?
            .to_string();
        let args = ev
            .get("args")
            .ok_or_else(|| ExportError::at(0, "event without args"))?;
        let parent = match args.get("parent") {
            Some(JsonValue::Null) | None => None,
            Some(v) => Some(
                v.as_f64()
                    .filter(|n| n.fract() == 0.0 && *n >= 0.0)
                    .map(|n| n as u64)
                    .ok_or_else(|| ExportError::at(0, "bad parent id"))?,
            ),
        };
        spans.push(SpanRecord {
            id: field_u64(args, "id")?,
            parent,
            name: Cow::Owned(name),
            thread: field_u64(ev, "tid")?,
            depth: u32::try_from(field_u64(args, "depth")?)
                .map_err(|_| ExportError::at(0, "depth exceeds u32"))?,
            start_ns: field_u64(args, "start_ns")?,
            end_ns: field_u64(args, "end_ns")?,
        });
    }
    Ok(spans)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(id: u64, parent: Option<u64>, name: &'static str, t: u64, d: u32, s: u64, e: u64) -> SpanRecord {
        SpanRecord {
            id,
            parent,
            name: Cow::Borrowed(name),
            thread: t,
            depth: d,
            start_ns: s,
            end_ns: e,
        }
    }

    #[test]
    fn golden_trace_shape() {
        let spans = vec![span(0, None, "step", 0, 0, 1500, 9999)];
        let text = spans_to_chrome_trace(&spans);
        assert!(text.contains("\"ph\":\"X\""));
        assert!(text.contains("\"ts\":1.5"), "{text}");
        assert!(text.contains("\"dur\":8.499"), "{text}");
        assert!(text.contains("\"tid\":0"));
        assert!(text.contains("\"parent\":null"));
    }

    #[test]
    fn round_trip_is_exact_including_odd_names() {
        let spans = vec![
            span(0, None, "step", 0, 0, 0, 1_000_000_007),
            span(1, Some(0), "resolve \"fast\"\n", 0, 1, 3, 999),
            // Near the parser's 2^53 exact-integer ceiling (≈104 days of
            // nanoseconds — far beyond any real trace).
            span(2, None, "worker", 5, 0, (1 << 53) - 2, (1 << 53) - 1),
        ];
        let back = spans_from_chrome_trace(&spans_to_chrome_trace(&spans)).unwrap();
        assert_eq!(back, spans);
    }

    #[test]
    fn empty_trace_round_trips() {
        let back = spans_from_chrome_trace(&spans_to_chrome_trace(&[])).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn non_array_document_is_an_error() {
        assert!(spans_from_chrome_trace("{\"oops\":1}").is_err());
        assert!(spans_from_chrome_trace("not json").is_err());
    }
}
