//! The span tracer: scoped, hierarchical, monotonic-clock timing.

use std::borrow::Cow;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::ThreadId;
use std::time::Instant;

/// Sentinel `end_ns` for a span that has not closed yet.
const OPEN: u64 = u64::MAX;

/// One finished span: a named interval on the tracer's monotonic clock,
/// with its position in the span tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Dense id, in span *start* order (also the index into
    /// [`Tracer::finished_spans`] when no span is still open).
    pub id: u64,
    /// The span open on the same thread when this one started.
    pub parent: Option<u64>,
    /// Span name. Borrowed (`&'static str`, no allocation) when recorded
    /// live; owned when reconstructed by an exporter's parser.
    pub name: Cow<'static, str>,
    /// Dense per-tracer thread index (0 for the first thread that opened
    /// a span), stable across the tracer's lifetime.
    pub thread: u64,
    /// Nesting depth at start (0 = root span of its thread).
    pub depth: u32,
    /// Start, in nanoseconds since the tracer's epoch.
    pub start_ns: u64,
    /// End, in nanoseconds since the tracer's epoch (`>= start_ns`).
    pub end_ns: u64,
}

impl SpanRecord {
    /// The span's wall-clock duration in nanoseconds.
    #[must_use]
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

#[derive(Debug, Default)]
struct Inner {
    /// All spans ever started, indexed by id. `end_ns == OPEN` while open.
    spans: Vec<SpanRecord>,
    /// Registered OS thread ids; the index is the stable `thread` field.
    threads: Vec<ThreadId>,
    /// Per registered thread: the stack of currently open span ids.
    stacks: Vec<Vec<u64>>,
}

impl Inner {
    fn thread_index(&mut self, tid: ThreadId) -> usize {
        if let Some(i) = self.threads.iter().position(|&t| t == tid) {
            return i;
        }
        self.threads.push(tid);
        self.stacks.push(Vec::new());
        self.threads.len() - 1
    }
}

/// A thread-safe span tracer with a compile-time-cheap disabled path.
///
/// Open a span with [`Tracer::span`]; the returned [`SpanGuard`] closes it
/// on drop (RAII), so early returns, `?`, and panics all record honest end
/// times. Spans opened while another span is open on the same thread
/// become its children; each thread has its own span stack, so concurrent
/// montecarlo workers can share one tracer.
///
/// When disabled ([`Tracer::set_enabled`]), `span()` is one relaxed atomic
/// load returning an inert guard — no lock, no allocation, no clock read.
/// The `tracer_overhead_n2048` bench pins this at ≤ 2% of step cost.
///
/// Timing uses [`Instant`] (monotonic) relative to the tracer's creation,
/// so `start_ns`/`end_ns` are comparable across threads and spans.
#[derive(Debug)]
pub struct Tracer {
    enabled: AtomicBool,
    epoch: Instant,
    inner: Mutex<Inner>,
}

impl Tracer {
    /// A new, enabled tracer. `Arc` because guards keep the tracer alive
    /// past any borrow of the instrumented structure.
    #[must_use]
    pub fn new() -> Arc<Self> {
        Arc::new(Tracer {
            enabled: AtomicBool::new(true),
            epoch: Instant::now(),
            inner: Mutex::new(Inner::default()),
        })
    }

    /// A new tracer that starts disabled (record nothing until
    /// [`Tracer::set_enabled`] flips it on).
    #[must_use]
    pub fn disabled() -> Arc<Self> {
        let t = Tracer::new();
        t.enabled.store(false, Ordering::Relaxed);
        t
    }

    /// Turns recording on or off. Spans already open keep recording to
    /// completion; new `span()` calls observe the flag immediately.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Whether the tracer is currently recording.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Nanoseconds since the tracer's epoch (its creation instant).
    #[must_use]
    pub fn now_ns(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Opens a span named `name` as a child of the current thread's
    /// innermost open span. Returns the guard that closes it on drop.
    ///
    /// Disabled path: one relaxed load, an inert guard, nothing else.
    pub fn span(self: &Arc<Self>, name: &'static str) -> SpanGuard {
        if !self.enabled.load(Ordering::Relaxed) {
            return SpanGuard { active: None };
        }
        let start_ns = self.now_ns();
        let mut inner = self.lock();
        let t = inner.thread_index(std::thread::current().id());
        let parent = inner.stacks[t].last().copied();
        let depth = inner.stacks[t].len() as u32;
        let id = inner.spans.len() as u64;
        inner.spans.push(SpanRecord {
            id,
            parent,
            name: Cow::Borrowed(name),
            thread: t as u64,
            depth,
            start_ns,
            end_ns: OPEN,
        });
        inner.stacks[t].push(id);
        drop(inner);
        SpanGuard {
            active: Some(ActiveSpan {
                tracer: Arc::clone(self),
                id,
                thread: t,
            }),
        }
    }

    /// Snapshot of every *finished* span, in start order. Open spans are
    /// excluded (their end time is not known yet).
    #[must_use]
    pub fn finished_spans(&self) -> Vec<SpanRecord> {
        self.lock()
            .spans
            .iter()
            .filter(|s| s.end_ns != OPEN)
            .cloned()
            .collect()
    }

    /// Number of spans currently open across all threads.
    #[must_use]
    pub fn open_spans(&self) -> usize {
        self.lock().stacks.iter().map(Vec::len).sum()
    }

    /// Current nesting depth on the calling thread (0 = no open span).
    #[must_use]
    pub fn current_depth(&self) -> usize {
        let tid = std::thread::current().id();
        let inner = self.lock();
        inner
            .threads
            .iter()
            .position(|&t| t == tid)
            .map_or(0, |i| inner.stacks[i].len())
    }

    /// Discards all recorded spans and the thread registry. Intended for
    /// reuse between runs; any still-open guard from before the clear
    /// closes as a silent no-op (its id no longer names a live span).
    pub fn clear(&self) {
        let mut inner = self.lock();
        inner.spans.clear();
        inner.threads.clear();
        inner.stacks.clear();
    }

    /// Mutex discipline: a tracer must keep working after a panic inside
    /// an instrumented region poisoned the lock (observability code must
    /// never turn one failure into two).
    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Closes span `id` at the current time, repairing the stack if guards
    /// were dropped out of order: everything above `id` on the thread's
    /// stack (children whose guards leaked or were dropped late) closes at
    /// the same instant, and a guard whose span was already closed this
    /// way is a no-op.
    fn close(&self, id: u64, thread: usize) {
        let end_ns = self.now_ns();
        let mut inner = self.lock();
        let doomed: Vec<u64> = {
            let Some(stack) = inner.stacks.get_mut(thread) else {
                return; // cleared since the guard was created
            };
            let Some(pos) = stack.iter().rposition(|&s| s == id) else {
                return; // already closed by an ancestor's drop
            };
            stack.drain(pos..).collect()
        };
        for s in doomed {
            let rec = &mut inner.spans[s as usize];
            if rec.end_ns == OPEN {
                rec.end_ns = end_ns.max(rec.start_ns);
            }
        }
    }
}

#[derive(Debug)]
struct ActiveSpan {
    tracer: Arc<Tracer>,
    id: u64,
    thread: usize,
}

/// Closes its span when dropped. Hold it for the scope you want timed:
///
/// ```
/// # use fading_sim::obs::Tracer;
/// let tracer = Tracer::new();
/// {
///     let _outer = tracer.span("outer");
///     let _inner = tracer.span("inner"); // child of "outer"
/// } // both close here, inner first
/// assert_eq!(tracer.finished_spans().len(), 2);
/// ```
///
/// Guards may be dropped out of order (early returns, `?`, panics,
/// explicit `drop`); the tracer repairs its stack rather than corrupting
/// parentage — see the `obs` integration tests.
#[derive(Debug)]
#[must_use = "dropping the guard immediately records an empty span"]
pub struct SpanGuard {
    /// `None` for the disabled path: drop is then a no-op.
    active: Option<ActiveSpan>,
}

impl SpanGuard {
    /// Whether this guard is actually recording (false when the tracer
    /// was disabled at `span()` time).
    #[must_use]
    pub fn is_recording(&self) -> bool {
        self.active.is_some()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(a) = self.active.take() {
            a.tracer.close(a.id, a.thread);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nesting_records_parent_child_and_depth() {
        let tracer = Tracer::new();
        {
            let _a = tracer.span("a");
            {
                let _b = tracer.span("b");
                let _c = tracer.span("c");
            }
            let _d = tracer.span("d");
        }
        let spans = tracer.finished_spans();
        assert_eq!(spans.len(), 4);
        let by_name = |n: &str| spans.iter().find(|s| s.name == n).unwrap();
        let (a, b, c, d) = (by_name("a"), by_name("b"), by_name("c"), by_name("d"));
        assert_eq!(a.parent, None);
        assert_eq!(a.depth, 0);
        assert_eq!(b.parent, Some(a.id));
        assert_eq!(c.parent, Some(b.id));
        assert_eq!(c.depth, 2);
        assert_eq!(d.parent, Some(a.id));
        assert!(a.start_ns <= b.start_ns && b.end_ns <= a.end_ns);
        assert!(c.start_ns >= b.start_ns && c.end_ns <= b.end_ns);
        assert_eq!(tracer.open_spans(), 0);
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let tracer = Tracer::disabled();
        let g = tracer.span("ghost");
        assert!(!g.is_recording());
        drop(g);
        assert!(tracer.finished_spans().is_empty());
        tracer.set_enabled(true);
        drop(tracer.span("real"));
        assert_eq!(tracer.finished_spans().len(), 1);
    }

    #[test]
    fn spans_on_different_threads_do_not_nest() {
        let tracer = Tracer::new();
        let _main = tracer.span("main");
        let t2 = {
            let tracer = Arc::clone(&tracer);
            std::thread::spawn(move || {
                let _w = tracer.span("worker");
            })
        };
        t2.join().unwrap();
        let spans = tracer.finished_spans();
        let w = spans.iter().find(|s| s.name == "worker").unwrap();
        assert_eq!(w.parent, None, "cross-thread spans must not adopt parents");
        assert_eq!(w.depth, 0);
        assert_ne!(w.thread, 0, "worker thread gets its own index");
    }

    #[test]
    fn clear_resets_and_stale_guards_are_noops() {
        let tracer = Tracer::new();
        let g = tracer.span("stale");
        tracer.clear();
        drop(g); // must not panic or resurrect anything
        assert!(tracer.finished_spans().is_empty());
        assert_eq!(tracer.open_spans(), 0);
        drop(tracer.span("fresh"));
        assert_eq!(tracer.finished_spans().len(), 1);
    }

    #[test]
    fn monotonic_ids_in_start_order() {
        let tracer = Tracer::new();
        for _ in 0..5 {
            drop(tracer.span("s"));
        }
        let spans = tracer.finished_spans();
        let ids: Vec<u64> = spans.iter().map(|s| s.id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
        assert!(spans.windows(2).all(|w| w[0].start_ns <= w[1].start_ns));
    }
}
