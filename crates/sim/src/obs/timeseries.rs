//! Fixed-capacity time-series recorder over the fleet's counters.
//!
//! The Prometheus scrape answers "what are the totals *right now*"; this
//! module answers "what happened *over the last minute*". A monitor loop
//! periodically builds a [`TsSample`] — a flat snapshot of the cumulative
//! counters ([`EngineCounters`] totals, trials finished, supervision
//! tallies, job tallies) plus the instantaneous gauges (queue depth, jobs
//! in flight) — and feeds it to a [`TimeSeries`], which stores the
//! **delta** against the previous sample as a [`TsFrame`] in a bounded
//! ring buffer.
//!
//! Deltas rather than levels because that is what a dashboard plots: a
//! frame *is* a rate once divided by its `dt_ms`, old frames can be
//! evicted without breaking later ones, and a counter reset (server
//! restart) clamps to zero instead of going negative (all deltas are
//! `saturating_sub`). The ring is fixed-capacity: recording is O(1), the
//! memory bound is set at construction, and eviction is counted
//! ([`TimeSeries::evicted`]) rather than silent.
//!
//! Windowed rates over the newest frames come from [`TimeSeries::rates`]:
//! rounds/sec and trials/sec (from live per-trial progress), the
//! fallback fraction (exact fallbacks over listeners the far-field ladder
//! resolved), and the jammer-active fraction (jammed rounds over engine
//! rounds). Engine-derived fields advance when a job's counters merge
//! (job completion), so those two fractions move in job-sized steps;
//! trials/rounds advance per trial.
//!
//! Frames have a one-line JSON form with the workspace's usual bit-exact
//! round-trip guarantee ([`frame_to_json`] / [`frame_from_json`], file
//! helpers [`write_frames`] / [`read_frames`]) — trivially exact here
//! since every field is an integer.

use std::collections::VecDeque;
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use crate::obs::EngineCounters;
use crate::telemetry::jsonl::{parse_json, JsonValue, JsonlError};

/// One snapshot of the fleet's cumulative counters and gauges, stamped
/// with a caller-supplied monotonic timestamp (milliseconds since the
/// recorder's epoch — callers use `Instant::elapsed`, tests use plain
/// integers).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TsSample {
    /// Milliseconds since the monitor's epoch. Must be non-decreasing
    /// across samples fed to one [`TimeSeries`].
    pub t_ms: u64,
    /// Trials finished (live, from progress events).
    pub trials: u64,
    /// Rounds executed summed over finished trials (live).
    pub trial_rounds: u64,
    /// Panicked attempts that were re-run (live).
    pub retried: u64,
    /// Trials that hit the watchdog (live).
    pub timed_out: u64,
    /// Jobs completed.
    pub jobs_completed: u64,
    /// Jobs failed.
    pub jobs_failed: u64,
    /// [`EngineCounters::rounds`] total (advances at job completion).
    pub engine_rounds: u64,
    /// Rounds served by the flat far-field engine.
    pub farfield_rounds: u64,
    /// Rounds served by the hierarchical far-field engine.
    pub hierarchical_rounds: u64,
    /// Rounds served through the gain cache.
    pub gain_cache_rounds: u64,
    /// Rounds served by the exact scan.
    pub exact_rounds: u64,
    /// Rounds served by the instrumented scan.
    pub instrumented_rounds: u64,
    /// Rounds with at least one active jammer.
    pub jammed_rounds: u64,
    /// Far-field listeners that fell back to the exact path.
    pub fallback_listeners: u64,
    /// Far-field listeners the decision ladder resolved.
    pub resolved_listeners: u64,
    /// Queue depth **gauge** (not cumulative).
    pub queue_depth: u64,
    /// Jobs in flight **gauge** (not cumulative).
    pub jobs_in_flight: u64,
}

impl TsSample {
    /// An all-zero sample at `t_ms`.
    #[must_use]
    pub fn at(t_ms: u64) -> Self {
        TsSample {
            t_ms,
            ..TsSample::default()
        }
    }

    /// Copies the engine-derived cumulative fields out of a merged
    /// [`EngineCounters`] total.
    pub fn observe_counters(&mut self, c: &EngineCounters) {
        self.engine_rounds = c.rounds;
        self.farfield_rounds = c.farfield_rounds;
        self.hierarchical_rounds = c.hierarchical_rounds;
        self.gain_cache_rounds = c.gain_cache_rounds;
        self.exact_rounds = c.exact_rounds;
        self.instrumented_rounds = c.instrumented_rounds;
        self.jammed_rounds = c.jammed_rounds;
        self.fallback_listeners = c.farfield.exact_fallbacks();
        self.resolved_listeners = c.farfield.listeners_resolved();
    }
}

/// The delta between two consecutive [`TsSample`]s: every cumulative
/// field becomes a `d_*` increment (saturating, so a counter reset reads
/// as zero progress, never underflow); the two gauges are carried at
/// their sampled absolute values.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TsFrame {
    /// Timestamp of the newer sample, ms since the monitor's epoch.
    pub t_ms: u64,
    /// Milliseconds elapsed since the previous sample.
    pub dt_ms: u64,
    /// Trials finished in this frame.
    pub d_trials: u64,
    /// Rounds executed by trials finished in this frame.
    pub d_trial_rounds: u64,
    /// Retried attempts in this frame.
    pub d_retried: u64,
    /// Watchdog timeouts in this frame.
    pub d_timed_out: u64,
    /// Jobs completed in this frame.
    pub d_jobs_completed: u64,
    /// Jobs failed in this frame.
    pub d_jobs_failed: u64,
    /// Engine rounds merged in this frame.
    pub d_engine_rounds: u64,
    /// Flat far-field rounds merged in this frame.
    pub d_farfield_rounds: u64,
    /// Hierarchical far-field rounds merged in this frame.
    pub d_hierarchical_rounds: u64,
    /// Gain-cache rounds merged in this frame.
    pub d_gain_cache_rounds: u64,
    /// Exact-scan rounds merged in this frame.
    pub d_exact_rounds: u64,
    /// Instrumented rounds merged in this frame.
    pub d_instrumented_rounds: u64,
    /// Jammed rounds merged in this frame.
    pub d_jammed_rounds: u64,
    /// Exact-fallback listeners merged in this frame.
    pub d_fallback_listeners: u64,
    /// Ladder-resolved listeners merged in this frame.
    pub d_resolved_listeners: u64,
    /// Queue depth gauge at this frame's sample.
    pub queue_depth: u64,
    /// Jobs-in-flight gauge at this frame's sample.
    pub jobs_in_flight: u64,
}

impl TsFrame {
    fn delta(prev: &TsSample, next: &TsSample) -> TsFrame {
        TsFrame {
            t_ms: next.t_ms,
            dt_ms: next.t_ms.saturating_sub(prev.t_ms),
            d_trials: next.trials.saturating_sub(prev.trials),
            d_trial_rounds: next.trial_rounds.saturating_sub(prev.trial_rounds),
            d_retried: next.retried.saturating_sub(prev.retried),
            d_timed_out: next.timed_out.saturating_sub(prev.timed_out),
            d_jobs_completed: next.jobs_completed.saturating_sub(prev.jobs_completed),
            d_jobs_failed: next.jobs_failed.saturating_sub(prev.jobs_failed),
            d_engine_rounds: next.engine_rounds.saturating_sub(prev.engine_rounds),
            d_farfield_rounds: next.farfield_rounds.saturating_sub(prev.farfield_rounds),
            d_hierarchical_rounds: next
                .hierarchical_rounds
                .saturating_sub(prev.hierarchical_rounds),
            d_gain_cache_rounds: next.gain_cache_rounds.saturating_sub(prev.gain_cache_rounds),
            d_exact_rounds: next.exact_rounds.saturating_sub(prev.exact_rounds),
            d_instrumented_rounds: next
                .instrumented_rounds
                .saturating_sub(prev.instrumented_rounds),
            d_jammed_rounds: next.jammed_rounds.saturating_sub(prev.jammed_rounds),
            d_fallback_listeners: next
                .fallback_listeners
                .saturating_sub(prev.fallback_listeners),
            d_resolved_listeners: next
                .resolved_listeners
                .saturating_sub(prev.resolved_listeners),
            queue_depth: next.queue_depth,
            jobs_in_flight: next.jobs_in_flight,
        }
    }
}

/// Windowed rates over the newest frames of a [`TimeSeries`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Rates {
    /// Wall-clock span the window covers, in milliseconds.
    pub window_ms: u64,
    /// Finished trials per second.
    pub trials_per_sec: f64,
    /// Trial rounds per second (live, per-trial granularity).
    pub rounds_per_sec: f64,
    /// Exact fallbacks over ladder-resolved listeners in the window
    /// (0 when no far-field listeners were resolved).
    pub fallback_fraction: f64,
    /// Jammed rounds over engine rounds in the window (0 when no engine
    /// rounds were merged).
    pub jammer_fraction: f64,
}

/// The bounded delta recorder. See the module docs for semantics.
#[derive(Debug, Clone)]
pub struct TimeSeries {
    capacity: usize,
    last: Option<TsSample>,
    frames: VecDeque<TsFrame>,
    evicted: u64,
}

impl TimeSeries {
    /// A recorder holding at most `capacity` frames (clamped to ≥ 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        TimeSeries {
            capacity: capacity.max(1),
            last: None,
            frames: VecDeque::new(),
            evicted: 0,
        }
    }

    /// Feeds one snapshot. The first sample only establishes the baseline
    /// (no frame — there is nothing to delta against); every later sample
    /// appends one frame, evicting the oldest when the ring is full.
    /// Returns the frame it appended.
    pub fn record(&mut self, sample: TsSample) -> Option<TsFrame> {
        let frame = self.last.as_ref().map(|prev| TsFrame::delta(prev, &sample));
        self.last = Some(sample);
        if let Some(frame) = frame {
            if self.frames.len() == self.capacity {
                self.frames.pop_front();
                self.evicted += 1;
            }
            self.frames.push_back(frame);
        }
        frame
    }

    /// The stored frames, oldest first.
    pub fn frames(&self) -> impl Iterator<Item = &TsFrame> {
        self.frames.iter()
    }

    /// The newest frame, if any.
    #[must_use]
    pub fn latest(&self) -> Option<&TsFrame> {
        self.frames.back()
    }

    /// Frames currently held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// `true` when no frame has been recorded yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// The construction-time ring capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Frames evicted to make room since construction.
    #[must_use]
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Windowed rates over the newest `window` frames (fewer if the ring
    /// holds fewer). All-zero when the window is empty or spans zero
    /// milliseconds.
    #[must_use]
    pub fn rates(&self, window: usize) -> Rates {
        let skip = self.frames.len().saturating_sub(window);
        let mut dt_ms = 0u64;
        let (mut trials, mut rounds) = (0u64, 0u64);
        let (mut fallback, mut resolved) = (0u64, 0u64);
        let (mut jammed, mut engine) = (0u64, 0u64);
        for f in self.frames.iter().skip(skip) {
            dt_ms += f.dt_ms;
            trials += f.d_trials;
            rounds += f.d_trial_rounds;
            fallback += f.d_fallback_listeners;
            resolved += f.d_resolved_listeners;
            jammed += f.d_jammed_rounds;
            engine += f.d_engine_rounds;
        }
        let per_sec = |count: u64| {
            if dt_ms == 0 {
                0.0
            } else {
                count as f64 * 1000.0 / dt_ms as f64
            }
        };
        let fraction = |num: u64, den: u64| if den == 0 { 0.0 } else { num as f64 / den as f64 };
        Rates {
            window_ms: dt_ms,
            trials_per_sec: per_sec(trials),
            rounds_per_sec: per_sec(rounds),
            fallback_fraction: fraction(fallback, resolved),
            jammer_fraction: fraction(jammed, engine),
        }
    }
}

/// One wire field of a frame: its JSON key and the accessor reading it.
type FrameField = (&'static str, fn(&TsFrame) -> u64);

/// All (key, value-accessor) pairs of a frame, in wire order. One table
/// drives the writer, the parser, and keeps the round-trip test honest.
const FRAME_FIELDS: [FrameField; 19] = [
    ("t_ms", |f| f.t_ms),
    ("dt_ms", |f| f.dt_ms),
    ("d_trials", |f| f.d_trials),
    ("d_trial_rounds", |f| f.d_trial_rounds),
    ("d_retried", |f| f.d_retried),
    ("d_timed_out", |f| f.d_timed_out),
    ("d_jobs_completed", |f| f.d_jobs_completed),
    ("d_jobs_failed", |f| f.d_jobs_failed),
    ("d_engine_rounds", |f| f.d_engine_rounds),
    ("d_farfield_rounds", |f| f.d_farfield_rounds),
    ("d_hierarchical_rounds", |f| f.d_hierarchical_rounds),
    ("d_gain_cache_rounds", |f| f.d_gain_cache_rounds),
    ("d_exact_rounds", |f| f.d_exact_rounds),
    ("d_instrumented_rounds", |f| f.d_instrumented_rounds),
    ("d_jammed_rounds", |f| f.d_jammed_rounds),
    ("d_fallback_listeners", |f| f.d_fallback_listeners),
    ("d_resolved_listeners", |f| f.d_resolved_listeners),
    ("queue_depth", |f| f.queue_depth),
    ("jobs_in_flight", |f| f.jobs_in_flight),
];

fn set_frame_field(frame: &mut TsFrame, key: &str, value: u64) {
    match key {
        "t_ms" => frame.t_ms = value,
        "dt_ms" => frame.dt_ms = value,
        "d_trials" => frame.d_trials = value,
        "d_trial_rounds" => frame.d_trial_rounds = value,
        "d_retried" => frame.d_retried = value,
        "d_timed_out" => frame.d_timed_out = value,
        "d_jobs_completed" => frame.d_jobs_completed = value,
        "d_jobs_failed" => frame.d_jobs_failed = value,
        "d_engine_rounds" => frame.d_engine_rounds = value,
        "d_farfield_rounds" => frame.d_farfield_rounds = value,
        "d_hierarchical_rounds" => frame.d_hierarchical_rounds = value,
        "d_gain_cache_rounds" => frame.d_gain_cache_rounds = value,
        "d_exact_rounds" => frame.d_exact_rounds = value,
        "d_instrumented_rounds" => frame.d_instrumented_rounds = value,
        "d_jammed_rounds" => frame.d_jammed_rounds = value,
        "d_fallback_listeners" => frame.d_fallback_listeners = value,
        "d_resolved_listeners" => frame.d_resolved_listeners = value,
        "queue_depth" => frame.queue_depth = value,
        "jobs_in_flight" => frame.jobs_in_flight = value,
        _ => unreachable!("set_frame_field called with a key not in FRAME_FIELDS"),
    }
}

/// Serializes one frame as a single JSON line (no trailing newline),
/// stable key order.
#[must_use]
pub fn frame_to_json(frame: &TsFrame) -> String {
    use std::fmt::Write as _;
    let mut s = String::with_capacity(FRAME_FIELDS.len() * 24);
    s.push('{');
    for (i, (key, get)) in FRAME_FIELDS.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "\"{key}\":{}", get(frame));
    }
    s.push('}');
    s
}

/// Parses the output of [`frame_to_json`]. Unknown keys are ignored
/// (streams stay readable across schema additions); missing keys are an
/// error.
///
/// # Errors
///
/// [`JsonlError::Parse`] on malformed JSON or a missing field.
pub fn frame_from_json(line: &str) -> Result<TsFrame, JsonlError> {
    let v = parse_json(line)?;
    let mut frame = TsFrame::default();
    for (key, _) in &FRAME_FIELDS {
        let value = v.get(key).and_then(JsonValue::as_f64).ok_or_else(|| {
            JsonlError::Parse {
                line: 0,
                msg: format!("missing or non-numeric {key:?}"),
            }
        })?;
        set_frame_field(&mut frame, key, value as u64);
    }
    Ok(frame)
}

/// Writes frames to `path` as JSONL, one frame per line.
///
/// # Errors
///
/// Propagates any underlying I/O failure.
pub fn write_frames<'a>(
    path: &Path,
    frames: impl IntoIterator<Item = &'a TsFrame>,
) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    for frame in frames {
        w.write_all(frame_to_json(frame).as_bytes())?;
        w.write_all(b"\n")?;
    }
    w.flush()
}

/// Reads a frame stream written by [`write_frames`], skipping blank lines.
///
/// # Errors
///
/// [`JsonlError::Io`] on I/O failure, [`JsonlError::Parse`] (with the
/// 1-based line number) on a malformed line.
pub fn read_frames(path: &Path) -> Result<Vec<TsFrame>, JsonlError> {
    let reader = BufReader::new(File::open(path)?);
    let mut frames = Vec::new();
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        frames.push(frame_from_json(&line).map_err(|e| match e {
            JsonlError::Parse { msg, .. } => JsonlError::Parse { line: idx + 1, msg },
            io => io,
        })?);
    }
    Ok(frames)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(t_ms: u64, trials: u64, rounds: u64) -> TsSample {
        TsSample {
            t_ms,
            trials,
            trial_rounds: rounds,
            queue_depth: trials % 5,
            jobs_in_flight: 1,
            ..TsSample::default()
        }
    }

    #[test]
    fn first_sample_is_baseline_only() {
        let mut ts = TimeSeries::new(8);
        assert!(ts.record(sample(100, 3, 30)).is_none());
        assert!(ts.is_empty());
        let frame = ts.record(sample(200, 5, 55)).unwrap();
        assert_eq!(frame.dt_ms, 100);
        assert_eq!(frame.d_trials, 2);
        assert_eq!(frame.d_trial_rounds, 25);
        assert_eq!(frame.queue_depth, 0, "gauge carries the sampled value");
        assert_eq!(ts.len(), 1);
    }

    #[test]
    fn ring_evicts_oldest_and_counts() {
        let mut ts = TimeSeries::new(3);
        for i in 0..10u64 {
            ts.record(sample(i * 100, i, i * 7));
        }
        // 10 samples → 9 frames, ring holds the newest 3.
        assert_eq!(ts.len(), 3);
        assert_eq!(ts.evicted(), 6);
        assert_eq!(ts.capacity(), 3);
        let ts_values: Vec<u64> = ts.frames().map(|f| f.t_ms).collect();
        assert_eq!(ts_values, vec![700, 800, 900]);
        assert_eq!(ts.latest().unwrap().t_ms, 900);
    }

    #[test]
    fn counter_reset_clamps_to_zero() {
        let mut ts = TimeSeries::new(4);
        ts.record(sample(0, 100, 1000));
        let frame = ts.record(sample(50, 2, 20)).unwrap();
        assert_eq!(frame.d_trials, 0, "reset reads as zero progress");
        assert_eq!(frame.d_trial_rounds, 0);
        assert_eq!(frame.dt_ms, 50);
    }

    #[test]
    fn rates_over_window() {
        let mut ts = TimeSeries::new(16);
        let mut s = TsSample::at(0);
        ts.record(s);
        // 4 frames, 500 ms each: 2 trials and 100 rounds per frame,
        // fallback 3/60, jammed 10/50 per frame.
        for i in 1..=4u64 {
            s.t_ms = i * 500;
            s.trials += 2;
            s.trial_rounds += 100;
            s.fallback_listeners += 3;
            s.resolved_listeners += 60;
            s.jammed_rounds += 10;
            s.engine_rounds += 50;
            ts.record(s);
        }
        let r = ts.rates(4);
        assert_eq!(r.window_ms, 2000);
        assert!((r.trials_per_sec - 4.0).abs() < 1e-12);
        assert!((r.rounds_per_sec - 200.0).abs() < 1e-12);
        assert!((r.fallback_fraction - 0.05).abs() < 1e-12);
        assert!((r.jammer_fraction - 0.2).abs() < 1e-12);
        // A window wider than the ring uses whatever is there.
        assert_eq!(ts.rates(100).window_ms, 2000);
        // Empty window → zeros.
        assert_eq!(TimeSeries::new(4).rates(8), Rates::default());
    }

    #[test]
    fn observe_counters_copies_engine_fields() {
        let mut c = EngineCounters {
            rounds: 40,
            farfield_rounds: 10,
            hierarchical_rounds: 20,
            gain_cache_rounds: 4,
            exact_rounds: 5,
            instrumented_rounds: 1,
            jammed_rounds: 7,
            ..EngineCounters::default()
        };
        c.farfield.bracket_decisions = 90;
        c.farfield.far_rival_fallbacks = 9;
        let mut s = TsSample::at(5);
        s.observe_counters(&c);
        assert_eq!(s.engine_rounds, 40);
        assert_eq!(s.hierarchical_rounds, 20);
        assert_eq!(s.jammed_rounds, 7);
        assert_eq!(s.fallback_listeners, c.farfield.exact_fallbacks());
        assert_eq!(s.resolved_listeners, c.farfield.listeners_resolved());
    }

    #[test]
    fn frame_json_round_trips_bit_exact() {
        // A frame with every field distinct, so a swapped key would show.
        let mut frame = TsFrame::default();
        for (i, (key, _)) in FRAME_FIELDS.iter().enumerate() {
            set_frame_field(&mut frame, key, (i as u64 + 1) * 1001);
        }
        let line = frame_to_json(&frame);
        assert_eq!(frame_from_json(&line).unwrap(), frame);
        // Unknown keys are ignored; missing keys are an error.
        let with_extra = line.replacen('{', "{\"schema\":9,", 1);
        assert_eq!(frame_from_json(&with_extra).unwrap(), frame);
        assert!(frame_from_json("{\"t_ms\":1}").is_err());
        assert!(frame_from_json("nope").is_err());
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("fading-sim-timeseries-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("frames.jsonl");
        let mut ts = TimeSeries::new(8);
        for i in 0..5u64 {
            ts.record(sample(i * 250, i * 3, i * 40));
        }
        let frames: Vec<TsFrame> = ts.frames().copied().collect();
        write_frames(&path, &frames).unwrap();
        assert_eq!(read_frames(&path).unwrap(), frames);
        std::fs::remove_file(&path).ok();
    }
}
