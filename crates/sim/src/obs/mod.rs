//! Observability: spans, engine-decision counters, and exporters.
//!
//! Where [`telemetry`](crate::telemetry) answers *what happened* (the
//! deterministic per-round [`RoundEvent`](crate::telemetry::RoundEvent)
//! stream), this module answers *where the time went* and *which decision
//! path fired*:
//!
//! * [`Tracer`] — a hand-rolled, zero-dependency span tracer. Scoped
//!   [`SpanGuard`]s record hierarchical, monotonic-clock
//!   [`SpanRecord`]s; the disabled path costs one atomic load and
//!   allocates nothing. Attach to a run with
//!   [`Simulation::set_tracer`](crate::Simulation::set_tracer).
//! * [`EngineCounters`] — one struct unifying the far-field decision
//!   ladder's per-rung counters ([`FarFieldStats`]), gain-cache activity,
//!   and fault-perturbation activity, read via
//!   [`Simulation::engine_counters`](crate::Simulation::engine_counters)
//!   and exportable as JSONL through
//!   [`telemetry::jsonl`](crate::telemetry::jsonl).
//! * [`export`] — Prometheus text exposition, Chrome trace-event JSON
//!   (loadable in `chrome://tracing` / [Perfetto](https://ui.perfetto.dev)),
//!   and collapsed-stack flamegraph text. Every format has a parser, so
//!   round-trips are tested rather than assumed.
//!
//! * [`progress`] — typed supervised-trial progress events
//!   ([`ProgressEvent`]) delivered to a [`ProgressSink`] by the observed
//!   Monte-Carlo runners, so a fleet is no longer a black box between
//!   submit and summary.
//! * [`timeseries`] — a fixed-capacity ring-buffer recorder that turns
//!   periodic counter snapshots ([`TsSample`]) into monotonic deltas
//!   ([`TsFrame`]) with windowed rates, for live dashboards.
//!
//! Nothing here participates in the determinism contract: attaching a
//! tracer never changes a run's outcome (spans only *observe* the step
//! loop), attaching a progress sink never changes a trial's result, and
//! wall-clock measurements differ between byte-identical runs.
//!
//! [`FarFieldStats`]: fading_channel::FarFieldStats

mod counters;
pub mod export;
pub mod progress;
pub mod timeseries;
mod tracer;

pub use counters::{EngineCounters, ResolvePath};
pub use progress::{MemoryProgress, NoopProgress, ProgressEvent, ProgressSink};
pub use timeseries::{Rates, TimeSeries, TsFrame, TsSample};
pub use tracer::{SpanGuard, SpanRecord, Tracer};
