//! The node-local protocol interface.

use rand::rngs::SmallRng;

use fading_channel::Reception;

use crate::Action;

/// A node-local contention-resolution protocol: one instance per node.
///
/// The simulator drives each **active** protocol instance through the
/// synchronous-round loop:
///
/// 1. [`Protocol::act`] — choose to transmit or listen this round (using the
///    node's private, seeded RNG);
/// 2. the channel resolves receptions;
/// 3. [`Protocol::feedback`] — listeners learn what they observed
///    (transmitters receive no feedback: the model gives transmitters no
///    information about the fate of their transmission);
/// 4. [`Protocol::is_active`] — a node that reports inactive stops
///    participating permanently (it is never asked to act again).
///
/// Protocols receive **no a-priori information** about the number or
/// identity of other participants unless a specific algorithm is documented
/// to require it (e.g. ALOHA's `1/N` rate or Jurdziński–Stachowiak's
/// polynomial bound on `n`), in which case that knowledge is a constructor
/// parameter.
///
/// Implementations must be deterministic functions of their constructor
/// arguments, the round numbers, the RNG stream, and the feedback sequence,
/// so that simulations are reproducible under a fixed master seed.
pub trait Protocol: Send + std::fmt::Debug {
    /// Decides this node's action for `round` (1-based).
    ///
    /// Called only while [`Protocol::is_active`] returns `true`.
    fn act(&mut self, round: u64, rng: &mut SmallRng) -> Action;

    /// Delivers what this node observed in `round`. Called only if the node
    /// listened (transmitters learn nothing).
    fn feedback(&mut self, round: u64, reception: &Reception);

    /// Whether this node is still contending. Once `false`, the node is
    /// permanently silent and the simulator stops scheduling it.
    fn is_active(&self) -> bool;

    /// A short stable name for reports and tables (e.g. `"fkn"`).
    fn name(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocol_trait_is_object_safe() {
        fn _takes_dyn(_p: &dyn Protocol) {}
        fn _takes_boxed(_p: Box<dyn Protocol>) {}
    }
}
