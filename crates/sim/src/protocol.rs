//! The node-local protocol interface.

use rand::rngs::SmallRng;

use fading_channel::Reception;

use crate::Action;

/// A node-local contention-resolution protocol: one instance per node.
///
/// The simulator drives each **active** protocol instance through the
/// synchronous-round loop:
///
/// 1. [`Protocol::act`] — choose to transmit or listen this round (using the
///    node's private, seeded RNG);
/// 2. the channel resolves receptions;
/// 3. [`Protocol::feedback`] — listeners learn what they observed
///    (transmitters receive no feedback: the model gives transmitters no
///    information about the fate of their transmission);
/// 4. [`Protocol::is_active`] — a node that reports inactive stops
///    participating permanently (it is never asked to act again).
///
/// Protocols receive **no a-priori information** about the number or
/// identity of other participants unless a specific algorithm is documented
/// to require it (e.g. ALOHA's `1/N` rate or Jurdziński–Stachowiak's
/// polynomial bound on `n`), in which case that knowledge is a constructor
/// parameter.
///
/// Implementations must be deterministic functions of their constructor
/// arguments, the round numbers, the RNG stream, and the feedback sequence,
/// so that simulations are reproducible under a fixed master seed.
pub trait Protocol: Send + std::fmt::Debug {
    /// Decides this node's action for `round` (1-based).
    ///
    /// Called only while [`Protocol::is_active`] returns `true`.
    fn act(&mut self, round: u64, rng: &mut SmallRng) -> Action;

    /// Delivers what this node observed in `round`. Called only if the node
    /// listened (transmitters learn nothing).
    fn feedback(&mut self, round: u64, reception: &Reception);

    /// Whether this node is still contending. Once `false`, the node is
    /// permanently silent and the simulator stops scheduling it.
    fn is_active(&self) -> bool;

    /// A short stable name for reports and tables (e.g. `"fkn"`).
    fn name(&self) -> &'static str;

    /// Serializes this instance's **mutable** state as a flat word vector
    /// for checkpointing (constructor parameters are *not* included — a
    /// snapshot is restored onto an identically constructed instance).
    /// Encode `f64`s via [`f64::to_bits`] so the round trip is bit-exact.
    ///
    /// The default returns an empty vector, which is correct only for
    /// protocols whose entire behavior is a function of their constructor
    /// arguments and the RNG/feedback streams (e.g. a stateless fixed-rate
    /// transmitter). **Any protocol with mutable fields must override both
    /// this and [`Protocol::load_state`]**, or checkpoint/resume silently
    /// resets it; `fading-protocols` overrides them for every shipped
    /// algorithm.
    fn save_state(&self) -> Vec<u64> {
        Vec::new()
    }

    /// Restores state captured by [`Protocol::save_state`] from an
    /// identically constructed instance.
    ///
    /// # Errors
    ///
    /// [`ProtocolStateError`] when `state` does not have the shape this
    /// protocol saves (wrong length or an invalid discriminant) — the
    /// snapshot belongs to a different protocol or configuration.
    fn load_state(&mut self, state: &[u64]) -> Result<(), ProtocolStateError> {
        if state.is_empty() {
            Ok(())
        } else {
            Err(ProtocolStateError {
                protocol: self.name(),
                expected: 0,
                got: state.len(),
            })
        }
    }
}

/// A protocol rejected a checkpointed state vector: the snapshot does not
/// match this protocol's shape (see [`Protocol::load_state`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProtocolStateError {
    /// The protocol that rejected the state.
    pub protocol: &'static str,
    /// Number of words the protocol expected.
    pub expected: usize,
    /// Number of words the snapshot supplied.
    pub got: usize,
}

impl std::fmt::Display for ProtocolStateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "protocol {:?} rejected checkpoint state: expected {} words, got {}",
            self.protocol, self.expected, self.got
        )
    }
}

impl std::error::Error for ProtocolStateError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocol_trait_is_object_safe() {
        fn _takes_dyn(_p: &dyn Protocol) {}
        fn _takes_boxed(_p: Box<dyn Protocol>) {}
    }

    #[derive(Debug)]
    struct Stateless;
    impl Protocol for Stateless {
        fn act(&mut self, _round: u64, _rng: &mut rand::rngs::SmallRng) -> Action {
            Action::Listen
        }
        fn feedback(&mut self, _round: u64, _reception: &Reception) {}
        fn is_active(&self) -> bool {
            true
        }
        fn name(&self) -> &'static str {
            "stateless"
        }
    }

    #[test]
    fn default_state_hooks_round_trip_empty() {
        let mut p = Stateless;
        assert!(p.save_state().is_empty());
        assert!(p.load_state(&[]).is_ok());
        let err = p.load_state(&[1, 2]).unwrap_err();
        assert_eq!(err.protocol, "stateless");
        assert_eq!(err.expected, 0);
        assert_eq!(err.got, 2);
        assert!(err.to_string().contains("expected 0 words"));
    }
}
