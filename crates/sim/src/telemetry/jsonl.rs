//! Lossless JSONL (one JSON object per line) export of [`RoundEvent`]s.
//!
//! The workspace's vendored `serde`/`serde_json` are offline no-op stubs,
//! so this module hand-rolls both directions:
//!
//! * The **writer** emits one flat JSON object per event. `f64`s are
//!   formatted with Rust's `{:?}` (shortest representation that
//!   round-trips), so `parse(write(x)) == x` bit-for-bit for finite
//!   values. Non-finite values use the bare tokens `inf`, `-inf`, `NaN`
//!   (not valid JSON, but unambiguous and round-trippable — the paper's
//!   SINR can legitimately be `inf` when the denominator is zero).
//! * The **reader** is a small recursive-descent parser covering the
//!   subset the writer produces (objects, arrays, numbers, strings,
//!   booleans, `null`, and the three non-finite tokens). Unknown object
//!   keys are ignored, so streams stay readable across schema additions;
//!   missing keys are an error.
//!
//! # Round-trip guarantee
//!
//! For every event `e`: `event_from_json(&event_to_json(&e)) == Ok(e)`,
//! covered by the `jsonl_round_trip` suite in `crates/sim/tests/telemetry.rs`.

use std::fmt;
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use fading_channel::{FarFieldStats, NodeId, SinrBreakdown};

use crate::obs::{EngineCounters, ResolvePath};

use super::RoundEvent;

/// Errors from parsing or I/O while reading/writing JSONL streams.
#[derive(Debug)]
pub enum JsonlError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Malformed JSON or schema mismatch; `line` is 1-based (0 = unknown).
    Parse {
        /// 1-based line number where parsing failed (0 if not tied to a line).
        line: usize,
        /// Human-readable description of the failure.
        msg: String,
    },
}

impl fmt::Display for JsonlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonlError::Io(e) => write!(f, "jsonl i/o error: {e}"),
            JsonlError::Parse { line, msg } => write!(f, "jsonl parse error (line {line}): {msg}"),
        }
    }
}

impl std::error::Error for JsonlError {}

impl From<io::Error> for JsonlError {
    fn from(e: io::Error) -> Self {
        JsonlError::Io(e)
    }
}

fn parse_err(msg: impl Into<String>) -> JsonlError {
    JsonlError::Parse {
        line: 0,
        msg: msg.into(),
    }
}

/// Formats an `f64` so it round-trips exactly: shortest `{:?}` form for
/// finite values, bare `inf` / `-inf` / `NaN` tokens otherwise.
fn fmt_f64(out: &mut String, v: f64) {
    use fmt::Write as _;
    if v.is_finite() {
        let _ = write!(out, "{v:?}");
    } else if v.is_nan() {
        out.push_str("NaN");
    } else if v > 0.0 {
        out.push_str("inf");
    } else {
        out.push_str("-inf");
    }
}

fn fmt_ids(out: &mut String, ids: &[NodeId]) {
    use fmt::Write as _;
    out.push('[');
    for (i, id) in ids.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{id}");
    }
    out.push(']');
}

/// Serializes one [`SinrBreakdown`] as a JSON object (no trailing newline).
#[must_use]
pub fn breakdown_to_json(b: &SinrBreakdown) -> String {
    let mut s = String::with_capacity(160);
    write_breakdown(&mut s, b);
    s
}

fn write_breakdown(out: &mut String, b: &SinrBreakdown) {
    use fmt::Write as _;
    let _ = write!(out, "{{\"listener\":{},\"best_tx\":", b.listener);
    match b.best_tx {
        Some(tx) => {
            let _ = write!(out, "{tx}");
        }
        None => out.push_str("null"),
    }
    out.push_str(",\"signal\":");
    fmt_f64(out, b.signal);
    out.push_str(",\"interference\":");
    fmt_f64(out, b.interference);
    out.push_str(",\"noise\":");
    fmt_f64(out, b.noise);
    out.push_str(",\"extra\":");
    fmt_f64(out, b.extra);
    out.push_str(",\"margin\":");
    fmt_f64(out, b.margin);
    let _ = write!(out, ",\"decoded\":{}}}", b.decoded);
}

/// Serializes one [`RoundEvent`] as a single JSON line (no trailing newline).
#[must_use]
pub fn event_to_json(ev: &RoundEvent) -> String {
    use fmt::Write as _;
    let mut s = String::with_capacity(256);
    let _ = write!(
        s,
        "{{\"round\":{},\"active_pre_churn\":{},\"participants\":{},\"transmitters\":{},\
         \"listeners\":{},\"knocked_out\":{},\"churn_applied\":{}",
        ev.round,
        ev.active_pre_churn,
        ev.participants,
        ev.transmitters,
        ev.listeners,
        ev.knocked_out,
        ev.churn_applied,
    );
    s.push_str(",\"noise_scale\":");
    fmt_f64(&mut s, ev.noise_scale);
    s.push_str(",\"jam_power\":");
    fmt_f64(&mut s, ev.jam_power);
    let _ = write!(
        s,
        ",\"ge_in_burst\":{},\"ge_dropped\":{},\"resolve_path\":\"{}\",\"ff_fallbacks\":{},\
         \"resolved\":{},\"winner\":",
        ev.ge_in_burst,
        ev.ge_dropped,
        ev.resolve_path.name(),
        ev.ff_fallbacks,
        ev.resolved,
    );
    match ev.winner {
        Some(w) => {
            let _ = write!(s, "{w}");
        }
        None => s.push_str("null"),
    }
    s.push_str(",\"transmitter_ids\":");
    fmt_ids(&mut s, &ev.transmitter_ids);
    s.push_str(",\"knocked_out_ids\":");
    fmt_ids(&mut s, &ev.knocked_out_ids);
    s.push_str(",\"crashed_ids\":");
    fmt_ids(&mut s, &ev.crashed_ids);
    s.push_str(",\"revived_ids\":");
    fmt_ids(&mut s, &ev.revived_ids);
    s.push_str(",\"sinr\":[");
    for (i, b) in ev.sinr.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        write_breakdown(&mut s, b);
    }
    s.push_str("]}");
    s
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

/// A parsed JSON value — the subset this module writes, plus everything
/// the `obs::export` parsers need (strings, nested arrays/objects).
///
/// Public so other hand-rolled formats in the workspace (Chrome trace
/// parse-back, the bench-gate baseline reader) can reuse one parser
/// instead of growing their own; see [`parse_json`].
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// JSON `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number, plus the non-finite tokens `inf` / `-inf` / `NaN`.
    Num(f64),
    /// A string literal.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, as key/value pairs in source order (keys may repeat;
    /// lookups take the first).
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// The numeric value, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is one.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The items, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The first value under `key`, if this is an object holding it.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Maximum container nesting the parser accepts. The writers in this
/// workspace emit at most ~4 levels; the guard exists so adversarial
/// input (`[[[[…`) is a clean `Parse` error instead of a stack overflow
/// in the recursive descent (the control socket feeds untrusted bytes
/// straight into [`parse_json`]).
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser {
            bytes: input.as_bytes(),
            pos: 0,
            depth: 0,
        }
    }

    fn enter(&mut self) -> Result<(), JsonlError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(parse_err(format!(
                "nesting deeper than {MAX_DEPTH} at byte {}",
                self.pos
            )));
        }
        Ok(())
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\r' || b == b'\n' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonlError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(parse_err(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<JsonValue, JsonlError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(JsonValue::Str(self.parse_string()?)),
            Some(b't') if self.eat_literal("true") => Ok(JsonValue::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(JsonValue::Bool(false)),
            Some(b'n') if self.eat_literal("null") => Ok(JsonValue::Null),
            Some(b'N') if self.eat_literal("NaN") => Ok(JsonValue::Num(f64::NAN)),
            Some(b'i') if self.eat_literal("inf") => Ok(JsonValue::Num(f64::INFINITY)),
            Some(b'-') if self.bytes[self.pos..].starts_with(b"-inf") => {
                self.pos += 4;
                Ok(JsonValue::Num(f64::NEG_INFINITY))
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(parse_err(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_number(&mut self) -> Result<JsonValue, JsonlError> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| parse_err("non-utf8 number"))?;
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| parse_err(format!("bad number {text:?} at byte {start}")))
    }

    fn parse_string(&mut self) -> Result<String, JsonlError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(parse_err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| parse_err("dangling escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| parse_err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| parse_err("bad \\u hex"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| parse_err("bad \\u hex"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| parse_err("invalid \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(parse_err(format!("unknown escape '\\{}'", other as char)))
                        }
                    }
                }
                Some(_) => {
                    // Copy one UTF-8 scalar (multi-byte sequences intact).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| parse_err("non-utf8 string content"))?;
                    let ch = rest.chars().next().ok_or_else(|| parse_err("empty"))?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<JsonValue, JsonlError> {
        self.enter()?;
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(parse_err(format!("expected ',' or ']' at byte {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<JsonValue, JsonlError> {
        self.enter()?;
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(JsonValue::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(JsonValue::Obj(fields));
                }
                _ => return Err(parse_err(format!("expected ',' or '}}' at byte {}", self.pos))),
            }
        }
    }
}

/// Parses one complete JSON document (trailing garbage is an error).
///
/// Accepts the workspace dialect: standard JSON plus the bare non-finite
/// tokens `inf` / `-inf` / `NaN` that this module's writers emit.
///
/// # Errors
///
/// Returns [`JsonlError::Parse`] (with byte offsets in the message) on
/// malformed input.
pub fn parse_json(input: &str) -> Result<JsonValue, JsonlError> {
    let mut p = Parser::new(input);
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(parse_err(format!("trailing garbage at byte {}", p.pos)));
    }
    Ok(v)
}

// --- typed field extraction ------------------------------------------------

fn obj_fields(v: &JsonValue) -> Result<&[(String, JsonValue)], JsonlError> {
    match v {
        JsonValue::Obj(fields) => Ok(fields),
        _ => Err(parse_err("expected a JSON object")),
    }
}

fn get<'v>(fields: &'v [(String, JsonValue)], key: &str) -> Result<&'v JsonValue, JsonlError> {
    fields
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| parse_err(format!("missing key {key:?}")))
}

fn get_f64(fields: &[(String, JsonValue)], key: &str) -> Result<f64, JsonlError> {
    match get(fields, key)? {
        JsonValue::Num(n) => Ok(*n),
        _ => Err(parse_err(format!("key {key:?} is not a number"))),
    }
}

fn num_to_usize(n: f64, key: &str) -> Result<usize, JsonlError> {
    if n.fract() == 0.0 && (0.0..9.007_199_254_740_992e15).contains(&n) {
        Ok(n as usize)
    } else {
        Err(parse_err(format!("key {key:?} is not a valid integer: {n}")))
    }
}

fn get_usize(fields: &[(String, JsonValue)], key: &str) -> Result<usize, JsonlError> {
    num_to_usize(get_f64(fields, key)?, key)
}

fn get_u64(fields: &[(String, JsonValue)], key: &str) -> Result<u64, JsonlError> {
    Ok(get_usize(fields, key)? as u64)
}

fn get_bool(fields: &[(String, JsonValue)], key: &str) -> Result<bool, JsonlError> {
    match get(fields, key)? {
        JsonValue::Bool(b) => Ok(*b),
        _ => Err(parse_err(format!("key {key:?} is not a boolean"))),
    }
}

fn get_opt_id(fields: &[(String, JsonValue)], key: &str) -> Result<Option<NodeId>, JsonlError> {
    match get(fields, key)? {
        JsonValue::Null => Ok(None),
        JsonValue::Num(n) => num_to_usize(*n, key).map(Some),
        _ => Err(parse_err(format!("key {key:?} is not null or a number"))),
    }
}

fn get_ids(fields: &[(String, JsonValue)], key: &str) -> Result<Vec<NodeId>, JsonlError> {
    match get(fields, key)? {
        JsonValue::Arr(items) => items
            .iter()
            .map(|v| match v {
                JsonValue::Num(n) => num_to_usize(*n, key),
                _ => Err(parse_err(format!("key {key:?} holds a non-numeric id"))),
            })
            .collect(),
        _ => Err(parse_err(format!("key {key:?} is not an array"))),
    }
}

fn get_resolve_path(fields: &[(String, JsonValue)]) -> Result<ResolvePath, JsonlError> {
    match get(fields, "resolve_path")? {
        JsonValue::Str(s) => ResolvePath::from_name(s)
            .ok_or_else(|| parse_err(format!("unknown resolve_path {s:?}"))),
        _ => Err(parse_err("key \"resolve_path\" is not a string")),
    }
}

fn breakdown_from_value(v: &JsonValue) -> Result<SinrBreakdown, JsonlError> {
    let f = obj_fields(v)?;
    Ok(SinrBreakdown {
        listener: get_usize(f, "listener")?,
        best_tx: get_opt_id(f, "best_tx")?,
        signal: get_f64(f, "signal")?,
        interference: get_f64(f, "interference")?,
        noise: get_f64(f, "noise")?,
        extra: get_f64(f, "extra")?,
        margin: get_f64(f, "margin")?,
        decoded: get_bool(f, "decoded")?,
    })
}

/// Parses one [`SinrBreakdown`] from its JSON object form.
///
/// # Errors
///
/// Returns [`JsonlError::Parse`] on malformed JSON or missing keys.
pub fn breakdown_from_json(line: &str) -> Result<SinrBreakdown, JsonlError> {
    breakdown_from_value(&parse_json(line)?)
}

/// Parses one [`RoundEvent`] from a JSON line produced by
/// [`event_to_json`]. Unknown keys are ignored; missing keys are errors.
///
/// # Errors
///
/// Returns [`JsonlError::Parse`] on malformed JSON or schema mismatch.
pub fn event_from_json(line: &str) -> Result<RoundEvent, JsonlError> {
    let v = parse_json(line)?;
    let f = obj_fields(&v)?;
    let sinr = match get(f, "sinr")? {
        JsonValue::Arr(items) => items
            .iter()
            .map(breakdown_from_value)
            .collect::<Result<Vec<_>, _>>()?,
        _ => return Err(parse_err("key \"sinr\" is not an array")),
    };
    Ok(RoundEvent {
        round: get_u64(f, "round")?,
        active_pre_churn: get_usize(f, "active_pre_churn")?,
        participants: get_usize(f, "participants")?,
        transmitters: get_usize(f, "transmitters")?,
        listeners: get_usize(f, "listeners")?,
        knocked_out: get_usize(f, "knocked_out")?,
        churn_applied: get_usize(f, "churn_applied")?,
        noise_scale: get_f64(f, "noise_scale")?,
        jam_power: get_f64(f, "jam_power")?,
        ge_in_burst: get_bool(f, "ge_in_burst")?,
        ge_dropped: get_usize(f, "ge_dropped")?,
        resolve_path: get_resolve_path(f)?,
        ff_fallbacks: get_usize(f, "ff_fallbacks")?,
        resolved: get_bool(f, "resolved")?,
        winner: get_opt_id(f, "winner")?,
        transmitter_ids: get_ids(f, "transmitter_ids")?,
        knocked_out_ids: get_ids(f, "knocked_out_ids")?,
        crashed_ids: get_ids(f, "crashed_ids")?,
        revived_ids: get_ids(f, "revived_ids")?,
        sinr,
    })
}

// ---------------------------------------------------------------------------
// EngineCounters
// ---------------------------------------------------------------------------

/// Serializes one [`EngineCounters`] snapshot as a single JSON line (no
/// trailing newline). Far-field ladder counters are flattened under `ff_*`
/// keys so the line stays greppable.
#[must_use]
pub fn counters_to_json(c: &EngineCounters) -> String {
    use fmt::Write as _;
    let f = &c.farfield;
    let mut s = String::with_capacity(512);
    let _ = write!(
        s,
        "{{\"rounds\":{},\"farfield_rounds\":{},\"hierarchical_rounds\":{},\
         \"gain_cache_rounds\":{},\"exact_rounds\":{},\
         \"instrumented_rounds\":{},\"gain_cache_built\":{},\"gain_cache_bypassed_rounds\":{},\
         \"perturbed_rounds\":{},\"jammed_rounds\":{},\"noise_scaled_rounds\":{},\
         \"ge_dropped\":{},\"churn_applied\":{},\"self_check_rounds\":{},\
         \"self_check_samples\":{},\"self_check_violations\":{},\"tier_demotions\":{},\
         \"ff_rounds\":{},\"ff_empty_round_silences\":{},\
         \"ff_nonfinite_fallbacks\":{},\"ff_noise_floor_silences\":{},\
         \"ff_no_near_winner_fallbacks\":{},\"ff_far_rival_fallbacks\":{},\
         \"ff_bracket_decisions\":{},\"ff_bracket_straddle_fallbacks\":{}}}",
        c.rounds,
        c.farfield_rounds,
        c.hierarchical_rounds,
        c.gain_cache_rounds,
        c.exact_rounds,
        c.instrumented_rounds,
        c.gain_cache_built,
        c.gain_cache_bypassed_rounds,
        c.perturbed_rounds,
        c.jammed_rounds,
        c.noise_scaled_rounds,
        c.ge_dropped,
        c.churn_applied,
        c.self_check_rounds,
        c.self_check_samples,
        c.self_check_violations,
        c.tier_demotions,
        f.rounds,
        f.empty_round_silences,
        f.nonfinite_fallbacks,
        f.noise_floor_silences,
        f.no_near_winner_fallbacks,
        f.far_rival_fallbacks,
        f.bracket_decisions,
        f.bracket_straddle_fallbacks,
    );
    s
}

/// Parses one [`EngineCounters`] snapshot from a line produced by
/// [`counters_to_json`]. Unknown keys are ignored; missing keys are
/// errors.
///
/// # Errors
///
/// Returns [`JsonlError::Parse`] on malformed JSON or schema mismatch.
pub fn counters_from_json(line: &str) -> Result<EngineCounters, JsonlError> {
    let v = parse_json(line)?;
    let f = obj_fields(&v)?;
    Ok(EngineCounters {
        rounds: get_u64(f, "rounds")?,
        farfield_rounds: get_u64(f, "farfield_rounds")?,
        hierarchical_rounds: get_u64(f, "hierarchical_rounds")?,
        gain_cache_rounds: get_u64(f, "gain_cache_rounds")?,
        exact_rounds: get_u64(f, "exact_rounds")?,
        instrumented_rounds: get_u64(f, "instrumented_rounds")?,
        gain_cache_built: get_bool(f, "gain_cache_built")?,
        gain_cache_bypassed_rounds: get_u64(f, "gain_cache_bypassed_rounds")?,
        perturbed_rounds: get_u64(f, "perturbed_rounds")?,
        jammed_rounds: get_u64(f, "jammed_rounds")?,
        noise_scaled_rounds: get_u64(f, "noise_scaled_rounds")?,
        ge_dropped: get_u64(f, "ge_dropped")?,
        churn_applied: get_u64(f, "churn_applied")?,
        self_check_rounds: get_u64(f, "self_check_rounds")?,
        self_check_samples: get_u64(f, "self_check_samples")?,
        self_check_violations: get_u64(f, "self_check_violations")?,
        tier_demotions: get_u64(f, "tier_demotions")?,
        farfield: FarFieldStats {
            rounds: get_u64(f, "ff_rounds")?,
            empty_round_silences: get_u64(f, "ff_empty_round_silences")?,
            nonfinite_fallbacks: get_u64(f, "ff_nonfinite_fallbacks")?,
            noise_floor_silences: get_u64(f, "ff_noise_floor_silences")?,
            no_near_winner_fallbacks: get_u64(f, "ff_no_near_winner_fallbacks")?,
            far_rival_fallbacks: get_u64(f, "ff_far_rival_fallbacks")?,
            bracket_decisions: get_u64(f, "ff_bracket_decisions")?,
            bracket_straddle_fallbacks: get_u64(f, "ff_bracket_straddle_fallbacks")?,
        },
    })
}

/// Writes counters snapshots (one per line, e.g. one per trial) to a file
/// at `path` (created/truncated).
///
/// # Errors
///
/// Propagates file-creation and write failures.
pub fn write_counters_to_path<P: AsRef<Path>>(
    path: P,
    counters: &[EngineCounters],
) -> Result<(), JsonlError> {
    let mut w = BufWriter::new(File::create(path)?);
    for c in counters {
        w.write_all(counters_to_json(c).as_bytes())?;
        w.write_all(b"\n")?;
    }
    w.flush()?;
    Ok(())
}

/// Reads a counters stream written by [`write_counters_to_path`]; blank
/// lines are skipped.
///
/// # Errors
///
/// Propagates open/read failures; parse errors carry 1-based line numbers.
pub fn read_counters_from_path<P: AsRef<Path>>(path: P) -> Result<Vec<EngineCounters>, JsonlError> {
    let r = BufReader::new(File::open(path)?);
    let mut out = Vec::new();
    for (i, line) in r.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        out.push(counters_from_json(&line).map_err(|e| remap(e, i + 1))?);
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Stream I/O
// ---------------------------------------------------------------------------

/// Writes events to `w`, one JSON object per line.
///
/// # Errors
///
/// Propagates I/O failures from `w`.
pub fn write_events<W: Write>(w: &mut W, events: &[RoundEvent]) -> Result<(), JsonlError> {
    for ev in events {
        w.write_all(event_to_json(ev).as_bytes())?;
        w.write_all(b"\n")?;
    }
    Ok(())
}

/// Reads an event stream written by [`write_events`]; blank lines are
/// skipped.
///
/// # Errors
///
/// Returns [`JsonlError::Io`] on read failures and [`JsonlError::Parse`]
/// (with a 1-based line number) on malformed lines.
pub fn read_events<R: BufRead>(r: R) -> Result<Vec<RoundEvent>, JsonlError> {
    let mut events = Vec::new();
    for (i, line) in r.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        events.push(event_from_json(&line).map_err(|e| match e {
            JsonlError::Parse { msg, .. } => JsonlError::Parse { line: i + 1, msg },
            other => other,
        })?);
    }
    Ok(events)
}

/// Writes events to a file at `path` (created/truncated).
///
/// # Errors
///
/// Propagates file-creation and write failures.
pub fn write_events_to_path<P: AsRef<Path>>(
    path: P,
    events: &[RoundEvent],
) -> Result<(), JsonlError> {
    let mut w = BufWriter::new(File::create(path)?);
    write_events(&mut w, events)?;
    w.flush()?;
    Ok(())
}

/// Reads an event stream from the file at `path`.
///
/// # Errors
///
/// Propagates open/read failures and per-line parse errors.
pub fn read_events_from_path<P: AsRef<Path>>(path: P) -> Result<Vec<RoundEvent>, JsonlError> {
    read_events(BufReader::new(File::open(path)?))
}

/// One Monte-Carlo trial's event stream, tagged with its trial index and
/// seed so multi-trial exports stay self-describing.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialBlock {
    /// 0-based trial index (matches `montecarlo::run_trials` ordering).
    pub trial: u64,
    /// The per-trial RNG seed.
    pub seed: u64,
    /// The trial's round events, in round order.
    pub events: Vec<RoundEvent>,
}

/// Writes trial blocks as a meta line (`{"trial":…,"seed":…,"events":…}`)
/// followed by that trial's event lines. Meta lines are distinguished on
/// read by their `"trial"` key, which event lines never carry.
///
/// # Errors
///
/// Propagates I/O failures from `w`.
pub fn write_trial_blocks<W: Write>(w: &mut W, blocks: &[TrialBlock]) -> Result<(), JsonlError> {
    for b in blocks {
        writeln!(
            w,
            "{{\"trial\":{},\"seed\":{},\"events\":{}}}",
            b.trial,
            b.seed,
            b.events.len()
        )?;
        write_events(w, &b.events)?;
    }
    Ok(())
}

/// Reads a stream written by [`write_trial_blocks`].
///
/// # Errors
///
/// Returns [`JsonlError::Parse`] if the stream does not start with a meta
/// line, a block is truncated, or any line is malformed.
pub fn read_trial_blocks<R: BufRead>(r: R) -> Result<Vec<TrialBlock>, JsonlError> {
    let mut blocks: Vec<TrialBlock> = Vec::new();
    let mut expected: usize = 0;
    for (i, line) in r.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let at = |msg: String| JsonlError::Parse { line: i + 1, msg };
        let v = parse_json(&line).map_err(|e| match e {
            JsonlError::Parse { msg, .. } => at(msg),
            other => other,
        })?;
        let f = obj_fields(&v).map_err(|_| at("expected an object".into()))?;
        if f.iter().any(|(k, _)| k == "trial") {
            if expected > 0 {
                return Err(at(format!("previous block short by {expected} event lines")));
            }
            blocks.push(TrialBlock {
                trial: get_u64(f, "trial").map_err(|e| remap(e, i + 1))?,
                seed: get_u64(f, "seed").map_err(|e| remap(e, i + 1))?,
                events: Vec::new(),
            });
            expected = get_usize(f, "events").map_err(|e| remap(e, i + 1))?;
        } else {
            let block = blocks
                .last_mut()
                .ok_or_else(|| at("event line before any trial meta line".into()))?;
            if expected == 0 {
                return Err(at("more event lines than the meta line declared".into()));
            }
            block
                .events
                .push(event_from_json(&line).map_err(|e| remap(e, i + 1))?);
            expected -= 1;
        }
    }
    if expected > 0 {
        return Err(parse_err(format!(
            "final block short by {expected} event lines"
        )));
    }
    Ok(blocks)
}

fn remap(e: JsonlError, line: usize) -> JsonlError {
    match e {
        JsonlError::Parse { msg, .. } => JsonlError::Parse { line, msg },
        other => other,
    }
}

/// Writes trial blocks to a file at `path` (created/truncated).
///
/// # Errors
///
/// Propagates file-creation and write failures.
pub fn write_trial_blocks_to_path<P: AsRef<Path>>(
    path: P,
    blocks: &[TrialBlock],
) -> Result<(), JsonlError> {
    let mut w = BufWriter::new(File::create(path)?);
    write_trial_blocks(&mut w, blocks)?;
    w.flush()?;
    Ok(())
}

/// Reads trial blocks from the file at `path`.
///
/// # Errors
///
/// Propagates open/read failures and per-line parse errors.
pub fn read_trial_blocks_from_path<P: AsRef<Path>>(path: P) -> Result<Vec<TrialBlock>, JsonlError> {
    read_trial_blocks(BufReader::new(File::open(path)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_event() -> RoundEvent {
        RoundEvent {
            round: 42,
            active_pre_churn: 17,
            participants: 16,
            transmitters: 3,
            listeners: 13,
            knocked_out: 2,
            churn_applied: 1,
            noise_scale: 1.5,
            jam_power: 0.1 + 0.2, // deliberately non-round: 0.30000000000000004
            ge_in_burst: true,
            ge_dropped: 1,
            resolve_path: ResolvePath::FarField,
            ff_fallbacks: 4,
            resolved: false,
            winner: None,
            transmitter_ids: vec![0, 5, 9],
            knocked_out_ids: vec![5, 9],
            crashed_ids: vec![11],
            revived_ids: vec![],
            sinr: vec![SinrBreakdown {
                listener: 1,
                best_tx: Some(0),
                signal: 16.0,
                interference: 2.0,
                noise: 1.0,
                extra: 0.0,
                margin: 10.0,
                decoded: true,
            }],
        }
    }

    #[test]
    fn event_round_trips_bit_exactly() {
        let ev = sample_event();
        let line = event_to_json(&ev);
        assert!(!line.contains('\n'));
        let back = event_from_json(&line).unwrap();
        assert_eq!(back, ev);
        assert_eq!(back.jam_power.to_bits(), ev.jam_power.to_bits());
    }

    #[test]
    fn non_finite_floats_round_trip() {
        let mut ev = sample_event();
        ev.noise_scale = f64::INFINITY;
        ev.jam_power = f64::NEG_INFINITY;
        let back = event_from_json(&event_to_json(&ev)).unwrap();
        assert_eq!(back.noise_scale, f64::INFINITY);
        assert_eq!(back.jam_power, f64::NEG_INFINITY);
    }

    #[test]
    fn winner_and_best_tx_null_round_trip() {
        let mut ev = sample_event();
        ev.winner = Some(7);
        ev.sinr[0].best_tx = None;
        let back = event_from_json(&event_to_json(&ev)).unwrap();
        assert_eq!(back.winner, Some(7));
        assert_eq!(back.sinr[0].best_tx, None);
    }

    #[test]
    fn unknown_keys_are_ignored_missing_keys_are_errors() {
        let ev = RoundEvent {
            noise_scale: 1.0,
            ..RoundEvent::default()
        };
        let line = event_to_json(&ev);
        let extended = format!("{}{}", &line[..line.len() - 1], ",\"future_field\":3}");
        assert_eq!(event_from_json(&extended).unwrap(), ev);
        let truncated = line.replace("\"resolved\":false,", "");
        let err = event_from_json(&truncated).unwrap_err();
        assert!(err.to_string().contains("resolved"), "{err}");
    }

    #[test]
    fn stream_round_trips_and_skips_blank_lines() {
        let events = vec![sample_event(), RoundEvent::default()];
        let mut buf = Vec::new();
        write_events(&mut buf, &events).unwrap();
        let mut text = String::from_utf8(buf).unwrap();
        text.push('\n'); // trailing blank line
        let back = read_events(text.as_bytes()).unwrap();
        assert_eq!(back, events);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let good = event_to_json(&RoundEvent::default());
        let text = format!("{good}\nnot json\n");
        match read_events(text.as_bytes()) {
            Err(JsonlError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected a line-2 parse error, got {other:?}"),
        }
    }

    #[test]
    fn trial_blocks_round_trip() {
        let blocks = vec![
            TrialBlock {
                trial: 0,
                seed: 100,
                events: vec![sample_event()],
            },
            TrialBlock {
                trial: 1,
                seed: 101,
                events: vec![],
            },
            TrialBlock {
                trial: 2,
                seed: 102,
                events: vec![RoundEvent::default(), sample_event()],
            },
        ];
        let mut buf = Vec::new();
        write_trial_blocks(&mut buf, &blocks).unwrap();
        let back = read_trial_blocks(buf.as_slice()).unwrap();
        assert_eq!(back, blocks);
    }

    #[test]
    fn truncated_trial_block_is_an_error() {
        let blocks = vec![TrialBlock {
            trial: 0,
            seed: 1,
            events: vec![sample_event(), sample_event()],
        }];
        let mut buf = Vec::new();
        write_trial_blocks(&mut buf, &blocks).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let cut = text.lines().take(2).collect::<Vec<_>>().join("\n");
        assert!(read_trial_blocks(cut.as_bytes()).is_err());
    }

    #[test]
    fn breakdown_json_is_standalone() {
        let b = SinrBreakdown {
            listener: 3,
            best_tx: None,
            signal: 0.0,
            interference: f64::INFINITY,
            noise: 1.0,
            extra: 2.5,
            margin: f64::NEG_INFINITY,
            decoded: false,
        };
        assert_eq!(breakdown_from_json(&breakdown_to_json(&b)).unwrap(), b);
    }

    fn sample_counters() -> EngineCounters {
        EngineCounters {
            rounds: 100,
            farfield_rounds: 45,
            hierarchical_rounds: 15,
            gain_cache_rounds: 30,
            exact_rounds: 8,
            instrumented_rounds: 2,
            gain_cache_built: true,
            gain_cache_bypassed_rounds: 5,
            perturbed_rounds: 12,
            jammed_rounds: 9,
            noise_scaled_rounds: 7,
            ge_dropped: 3,
            churn_applied: 2,
            self_check_rounds: 25,
            self_check_samples: 50,
            self_check_violations: 1,
            tier_demotions: 1,
            farfield: FarFieldStats {
                rounds: 60,
                empty_round_silences: 11,
                nonfinite_fallbacks: 1,
                noise_floor_silences: 200,
                no_near_winner_fallbacks: 13,
                far_rival_fallbacks: 17,
                bracket_decisions: 4000,
                bracket_straddle_fallbacks: 19,
            },
        }
    }

    #[test]
    fn counters_round_trip_exactly() {
        let c = sample_counters();
        let line = counters_to_json(&c);
        assert!(!line.contains('\n'));
        assert_eq!(counters_from_json(&line).unwrap(), c);
        // Default (all-zero) counters round-trip too.
        let zero = EngineCounters::default();
        assert_eq!(counters_from_json(&counters_to_json(&zero)).unwrap(), zero);
    }

    #[test]
    fn counters_unknown_keys_ignored_missing_keys_error() {
        let line = counters_to_json(&sample_counters());
        let extended = format!("{}{}", &line[..line.len() - 1], ",\"future\":1}");
        assert_eq!(counters_from_json(&extended).unwrap(), sample_counters());
        let truncated = line.replace("\"ff_bracket_decisions\":4000,", "");
        let err = counters_from_json(&truncated).unwrap_err();
        assert!(err.to_string().contains("ff_bracket_decisions"), "{err}");
    }

    #[test]
    fn counters_file_round_trip_with_line_numbers() {
        let dir = std::env::temp_dir().join("fading-jsonl-counters-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("engine_counters.jsonl");
        let all = vec![sample_counters(), EngineCounters::default()];
        write_counters_to_path(&path, &all).unwrap();
        assert_eq!(read_counters_from_path(&path).unwrap(), all);
        std::fs::write(&path, "{}\n").unwrap();
        match read_counters_from_path(&path) {
            Err(JsonlError::Parse { line, .. }) => assert_eq!(line, 1),
            other => panic!("expected a line-1 parse error, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bad_resolve_path_is_an_error() {
        let line = event_to_json(&sample_event()).replace("\"farfield\"", "\"warp\"");
        let err = event_from_json(&line).unwrap_err();
        assert!(err.to_string().contains("resolve_path"), "{err}");
    }

    #[test]
    fn parser_handles_strings_and_escapes() {
        let v = parse_json(r#"{"k":"a\"b\\c\ndA"}"#).unwrap();
        match v {
            JsonValue::Obj(f) => {
                assert_eq!(f[0].1, JsonValue::Str("a\"b\\c\ndA".to_string()));
            }
            other => panic!("expected object, got {other:?}"),
        }
    }
}
