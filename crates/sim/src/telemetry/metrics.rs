//! Lightweight counters, histograms, and phase timers for the step loop.
//!
//! A [`MetricsRegistry`] is attached to a simulation with
//! [`Simulation::set_metrics_enabled`](crate::Simulation::set_metrics_enabled)
//! and aggregates *profiling* data: how long rounds take, where the time
//! goes (churn/act/resolve/feedback), and how the per-round interference
//! and knockout counts distribute. Unlike the [`RoundEvent`] stream,
//! metrics include wall-clock measurements and are **not** part of the
//! determinism contract — two byte-identical runs will report different
//! nanosecond totals. Everything else (counters, value histograms) is
//! deterministic.
//!
//! [`RoundEvent`]: crate::telemetry::RoundEvent

use std::time::Duration;

/// The four instrumented phases of [`Simulation::step`].
///
/// [`Simulation::step`]: crate::Simulation::step
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Applying scheduled churn events at the start of the round.
    Churn,
    /// Collecting actions from active, awake nodes.
    Act,
    /// Channel resolution (including perturbation assembly and loss).
    Resolve,
    /// Delivering feedback and deactivating knocked-out nodes.
    Feedback,
}

impl Phase {
    /// All phases, in step order.
    pub const ALL: [Phase; 4] = [Phase::Churn, Phase::Act, Phase::Resolve, Phase::Feedback];

    fn index(self) -> usize {
        match self {
            Phase::Churn => 0,
            Phase::Act => 1,
            Phase::Resolve => 2,
            Phase::Feedback => 3,
        }
    }

    /// A short stable label (for reports).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Phase::Churn => "churn",
            Phase::Act => "act",
            Phase::Resolve => "resolve",
            Phase::Feedback => "feedback",
        }
    }
}

/// A base-2 geometric histogram over non-negative `f64` values.
///
/// Bucket 0 holds values in `[0, 1)`; bucket `k ≥ 1` holds
/// `[2^(k−1), 2^k)`. 64 buckets cover every finite magnitude the
/// simulator produces (the last bucket absorbs overflow). Alongside the
/// buckets the histogram tracks exact count/sum/min/max, so means are not
/// quantized.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    buckets: [u64; Histogram::NUM_BUCKETS],
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    /// Number of buckets: bucket 0 = `[0, 1)`, bucket `k ≥ 1` =
    /// `[2^(k−1), 2^k)`, with the last bucket absorbing overflow
    /// (everything from `2^62` up, `+∞` included).
    pub const NUM_BUCKETS: usize = 64;

    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Histogram {
            buckets: [0; Histogram::NUM_BUCKETS],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one observation (negative or non-finite values are clamped
    /// into the terminal buckets rather than rejected — metrics must never
    /// panic mid-run).
    pub fn record(&mut self, value: f64) {
        let idx = if value >= 1.0 {
            // Values ≥ 2^62 (including +∞) saturate into the top bucket.
            let k = value.log2();
            if k >= (Histogram::NUM_BUCKETS - 2) as f64 {
                Histogram::NUM_BUCKETS - 1
            } else {
                k as usize + 1
            }
        } else {
            // NaN and everything below 1 (including negatives) land here.
            0
        };
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean observation (0.0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest observation (`None` when empty).
    #[must_use]
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation (`None` when empty).
    #[must_use]
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// The raw bucket counts (bucket 0 = `[0, 1)`, bucket `k` =
    /// `[2^(k−1), 2^k)`).
    #[must_use]
    pub fn bucket_counts(&self) -> &[u64] {
        &self.buckets
    }

    /// An upper bound on the `q`-quantile (`q ∈ [0, 1]`) read from the
    /// bucket boundaries: the least bucket upper edge below which at least
    /// `q` of the mass lies. Coarse by design (factor-of-two resolution);
    /// use the event stream for exact distributions.
    ///
    /// Edge cases (pinned by tests): `None` for an empty histogram or a
    /// `q` outside `[0, 1]` (NaN included); `q = 0.0` bounds the minimum
    /// (the first non-empty bucket's edge); `q = 1.0` bounds the maximum.
    /// When the answer lands in the overflow bucket — whose nominal edge
    /// `2^63` is *not* an upper bound for the values it absorbs — the
    /// exact tracked `max` is returned instead.
    #[must_use]
    pub fn quantile_upper_bound(&self, q: f64) -> Option<f64> {
        if self.count == 0 || !(0.0..=1.0).contains(&q) {
            return None;
        }
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (k, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(if k == Histogram::NUM_BUCKETS - 1 {
                    self.max
                } else if k == 0 {
                    1.0
                } else {
                    2.0f64.powi(k as i32)
                });
            }
        }
        // Unreachable: bucket counts sum to `count ≥ target` whenever
        // `count > 0`. Kept as a non-panicking fallback.
        None
    }

    /// Merges `other` into `self` bucket-wise, as if every observation
    /// recorded into `other` had been recorded here too. Counts, buckets,
    /// min and max merge exactly; `sum` (and hence `mean`) may differ from
    /// sequential recording by floating-point association only.
    ///
    /// Both histograms use the crate-wide base-2 bucket layout; the assert
    /// guards the invariant against a future layout change.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.buckets.len(),
            other.buckets.len(),
            "histogram merge requires identical bucket bounds"
        );
        for (b, &o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Reassembles a histogram from its serialized parts (the inverse of
    /// reading `bucket_counts`/`count`/`sum`/`min`/`max`). Used by the
    /// exporter parse-back paths; the parts are trusted to be mutually
    /// consistent.
    pub(crate) fn from_parts(
        buckets: [u64; Histogram::NUM_BUCKETS],
        count: u64,
        sum: f64,
        min: f64,
        max: f64,
    ) -> Self {
        Histogram {
            buckets,
            count,
            sum,
            min,
            max,
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Aggregated step-loop metrics for one simulation.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    rounds: u64,
    transmissions: u64,
    knockouts: u64,
    churn_applied: u64,
    ge_dropped: u64,
    round_nanos: Histogram,
    knockouts_per_round: Histogram,
    interference: Histogram,
    phase_nanos: [u64; 4],
}

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Records one completed round's aggregates (called by the step loop).
    pub(crate) fn record_round(
        &mut self,
        latency: Duration,
        transmitters: usize,
        knocked_out: usize,
        churn_applied: usize,
        ge_dropped: usize,
    ) {
        self.rounds += 1;
        self.transmissions += transmitters as u64;
        self.knockouts += knocked_out as u64;
        self.churn_applied += churn_applied as u64;
        self.ge_dropped += ge_dropped as u64;
        self.round_nanos.record(latency.as_nanos() as f64);
        self.knockouts_per_round.record(knocked_out as f64);
    }

    /// Records one listener's SINR denominator-side interference (only
    /// available in rounds resolved through the instrumented channel path).
    pub(crate) fn record_interference(&mut self, interference: f64) {
        self.interference.record(interference);
    }

    /// Adds wall-clock time to one phase's total.
    pub(crate) fn add_phase(&mut self, phase: Phase, elapsed: Duration) {
        self.phase_nanos[phase.index()] += elapsed.as_nanos() as u64;
    }

    /// Rounds recorded.
    #[must_use]
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Total transmissions across recorded rounds.
    #[must_use]
    pub fn transmissions(&self) -> u64 {
        self.transmissions
    }

    /// Total protocol knockouts across recorded rounds.
    #[must_use]
    pub fn knockouts(&self) -> u64 {
        self.knockouts
    }

    /// Total churn events applied across recorded rounds.
    #[must_use]
    pub fn churn_applied(&self) -> u64 {
        self.churn_applied
    }

    /// Total Gilbert–Elliott message drops across recorded rounds.
    #[must_use]
    pub fn ge_dropped(&self) -> u64 {
        self.ge_dropped
    }

    /// Distribution of per-round wall-clock latency, in nanoseconds.
    #[must_use]
    pub fn round_latency_nanos(&self) -> &Histogram {
        &self.round_nanos
    }

    /// Distribution of knockouts per round.
    #[must_use]
    pub fn knockouts_per_round(&self) -> &Histogram {
        &self.knockouts_per_round
    }

    /// Distribution of per-listener interference sums (populated only when
    /// a sink requested SINR detail, routing rounds through the
    /// instrumented resolve path).
    #[must_use]
    pub fn interference(&self) -> &Histogram {
        &self.interference
    }

    /// Accumulated wall-clock nanoseconds spent in `phase`.
    #[must_use]
    pub fn phase_nanos(&self, phase: Phase) -> u64 {
        self.phase_nanos[phase.index()]
    }

    /// Merges another registry into this one (counters add, histograms
    /// merge bucket-wise, phase timers add), so montecarlo drivers can
    /// aggregate per-trial registries into one fleet-wide view.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        self.rounds += other.rounds;
        self.transmissions += other.transmissions;
        self.knockouts += other.knockouts;
        self.churn_applied += other.churn_applied;
        self.ge_dropped += other.ge_dropped;
        self.round_nanos.merge(&other.round_nanos);
        self.knockouts_per_round.merge(&other.knockouts_per_round);
        self.interference.merge(&other.interference);
        for (p, &o) in self.phase_nanos.iter_mut().zip(other.phase_nanos.iter()) {
            *p += o;
        }
    }

    /// One-line human-readable summary (for logs and reports).
    #[must_use]
    pub fn summary(&self) -> String {
        let phases: Vec<String> = Phase::ALL
            .iter()
            .map(|&p| format!("{}={}µs", p.name(), self.phase_nanos(p) / 1_000))
            .collect();
        format!(
            "rounds={} tx={} knockouts={} churn={} ge_drops={} mean_round={:.1}µs [{}]",
            self.rounds,
            self.transmissions,
            self.knockouts,
            self.churn_applied,
            self.ge_dropped,
            self.round_nanos.mean() / 1_000.0,
            phases.join(" ")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_geometric() {
        let mut h = Histogram::new();
        h.record(0.0); // bucket 0
        h.record(0.5); // bucket 0
        h.record(1.0); // bucket 1: [1, 2)
        h.record(3.0); // bucket 2: [2, 4)
        h.record(1024.0); // bucket 11: [1024, 2048)
        assert_eq!(h.count(), 5);
        assert_eq!(h.bucket_counts()[0], 2);
        assert_eq!(h.bucket_counts()[1], 1);
        assert_eq!(h.bucket_counts()[2], 1);
        assert_eq!(h.bucket_counts()[11], 1);
        assert_eq!(h.min(), Some(0.0));
        assert_eq!(h.max(), Some(1024.0));
        assert!((h.mean() - (0.5 + 1.0 + 3.0 + 1024.0) / 5.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_handles_pathological_values() {
        let mut h = Histogram::new();
        h.record(-5.0);
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        assert_eq!(h.count(), 3);
        assert_eq!(h.bucket_counts()[0], 2);
        assert_eq!(h.bucket_counts()[Histogram::NUM_BUCKETS - 1], 1);
    }

    #[test]
    fn empty_histogram_reports_none() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.quantile_upper_bound(0.5), None);
    }

    #[test]
    fn quantile_upper_bound_walks_buckets() {
        let mut h = Histogram::new();
        for _ in 0..9 {
            h.record(1.5); // bucket 1, upper edge 2.0
        }
        h.record(100.0); // bucket 7, upper edge 128.0
        assert_eq!(h.quantile_upper_bound(0.5), Some(2.0));
        assert_eq!(h.quantile_upper_bound(1.0), Some(128.0));
        assert_eq!(h.quantile_upper_bound(1.5), None);
    }

    #[test]
    fn quantile_edge_cases_are_pinned() {
        // q = 0.0 bounds the minimum: first non-empty bucket's edge.
        let mut h = Histogram::new();
        h.record(3.0); // bucket 2, edge 4.0
        h.record(100.0); // bucket 7, edge 128.0
        assert_eq!(h.quantile_upper_bound(0.0), Some(4.0));
        assert_eq!(h.quantile_upper_bound(1.0), Some(128.0));
        // Out-of-domain q (including NaN) is None, not a panic.
        assert_eq!(h.quantile_upper_bound(-0.1), None);
        assert_eq!(h.quantile_upper_bound(1.5), None);
        assert_eq!(h.quantile_upper_bound(f64::NAN), None);
        // Empty histogram: None at every q.
        assert_eq!(Histogram::new().quantile_upper_bound(0.0), None);
        assert_eq!(Histogram::new().quantile_upper_bound(1.0), None);
    }

    #[test]
    fn quantile_overflow_bucket_returns_exact_max() {
        // The overflow bucket's nominal edge (2^63) is NOT an upper bound
        // for what it absorbs; the exact tracked max is.
        let mut h = Histogram::new();
        let big = 2.0f64.powi(70);
        h.record(big);
        h.record(2.0 * big);
        assert_eq!(h.quantile_upper_bound(0.5), Some(2.0 * big));
        assert_eq!(h.quantile_upper_bound(1.0), Some(2.0 * big));
        // Mixed: the median stays on a real bucket edge, only the tail
        // falls into the overflow bucket.
        let mut h = Histogram::new();
        h.record(1.5);
        h.record(1.5);
        h.record(f64::INFINITY);
        assert_eq!(h.quantile_upper_bound(0.5), Some(2.0));
        assert_eq!(h.quantile_upper_bound(1.0), Some(f64::INFINITY));
    }

    #[test]
    fn merge_is_recording_concatenated_samples() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut both = Histogram::new();
        for v in [0.0, 0.5, 7.0, 1e9] {
            a.record(v);
            both.record(v);
        }
        for v in [2.0, f64::INFINITY, -3.0] {
            b.record(v);
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a.bucket_counts(), both.bucket_counts());
        assert_eq!(a.count(), both.count());
        assert_eq!(a.min(), both.min());
        assert_eq!(a.max(), both.max());
        assert_eq!(a.sum(), both.sum()); // same values, same order per side
    }

    #[test]
    fn merge_with_empty_is_identity_both_ways() {
        let mut a = Histogram::new();
        a.record(5.0);
        let snapshot = a.clone();
        a.merge(&Histogram::new());
        assert_eq!(a, snapshot);
        let mut empty = Histogram::new();
        empty.merge(&snapshot);
        assert_eq!(empty, snapshot);
    }

    #[test]
    fn registry_merge_aggregates_everything() {
        let mut a = MetricsRegistry::new();
        a.record_round(Duration::from_micros(5), 3, 2, 1, 4);
        a.add_phase(Phase::Resolve, Duration::from_micros(9));
        a.record_interference(42.0);
        let mut b = MetricsRegistry::new();
        b.record_round(Duration::from_micros(7), 1, 0, 0, 0);
        b.add_phase(Phase::Act, Duration::from_micros(2));
        a.merge(&b);
        assert_eq!(a.rounds(), 2);
        assert_eq!(a.transmissions(), 4);
        assert_eq!(a.knockouts(), 2);
        assert_eq!(a.phase_nanos(Phase::Resolve), 9_000);
        assert_eq!(a.phase_nanos(Phase::Act), 2_000);
        assert_eq!(a.round_latency_nanos().count(), 2);
        assert_eq!(a.interference().count(), 1);
    }

    #[test]
    fn registry_accumulates_rounds_and_phases() {
        let mut m = MetricsRegistry::new();
        m.record_round(Duration::from_micros(5), 3, 2, 1, 4);
        m.record_round(Duration::from_micros(7), 1, 0, 0, 0);
        m.add_phase(Phase::Resolve, Duration::from_micros(9));
        m.add_phase(Phase::Resolve, Duration::from_micros(1));
        m.record_interference(42.0);
        assert_eq!(m.rounds(), 2);
        assert_eq!(m.transmissions(), 4);
        assert_eq!(m.knockouts(), 2);
        assert_eq!(m.churn_applied(), 1);
        assert_eq!(m.ge_dropped(), 4);
        assert_eq!(m.phase_nanos(Phase::Resolve), 10_000);
        assert_eq!(m.phase_nanos(Phase::Act), 0);
        assert_eq!(m.knockouts_per_round().count(), 2);
        assert_eq!(m.interference().count(), 1);
        assert!((m.round_latency_nanos().mean() - 6_000.0).abs() < 1e-9);
        let s = m.summary();
        assert!(s.contains("rounds=2") && s.contains("resolve=10µs"), "{s}");
    }
}
