//! Structured per-round observability: events, sinks, metrics, JSONL.
//!
//! Every quantitative claim in the experiment suite rests on per-round
//! quantities the simulator computes and would otherwise throw away — SINR
//! margins, interference sums, knockout counts, active-set decay. This
//! module records them as a typed [`RoundEvent`] stream delivered to a
//! pluggable [`TelemetrySink`], with:
//!
//! * **Determinism**: events are derived exclusively from simulation state,
//!   never from wall clocks or sink behavior. Attaching any sink leaves the
//!   run's `RunResult` byte-identical to a sink-free run across cache and
//!   thread settings (the sink *observes* the same resolve paths; when it
//!   requests SINR detail the channel switches to
//!   [`resolve_instrumented`](fading_channel::Channel::resolve_instrumented),
//!   which is contractually bit-identical).
//! * **Zero cost when disabled**: with no sink attached, the step loop
//!   pays only a handful of `Option::is_some` checks (guarded by the
//!   `telemetry_overhead_n2048` bench, ≤ 5 % of baseline step time).
//! * **JSONL export**: [`jsonl`] serializes event streams one JSON object
//!   per line and parses them back losslessly (f64s round-trip via
//!   shortest-representation formatting). The writer is hand-rolled —
//!   the workspace's vendored `serde` is an offline stub (see
//!   `vendor/serde`), so derive-based serialization is unavailable.
//! * **Metrics**: [`MetricsRegistry`] aggregates counters, log-bucketed
//!   histograms (round latency, interference, knockouts per round) and
//!   wall-clock phase timers around the step loop's churn/act/resolve/
//!   feedback phases. Metrics contain wall-clock durations and are
//!   therefore *excluded* from the determinism contract — the event
//!   stream is the reproducible artifact, the registry is for profiling.
//!
//! # Example
//!
//! ```
//! use fading_channel::{SinrChannel, SinrParams};
//! use fading_geom::Deployment;
//! use fading_sim::telemetry::{MemorySink, TelemetryDetail};
//! use fading_sim::{Action, Protocol, Reception, Simulation};
//! use rand::{rngs::SmallRng, Rng};
//!
//! #[derive(Debug)]
//! struct Simple { active: bool }
//! impl Protocol for Simple {
//!     fn act(&mut self, _r: u64, rng: &mut SmallRng) -> Action {
//!         if rng.gen_bool(0.25) { Action::Transmit } else { Action::Listen }
//!     }
//!     fn feedback(&mut self, _r: u64, rx: &Reception) {
//!         if rx.is_message() { self.active = false; }
//!     }
//!     fn is_active(&self) -> bool { self.active }
//!     fn name(&self) -> &'static str { "simple" }
//! }
//!
//! let d = Deployment::uniform_square(16, 10.0, 1);
//! let ch = SinrChannel::new(SinrParams::default_single_hop());
//! let mut sim = Simulation::new(d, Box::new(ch), 7, |_| Box::new(Simple { active: true }));
//! sim.set_telemetry_sink(Box::new(MemorySink::new(TelemetryDetail::ids())));
//! let result = sim.run_until_resolved(10_000);
//! let events = MemorySink::recover(sim.take_telemetry_sink().unwrap()).unwrap().into_events();
//! assert_eq!(events.len() as u64, result.rounds_executed());
//! assert!(events.last().unwrap().resolved);
//! ```

pub mod jsonl;
mod metrics;

pub use metrics::{Histogram, MetricsRegistry, Phase};

use fading_channel::{NodeId, SinrBreakdown};

use crate::RunResult;

/// What happened in one simulated round, as seen by a [`TelemetrySink`].
///
/// Count fields are always populated. The id vectors are populated only
/// when the sink's [`TelemetryDetail::ids`] flag is set, and `sinr` only
/// under [`TelemetryDetail::sinr`] — they stay empty (not `None`) otherwise
/// so consumers can iterate unconditionally.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RoundEvent {
    /// 1-based round number.
    pub round: u64,
    /// Active nodes before this round's churn events were applied.
    pub active_pre_churn: usize,
    /// Nodes that actually participated (active ∧ awake, post-churn):
    /// `transmitters + listeners`. Matches `RoundRecord::active_before`.
    pub participants: usize,
    /// Number of transmitting nodes.
    pub transmitters: usize,
    /// Number of listening nodes.
    pub listeners: usize,
    /// Nodes knocked out (deactivated by their protocol) this round.
    pub knocked_out: usize,
    /// Churn events (crashes/revivals) that actually took effect at the
    /// start of this round.
    pub churn_applied: usize,
    /// Multiplier applied to ambient noise this round (1.0 = clean).
    pub noise_scale: f64,
    /// Total jammer interference power landed across all nodes this round
    /// (0.0 when no jammer was active).
    pub jam_power: f64,
    /// Whether the Gilbert–Elliott loss process was in its burst state.
    pub ge_in_burst: bool,
    /// Messages erased by the Gilbert–Elliott drop pass this round.
    pub ge_dropped: usize,
    /// Which resolve tier served this round's channel resolution. Pure
    /// observability: all paths are bit-identical by contract, and two
    /// runs differing only in engine settings will differ here (and only
    /// here), which is why determinism suites compare events across
    /// thread counts but not across engine configurations.
    pub resolve_path: crate::obs::ResolvePath,
    /// Far-field listeners that fell back to the exact scan this round
    /// (0 on every other path).
    pub ff_fallbacks: usize,
    /// Whether this round resolved contention (exactly one transmitter).
    pub resolved: bool,
    /// The solo transmitter when `resolved`.
    pub winner: Option<NodeId>,
    /// Transmitting node ids ([`TelemetryDetail::ids`] only).
    pub transmitter_ids: Vec<NodeId>,
    /// Ids knocked out this round ([`TelemetryDetail::ids`] only).
    pub knocked_out_ids: Vec<NodeId>,
    /// Ids crashed by churn at the start of this round
    /// ([`TelemetryDetail::ids`] only).
    pub crashed_ids: Vec<NodeId>,
    /// Ids revived by churn at the start of this round
    /// ([`TelemetryDetail::ids`] only).
    pub revived_ids: Vec<NodeId>,
    /// Per-listener SINR decompositions, in listener order
    /// ([`TelemetryDetail::sinr`] only; empty on geometry-free channels,
    /// which have no SINR to decompose).
    pub sinr: Vec<SinrBreakdown>,
}

/// How much per-round detail a sink wants the simulator to collect.
///
/// Counts are always recorded; ids and SINR breakdowns cost extra work per
/// round, so sinks opt in. The simulator reads this **once, at attach
/// time** — a sink cannot change its detail level mid-run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TelemetryDetail {
    /// Populate the per-event id vectors (transmitters, knockouts, churn).
    pub ids: bool,
    /// Populate per-listener [`SinrBreakdown`]s (routes resolution through
    /// the instrumented channel path — bit-identical by contract).
    pub sinr: bool,
}

impl TelemetryDetail {
    /// Counts only — the cheapest level.
    #[must_use]
    pub fn counts() -> Self {
        TelemetryDetail { ids: false, sinr: false }
    }

    /// Counts plus id vectors.
    #[must_use]
    pub fn ids() -> Self {
        TelemetryDetail { ids: true, sinr: false }
    }

    /// Everything: counts, ids, and per-listener SINR breakdowns.
    #[must_use]
    pub fn full() -> Self {
        TelemetryDetail { ids: true, sinr: true }
    }
}

/// A consumer of per-round [`RoundEvent`]s, attached to a simulation via
/// [`Simulation::set_telemetry_sink`](crate::Simulation::set_telemetry_sink).
///
/// Sinks must be pure observers: nothing a sink does can feed back into
/// the simulation (the API gives it no handle to do so), which is what
/// makes the determinism contract structural rather than behavioral.
pub trait TelemetrySink: std::fmt::Debug + Send {
    /// The detail level this sink wants. Read once at attach time.
    fn detail(&self) -> TelemetryDetail {
        TelemetryDetail::counts()
    }

    /// Called once per executed round, after the round completed.
    fn on_round(&mut self, event: &RoundEvent);

    /// Called once when `run_until_resolved` finishes (not called for
    /// manually stepped simulations).
    fn on_run_end(&mut self, result: &RunResult) {
        let _ = result;
    }

    /// Type-erasure escape hatch so callers can recover a concrete sink
    /// from the `Box<dyn TelemetrySink>` returned by
    /// [`Simulation::take_telemetry_sink`](crate::Simulation::take_telemetry_sink)
    /// (see [`MemorySink::recover`]). Implement as `self`.
    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any>;
}

/// A sink that drops every event: the zero-cost baseline used by the
/// overhead bench and by callers who only want the (side-effect-free)
/// proof that telemetry does not perturb a run.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopSink;

impl TelemetrySink for NoopSink {
    fn on_round(&mut self, _event: &RoundEvent) {}

    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
        self
    }
}

/// A sink that buffers every event in memory, at a chosen detail level.
#[derive(Debug, Clone, Default)]
pub struct MemorySink {
    detail: TelemetryDetail,
    events: Vec<RoundEvent>,
}

impl MemorySink {
    /// An empty sink requesting the given detail level.
    #[must_use]
    pub fn new(detail: TelemetryDetail) -> Self {
        MemorySink {
            detail,
            events: Vec::new(),
        }
    }

    /// The buffered events so far, in round order.
    #[must_use]
    pub fn events(&self) -> &[RoundEvent] {
        &self.events
    }

    /// Consumes the sink, yielding its events.
    #[must_use]
    pub fn into_events(self) -> Vec<RoundEvent> {
        self.events
    }

    /// Downcasts a boxed sink back to a `MemorySink` (`None` if the box
    /// holds some other sink type).
    #[must_use]
    pub fn recover(sink: Box<dyn TelemetrySink>) -> Option<MemorySink> {
        sink.into_any().downcast().ok().map(|b| *b)
    }
}

impl TelemetrySink for MemorySink {
    fn detail(&self) -> TelemetryDetail {
        self.detail
    }

    fn on_round(&mut self, event: &RoundEvent) {
        self.events.push(event.clone());
    }

    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
        self
    }
}

/// Reconstructs the per-round active-set trajectory from an event stream
/// recorded at [`TelemetryDetail::ids`] (or higher).
///
/// Returns `events.len() + 1` snapshots: the initial set, then the set
/// after each round (churn applied, then knockouts removed — the order the
/// simulator applies them). Snapshot `k` is therefore exactly what
/// `Simulation::active_ids()` returned *before* round `k + 1` executed,
/// which is what observer-loop consumers (e.g. the E9 schedule-adherence
/// analysis) historically snapshotted.
#[must_use]
pub fn replay_active_sets(initial_active: &[NodeId], events: &[RoundEvent]) -> Vec<Vec<NodeId>> {
    let mut snapshots = Vec::with_capacity(events.len() + 1);
    let mut current: Vec<NodeId> = initial_active.to_vec();
    snapshots.push(current.clone());
    for ev in events {
        if !ev.crashed_ids.is_empty() {
            current.retain(|v| !ev.crashed_ids.contains(v));
        }
        for &v in &ev.revived_ids {
            if let Err(pos) = current.binary_search(&v) {
                current.insert(pos, v);
            }
        }
        if !ev.knocked_out_ids.is_empty() {
            current.retain(|v| !ev.knocked_out_ids.contains(v));
        }
        snapshots.push(current.clone());
    }
    snapshots
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(round: u64) -> RoundEvent {
        RoundEvent {
            round,
            participants: 4,
            transmitters: 2,
            listeners: 2,
            noise_scale: 1.0,
            ..RoundEvent::default()
        }
    }

    #[test]
    fn detail_presets() {
        assert!(!TelemetryDetail::counts().ids);
        assert!(!TelemetryDetail::counts().sinr);
        assert!(TelemetryDetail::ids().ids);
        assert!(!TelemetryDetail::ids().sinr);
        assert!(TelemetryDetail::full().ids && TelemetryDetail::full().sinr);
        assert_eq!(TelemetryDetail::default(), TelemetryDetail::counts());
    }

    #[test]
    fn memory_sink_buffers_in_order() {
        let mut sink = MemorySink::new(TelemetryDetail::counts());
        sink.on_round(&event(1));
        sink.on_round(&event(2));
        assert_eq!(sink.events().len(), 2);
        assert_eq!(sink.events()[1].round, 2);
        assert_eq!(sink.into_events().len(), 2);
    }

    #[test]
    fn recover_round_trips_through_box() {
        let mut sink = MemorySink::new(TelemetryDetail::full());
        sink.on_round(&event(1));
        let boxed: Box<dyn TelemetrySink> = Box::new(sink);
        assert_eq!(boxed.detail(), TelemetryDetail::full());
        let back = MemorySink::recover(boxed).expect("must downcast");
        assert_eq!(back.events().len(), 1);
    }

    #[test]
    fn recover_rejects_foreign_sinks() {
        let boxed: Box<dyn TelemetrySink> = Box::new(NoopSink);
        assert!(MemorySink::recover(boxed).is_none());
    }

    #[test]
    fn replay_applies_knockouts_and_churn_in_order() {
        let mut e1 = event(1);
        e1.knocked_out_ids = vec![1, 3];
        let mut e2 = event(2);
        e2.crashed_ids = vec![0];
        e2.revived_ids = vec![3]; // revived by churn, then...
        e2.knocked_out_ids = vec![3]; // ...knocked out again the same round
        let snaps = replay_active_sets(&[0, 1, 2, 3], &[e1, e2]);
        assert_eq!(snaps.len(), 3);
        assert_eq!(snaps[0], vec![0, 1, 2, 3]);
        assert_eq!(snaps[1], vec![0, 2]);
        assert_eq!(snaps[2], vec![2]);
    }

    #[test]
    fn replay_revive_keeps_sorted_order_without_duplicates() {
        let mut e = event(1);
        e.revived_ids = vec![2, 2, 0];
        let snaps = replay_active_sets(&[1, 3], &[e]);
        assert_eq!(snaps[1], vec![0, 1, 2, 3]);
    }
}
