//! A hand-rolled work-stealing thread pool for in-round data parallelism.
//!
//! [`StealPool`] implements `fading-channel`'s [`ChunkExecutor`]: it runs a
//! batch of independent, identically-shaped tasks (the hierarchical
//! engine's listener chunks) across OS threads. The vendored-dependency
//! constraint rules out rayon, and the workload doesn't need a persistent
//! pool — a round's resolve is one bulk-synchronous batch — so each
//! [`StealPool::run`] spawns a `std::thread::scope`, which also keeps the
//! crate `#![forbid(unsafe_code)]`-clean (scoped threads borrow the task
//! closure safely).
//!
//! # Scheduling
//!
//! `0..num_tasks` is pre-split into one contiguous range per worker, each
//! packed `(lo, hi)` into a single `AtomicU64`. A worker pops from the
//! *front* of its own range; an idle worker steals from the *back* of a
//! victim's range (one task at a time — chunk granularity is coarse enough
//! that finer amortization buys nothing). Both operations are CAS loops on
//! the packed word, so a task index is handed out exactly once. Ranges
//! only ever shrink, so a full idle sweep finding every range empty is a
//! correct termination proof.
//!
//! # Determinism
//!
//! Scheduling decides only *which thread* runs a task, never what the task
//! computes or where its output lands — the [`ChunkExecutor`] contract.
//! The dedicated suite (`tests/parallel_determinism.rs`) drives this pool
//! with adversarial per-task sleeps to prove completion order cannot leak
//! into results.

use std::sync::atomic::{AtomicU64, Ordering};

use fading_channel::ChunkExecutor;

/// A scoped work-stealing executor over a fixed number of worker threads.
///
/// `threads = 1` runs every batch inline on the calling thread (no spawns,
/// no atomics); results are byte-identical either way.
#[derive(Debug, Clone, Copy)]
pub struct StealPool {
    threads: usize,
}

#[inline]
fn pack(lo: u32, hi: u32) -> u64 {
    (u64::from(hi) << 32) | u64::from(lo)
}

#[inline]
fn unpack(v: u64) -> (u32, u32) {
    (v as u32, (v >> 32) as u32)
}

/// Pops the front of a packed range, or `None` when it is empty.
fn take_front(r: &AtomicU64) -> Option<usize> {
    let mut cur = r.load(Ordering::Acquire);
    loop {
        let (lo, hi) = unpack(cur);
        if lo >= hi {
            return None;
        }
        match r.compare_exchange_weak(cur, pack(lo + 1, hi), Ordering::AcqRel, Ordering::Acquire) {
            Ok(_) => return Some(lo as usize),
            Err(seen) => cur = seen,
        }
    }
}

/// Steals the back of a packed range, or `None` when it is empty.
fn take_back(r: &AtomicU64) -> Option<usize> {
    let mut cur = r.load(Ordering::Acquire);
    loop {
        let (lo, hi) = unpack(cur);
        if lo >= hi {
            return None;
        }
        match r.compare_exchange_weak(cur, pack(lo, hi - 1), Ordering::AcqRel, Ordering::Acquire) {
            Ok(_) => return Some((hi - 1) as usize),
            Err(seen) => cur = seen,
        }
    }
}

fn worker_loop(me: usize, ranges: &[AtomicU64], task: &(dyn Fn(usize) + Sync)) {
    loop {
        // Drain own range front-to-back.
        if let Some(i) = take_front(&ranges[me]) {
            task(i);
            continue;
        }
        // Idle: sweep victims (round-robin from the right neighbor),
        // stealing from the back to stay off the owner's front.
        let mut stole = false;
        for off in 1..ranges.len() {
            let victim = (me + off) % ranges.len();
            if let Some(i) = take_back(&ranges[victim]) {
                task(i);
                stole = true;
                break;
            }
        }
        if !stole {
            // Every range was empty when swept, and ranges only shrink —
            // no task remains unclaimed.
            return;
        }
    }
}

impl StealPool {
    /// A pool of `threads` workers (clamped to at least 1).
    #[must_use]
    pub fn new(threads: usize) -> Self {
        StealPool {
            threads: threads.max(1),
        }
    }

    /// Number of worker threads a batch may use.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `task(i)` for every `i in 0..num_tasks`, returning after all
    /// completed (the [`ChunkExecutor`] contract). Worker threads are
    /// scoped to this call; a panicking task propagates the panic.
    ///
    /// # Panics
    ///
    /// Panics if `num_tasks` exceeds `u32::MAX` (the packed-range format;
    /// four billion chunks is far beyond any real batch).
    pub fn run(&self, num_tasks: usize, task: &(dyn Fn(usize) + Sync)) {
        assert!(
            u32::try_from(num_tasks).is_ok(),
            "batch of {num_tasks} tasks exceeds the packed-range format"
        );
        let workers = self.threads.min(num_tasks);
        if workers <= 1 {
            for i in 0..num_tasks {
                task(i);
            }
            return;
        }
        // Pre-split into one contiguous range per worker.
        let ranges: Vec<AtomicU64> = (0..workers)
            .map(|w| {
                let lo = (w * num_tasks / workers) as u32;
                let hi = ((w + 1) * num_tasks / workers) as u32;
                AtomicU64::new(pack(lo, hi))
            })
            .collect();
        let ranges = &ranges;
        std::thread::scope(|s| {
            for w in 1..workers {
                s.spawn(move || worker_loop(w, ranges, task));
            }
            // The calling thread is worker 0.
            worker_loop(0, ranges, task);
        });
    }
}

impl ChunkExecutor for StealPool {
    fn run(&self, num_tasks: usize, task: &(dyn Fn(usize) + Sync)) {
        StealPool::run(self, num_tasks, task);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    fn hit_counts(threads: usize, num_tasks: usize) -> Vec<u32> {
        let pool = StealPool::new(threads);
        let hits: Vec<AtomicU32> = (0..num_tasks).map(|_| AtomicU32::new(0)).collect();
        pool.run(num_tasks, &|i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        hits.into_iter().map(AtomicU32::into_inner).collect()
    }

    #[test]
    fn every_task_runs_exactly_once() {
        for threads in [1, 2, 3, 8] {
            for num_tasks in [0, 1, 2, 7, 64, 1000] {
                let hits = hit_counts(threads, num_tasks);
                assert!(
                    hits.iter().all(|&h| h == 1),
                    "threads={threads} tasks={num_tasks}: {hits:?}"
                );
            }
        }
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let pool = StealPool::new(0);
        assert_eq!(pool.threads(), 1);
        assert_eq!(hit_counts(0, 5), vec![1; 5]);
    }

    #[test]
    fn more_threads_than_tasks_is_fine() {
        assert_eq!(hit_counts(8, 3), vec![1; 3]);
    }

    #[test]
    fn packed_range_round_trips() {
        for (lo, hi) in [(0, 0), (0, 1), (7, 1000), (u32::MAX - 1, u32::MAX)] {
            assert_eq!(unpack(pack(lo, hi)), (lo, hi));
        }
    }

    #[test]
    fn stealing_balances_a_skewed_batch() {
        // One pathologically slow task at the front of worker 0's range;
        // the rest must complete regardless (stolen by idle workers).
        let pool = StealPool::new(4);
        let hits: Vec<AtomicU32> = (0..64).map(|_| AtomicU32::new(0)).collect();
        pool.run(64, &|i| {
            if i == 0 {
                std::thread::sleep(std::time::Duration::from_millis(50));
            }
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }
}
