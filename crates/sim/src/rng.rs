//! Deterministic RNG derivation.
//!
//! Every random stream in a simulation is derived from one master seed:
//! node `i` draws from `SmallRng(split_mix64(seed ⊕ f(i)))` and the channel
//! from an independent lane. SplitMix64 is the standard seed-spreading
//! permutation (Steele, Lea, Flood 2014); it guarantees that structured
//! master seeds (0, 1, 2, …) still yield well-separated streams.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// The SplitMix64 finalizer: a bijective avalanche permutation on `u64`.
///
/// # Example
///
/// ```
/// use fading_sim::split_mix64;
/// // Deterministic and well-spread even for adjacent inputs.
/// assert_ne!(split_mix64(1), split_mix64(2));
/// assert_eq!(split_mix64(42), split_mix64(42));
/// ```
#[must_use]
pub fn split_mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The private RNG of node `node` in a simulation with master seed `seed`.
#[must_use]
pub fn node_rng(seed: u64, node: usize) -> SmallRng {
    SmallRng::seed_from_u64(split_mix64(
        seed ^ split_mix64(0x4E4F_4445_0000_0000 ^ node as u64),
    ))
}

/// The channel's RNG lane (used by stochastic channels such as Rayleigh
/// fading) for master seed `seed`.
#[must_use]
pub fn channel_rng(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(split_mix64(seed ^ 0xC8A4_4E4C_0000_0001))
}

/// The fault-injection RNG lane (Gilbert–Elliott state transitions and
/// burst-loss draws) for master seed `seed`.
///
/// Kept separate from [`channel_rng`] so that attaching a fault plan never
/// perturbs the channel's own random stream: a plan whose loss model is
/// disabled leaves the trajectory byte-identical to a run with no plan.
#[must_use]
pub fn fault_rng(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(split_mix64(seed ^ 0xFA17_1A4E_0000_0002))
}

/// The engine self-check RNG lane (listener sampling for the opt-in
/// [`SelfCheck`](crate::Simulation::set_self_check) re-resolution audit)
/// for master seed `seed`.
///
/// Kept separate from every other lane so that enabling self-checks never
/// perturbs the node, channel, or fault streams: a run with self-checks on
/// is byte-identical to the same run with them off.
#[must_use]
pub fn self_check_rng(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(split_mix64(seed ^ 0x5E1F_C8EC_0000_0003))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn split_mix_is_deterministic() {
        assert_eq!(split_mix64(0), split_mix64(0));
        assert_eq!(split_mix64(u64::MAX), split_mix64(u64::MAX));
    }

    #[test]
    fn adjacent_seeds_diverge() {
        // Adjacent master seeds must give different node streams.
        let a: u64 = node_rng(1, 0).gen();
        let b: u64 = node_rng(2, 0).gen();
        assert_ne!(a, b);
    }

    #[test]
    fn adjacent_nodes_diverge() {
        let a: u64 = node_rng(7, 0).gen();
        let b: u64 = node_rng(7, 1).gen();
        assert_ne!(a, b);
    }

    #[test]
    fn channel_lane_differs_from_node_lanes() {
        let c: u64 = channel_rng(7).gen();
        for node in 0..64 {
            let n: u64 = node_rng(7, node).gen();
            assert_ne!(c, n, "channel lane collided with node {node}");
        }
    }

    #[test]
    fn fault_lane_is_independent() {
        let f: u64 = fault_rng(7).gen();
        let c: u64 = channel_rng(7).gen();
        assert_ne!(f, c, "fault lane collided with channel lane");
        for node in 0..64 {
            let n: u64 = node_rng(7, node).gen();
            assert_ne!(f, n, "fault lane collided with node {node}");
        }
        let a: u64 = fault_rng(1).gen();
        let b: u64 = fault_rng(2).gen();
        assert_ne!(a, b);
    }

    #[test]
    fn self_check_lane_is_independent() {
        let s: u64 = self_check_rng(7).gen();
        assert_ne!(s, channel_rng(7).gen::<u64>());
        assert_ne!(s, fault_rng(7).gen::<u64>());
        for node in 0..64 {
            let n: u64 = node_rng(7, node).gen();
            assert_ne!(s, n, "self-check lane collided with node {node}");
        }
    }

    #[test]
    fn split_mix_avalanches_low_bits() {
        // Flipping one input bit should flip roughly half the output bits.
        let mut total = 0u32;
        for i in 0..64u64 {
            let flipped = (split_mix64(i) ^ split_mix64(i ^ 1)).count_ones();
            total += flipped;
        }
        let avg = f64::from(total) / 64.0;
        assert!((20.0..44.0).contains(&avg), "poor avalanche: {avg}");
    }
}
