//! The round-based simulation engine.

use std::sync::Arc;
use std::time::Instant;

use rand::rngs::SmallRng;
use rand::Rng;

use fading_channel::{
    ActiveInterference, Channel, ChannelPerturbation, FarFieldEngine, FarFieldStats, GainCache,
    HierarchicalFarFieldEngine, NodeId, SinrBreakdown,
};
use fading_geom::{Deployment, Point};

use crate::faults::{ChurnEvent, ChurnKind, FaultError, FaultPlan};
use crate::obs::{EngineCounters, ResolvePath, SpanGuard, Tracer};
use crate::pool::StealPool;
use crate::recover::snapshot::{fnv1a64, SimSnapshot, SnapshotError};
use crate::result::{RoundRecord, RunResult, Trace, TraceLevel};
use crate::rng::{channel_rng, fault_rng, node_rng, self_check_rng};
use crate::telemetry::{MetricsRegistry, Phase, RoundEvent, TelemetryDetail, TelemetrySink};
use crate::{Action, Protocol};

/// Deployment size above which a freshly built [`Simulation`] routes
/// rounds through the hierarchical far-field engine by default.
///
/// Below this the flat [`FarFieldEngine`] (tier 3) is already fast — its
/// tile-pair tables are capped at `MAX_TILES_PER_SIDE²` entries — and the
/// tree traversal's extra bookkeeping buys nothing. Above it the flat
/// engine's per-listener far-field refresh starts scanning tens of
/// thousands of tiles and the `O(log)`-depth tree takes over (tier 4).
/// [`Simulation::set_hierarchical_enabled`] overrides in either direction.
pub const HIERARCHICAL_AUTO_THRESHOLD: usize = 65_536;

/// Why a simulation could not be constructed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The deployment had no nodes.
    EmptyDeployment,
    /// Every protocol instance reported inactive at construction, so no
    /// round could ever have a transmitter and the run could never resolve.
    NoActiveNodes,
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::EmptyDeployment => write!(f, "deployment has no nodes"),
            SimError::NoActiveNodes => {
                write!(f, "no protocol instance is active; the run can never resolve")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// What happened in one call to [`Simulation::step`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// Exactly one active node transmitted: contention is resolved.
    Resolved {
        /// The solo transmitter.
        winner: NodeId,
    },
    /// Zero or at least two active nodes transmitted.
    Unresolved {
        /// Number of transmitters this round.
        transmitters: usize,
        /// Number of nodes knocked out by this round's receptions.
        knocked_out: usize,
    },
}

/// Opt-in self-checking state: per-round sampled re-resolution of
/// listeners through the exact path (see [`Simulation::set_self_check`]).
#[derive(Debug)]
struct SelfCheck {
    /// Listeners audited per eligible round (0 never constructed).
    samples: usize,
    /// Dedicated RNG lane for sample selection — drawing from the node or
    /// channel lanes would perturb the run under audit.
    rng: SmallRng,
    /// Test hook: force the next audited sample to report a violation.
    inject_violation: bool,
}

/// A synchronous-round simulation: one deployment, one channel, one protocol
/// instance per node.
///
/// Each round the simulator (1) asks every active node for its action,
/// (2) resolves receptions for the active listeners through the channel,
/// (3) delivers feedback to the listeners, and (4) deactivates nodes whose
/// protocol reports inactive. The run is **resolved** in the first round in
/// which exactly one active node transmits.
///
/// See the [crate-level example](crate) for a complete usage sketch.
#[derive(Debug)]
pub struct Simulation {
    positions: Vec<Point>,
    channel: Box<dyn Channel>,
    // Master seed, retained for snapshot fingerprinting and the
    // self-check RNG lane.
    seed: u64,
    protocols: Vec<Box<dyn Protocol>>,
    node_rngs: Vec<SmallRng>,
    chan_rng: SmallRng,
    active: Vec<bool>,
    num_active: usize,
    round: u64,
    total_transmissions: u64,
    resolved_at: Option<u64>,
    winner: Option<NodeId>,
    trace_level: TraceLevel,
    trace: Trace,
    // Precomputed pairwise gains (None when the channel has no
    // deterministic gains or the deployment exceeds the size guard), and
    // the incremental interference totals maintained on top of them.
    gain_cache: Option<GainCache>,
    cache_enabled: bool,
    active_interference: Option<ActiveInterference>,
    // Tile-aggregated far-field engine (None when the channel cannot
    // support the decision-exactness contract — radio and Rayleigh). By
    // default it serves the tier above the gain cache: enabled exactly
    // when the deployment exceeded the cache's size guard.
    farfield: Option<FarFieldEngine>,
    farfield_enabled: bool,
    // Hierarchical (tile-tree) far-field engine, the tier above the flat
    // engine. Built eagerly only when the deployment crosses
    // HIERARCHICAL_AUTO_THRESHOLD; `set_hierarchical_enabled(true)` builds
    // it on demand at any size. None when the channel cannot support the
    // decision-exactness contract (radio and Rayleigh).
    hierarchical: Option<HierarchicalFarFieldEngine>,
    hierarchical_enabled: bool,
    // Executor for the hierarchical engine's per-listener-chunk resolve.
    // Thread count never changes results (the ChunkExecutor contract);
    // defaults to 1, raised via `set_resolve_threads`.
    resolve_pool: StealPool,
    // Scratch buffers reused across rounds.
    transmitters: Vec<NodeId>,
    listeners: Vec<NodeId>,
    // Fault injection (see crate::faults). `fault_plan` is None until a
    // plan is attached; all other fields are cheap placeholders until then.
    fault_plan: Option<FaultPlan>,
    fault_rng: SmallRng,
    // First round in which node i participates (0 = from the start).
    wake_round: Vec<u64>,
    // Crash/Revive events sorted by round, consumed via `churn_cursor`.
    churn_events: Vec<ChurnEvent>,
    churn_cursor: usize,
    // jam_gains[j * n + v] = interference power jammer j lands on node v.
    jam_gains: Vec<f64>,
    jam_scratch: Vec<f64>,
    // Gilbert–Elliott state: currently in the bad (burst) state?
    loss_in_burst: bool,
    // Telemetry (see crate::telemetry). `telemetry` is None until a sink
    // is attached; the detail level is cached at attach time. With no sink
    // the step loop pays only `Option::is_some` checks (guarded by the
    // `telemetry_overhead_n2048` bench).
    telemetry: Option<Box<dyn TelemetrySink>>,
    telemetry_detail: TelemetryDetail,
    metrics: Option<Box<MetricsRegistry>>,
    // Span tracer (see crate::obs). None until attached; with no tracer
    // every span site is one `Option` check returning an inert guard
    // (guarded by the `tracer_overhead_n2048` bench).
    tracer: Option<Arc<Tracer>>,
    // Engine-decision counters (see crate::obs::EngineCounters). The
    // far-field ladder counters live in the engine itself and are merged
    // in by `engine_counters()`.
    counters: EngineCounters,
    // Scratch buffers for event assembly, reused across rounds.
    sinr_scratch: Vec<SinrBreakdown>,
    knocked_scratch: Vec<NodeId>,
    crashed_scratch: Vec<NodeId>,
    revived_scratch: Vec<NodeId>,
    // Maximum RoundRecords retained in the trace (keep-first).
    trace_cap: usize,
    // Opt-in self-checking engines (None = disabled, the default); the
    // scratch holds the audit resolve's SINR breakdowns.
    self_check: Option<SelfCheck>,
    self_check_scratch: Vec<SinrBreakdown>,
}

impl Simulation {
    /// Creates a simulation over `deployment` with the given channel and
    /// master `seed`. `make_protocol` is called once per node id to build
    /// that node's protocol instance.
    pub fn new<F>(
        deployment: Deployment,
        channel: Box<dyn Channel>,
        seed: u64,
        mut make_protocol: F,
    ) -> Self
    where
        F: FnMut(NodeId) -> Box<dyn Protocol>,
    {
        let n = deployment.len();
        let protocols: Vec<Box<dyn Protocol>> = (0..n).map(&mut make_protocol).collect();
        let node_rngs: Vec<SmallRng> = (0..n).map(|i| node_rng(seed, i)).collect();
        let active: Vec<bool> = protocols.iter().map(|p| p.is_active()).collect();
        let num_active = active.iter().filter(|&&a| a).count();
        let positions = deployment.points().to_vec();
        // Per-channel cache policy: cached and uncached resolves are
        // bit-identical by contract, so declining the cache here (e.g. the
        // Rayleigh channel past RAYLEIGH_CACHE_PROFITABLE_NODES, where the
        // memory-bound n×n rows lose to the batched kernels) is purely a
        // performance decision and can never change results.
        let gain_cache = if channel.gain_cache_profitable(n) {
            channel.build_gain_cache(&positions)
        } else {
            None
        };
        let mut active_interference = gain_cache.as_ref().map(ActiveInterference::new);
        if let (Some(engine), Some(cache)) = (&mut active_interference, &gain_cache) {
            for (i, &is_active) in active.iter().enumerate() {
                if !is_active {
                    engine.deactivate(cache, i);
                }
            }
        }
        let mut farfield = channel.build_farfield_engine(&positions);
        if let Some(engine) = &mut farfield {
            for (i, &is_active) in active.iter().enumerate() {
                if !is_active {
                    engine.deactivate(i);
                }
            }
        }
        // Engine-tier default: the far-field path picks up exactly where
        // the O(n²) gain cache bows out (n > DEFAULT_MAX_CACHED_NODES).
        let farfield_enabled = gain_cache.is_none();
        // Tier above that: the hierarchical engine takes over once the
        // flat engine's tile tables stop scaling.
        let hierarchical_enabled = n > HIERARCHICAL_AUTO_THRESHOLD;
        let mut hierarchical = if hierarchical_enabled {
            channel.build_hierarchical_engine(&positions)
        } else {
            None
        };
        if let Some(engine) = &mut hierarchical {
            for (i, &is_active) in active.iter().enumerate() {
                if !is_active {
                    engine.deactivate(i);
                }
            }
        }
        Simulation {
            positions,
            channel,
            seed,
            protocols,
            node_rngs,
            chan_rng: channel_rng(seed),
            active,
            num_active,
            round: 0,
            total_transmissions: 0,
            resolved_at: None,
            winner: None,
            trace_level: TraceLevel::None,
            trace: Trace::default(),
            gain_cache,
            cache_enabled: true,
            active_interference,
            farfield,
            farfield_enabled,
            hierarchical,
            hierarchical_enabled,
            resolve_pool: StealPool::new(1),
            transmitters: Vec::new(),
            listeners: Vec::new(),
            fault_plan: None,
            fault_rng: fault_rng(seed),
            wake_round: Vec::new(),
            churn_events: Vec::new(),
            churn_cursor: 0,
            jam_gains: Vec::new(),
            jam_scratch: Vec::new(),
            loss_in_burst: false,
            telemetry: None,
            telemetry_detail: TelemetryDetail::counts(),
            metrics: None,
            tracer: None,
            counters: EngineCounters::default(),
            sinr_scratch: Vec::new(),
            knocked_scratch: Vec::new(),
            crashed_scratch: Vec::new(),
            revived_scratch: Vec::new(),
            trace_cap: Trace::DEFAULT_RECORD_CAP,
            self_check: None,
            self_check_scratch: Vec::new(),
        }
    }

    /// Like [`Simulation::new`], but rejects degenerate setups instead of
    /// constructing a simulation that can never make progress.
    ///
    /// # Errors
    ///
    /// [`SimError::EmptyDeployment`] if `deployment` has no nodes;
    /// [`SimError::NoActiveNodes`] if every protocol instance reports
    /// inactive at construction (such a run has no possible transmitter and
    /// would only ever burn its round budget).
    pub fn try_new<F>(
        deployment: Deployment,
        channel: Box<dyn Channel>,
        seed: u64,
        make_protocol: F,
    ) -> Result<Self, SimError>
    where
        F: FnMut(NodeId) -> Box<dyn Protocol>,
    {
        if deployment.is_empty() {
            return Err(SimError::EmptyDeployment);
        }
        let sim = Simulation::new(deployment, channel, seed, make_protocol);
        if sim.num_active == 0 {
            return Err(SimError::NoActiveNodes);
        }
        Ok(sim)
    }

    /// Attaches a fault plan. Must be called **before the first step**, so
    /// that jammer schedules and churn events line up with round numbers
    /// and the run stays reproducible from its seed alone.
    ///
    /// Attaching an *empty* plan leaves the run byte-identical to one with
    /// no plan at all.
    ///
    /// # Errors
    ///
    /// [`FaultError::PlanAttachedMidRun`] if any round has already
    /// executed; [`FaultError::NodeOutOfRange`] if a churn event names a
    /// node outside the deployment.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) -> Result<(), FaultError> {
        if self.round > 0 {
            return Err(FaultError::PlanAttachedMidRun { round: self.round });
        }
        let n = self.positions.len();
        plan.validate_for(n)?;

        // Late wake-ups become a per-node first-participation round (the
        // latest wins if several target the same node); crashes and
        // revivals become a round-sorted event queue.
        self.wake_round = vec![0; n];
        self.churn_events.clear();
        self.churn_cursor = 0;
        for ev in plan.churn() {
            match ev.kind {
                ChurnKind::LateWake => {
                    self.wake_round[ev.node] = self.wake_round[ev.node].max(ev.round);
                }
                ChurnKind::Crash | ChurnKind::Revive => self.churn_events.push(*ev),
            }
        }
        self.churn_events.sort_by_key(|ev| ev.round);

        // Precompute each jammer's interference power at every node; the
        // per-round perturbation is then a sum over active jammers.
        self.jam_gains.clear();
        for jammer in plan.jammers() {
            for &pos in &self.positions {
                self.jam_gains
                    .push(self.channel.interferer_gain(jammer.position(), pos, jammer.power()));
            }
        }
        self.jam_scratch = vec![0.0; n];
        self.loss_in_burst = false;
        self.fault_plan = Some(plan);
        Ok(())
    }

    /// The attached fault plan, if any.
    #[must_use]
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault_plan.as_ref()
    }

    /// Whether node `i` is awake (has passed any scheduled late wake-up).
    /// Nodes are awake from round 1 unless a [`ChurnKind::LateWake`] event
    /// delays them.
    ///
    /// [`ChurnKind::LateWake`]: crate::faults::ChurnKind::LateWake
    #[must_use]
    pub fn is_awake(&self, i: NodeId) -> bool {
        match self.wake_round.get(i) {
            // `wake_round[i] = r` means "participates from round r"; during
            // Phase 1 of round r the comparison uses the incremented round.
            Some(&r) => self.round + 1 >= r,
            None => i < self.positions.len(),
        }
    }

    /// Forces node `v` inactive (crash-stop), regardless of protocol state.
    /// Returns whether the node's state actually changed.
    fn force_deactivate(&mut self, v: NodeId) -> bool {
        if self.active[v] {
            self.active[v] = false;
            self.num_active -= 1;
            if let (Some(engine), Some(cache)) = (&mut self.active_interference, &self.gain_cache) {
                engine.deactivate(cache, v);
            }
            if let Some(engine) = &mut self.farfield {
                engine.deactivate(v);
            }
            if let Some(engine) = &mut self.hierarchical {
                engine.deactivate(v);
            }
            true
        } else {
            false
        }
    }

    /// Re-activates a crashed node. A node whose own protocol has
    /// deactivated (knocked out) stays inactive: revival only undoes a
    /// crash, it never overrides the protocol contract that inactive
    /// protocols are never scheduled. Returns whether the node's state
    /// actually changed.
    fn force_activate(&mut self, v: NodeId) -> bool {
        if !self.active[v] && self.protocols[v].is_active() {
            self.active[v] = true;
            self.num_active += 1;
            if let (Some(engine), Some(cache)) = (&mut self.active_interference, &self.gain_cache) {
                engine.activate(cache, v);
            }
            if let Some(engine) = &mut self.farfield {
                engine.activate(v);
            }
            if let Some(engine) = &mut self.hierarchical {
                engine.activate(v);
            }
            true
        } else {
            false
        }
    }

    /// Applies the churn events scheduled for the current round (called at
    /// the start of [`Simulation::step`], before actions are collected).
    /// Returns the number of events that actually took effect; when
    /// `record_ids` is set, effective crashes/revivals are also appended to
    /// the telemetry scratch vectors.
    fn apply_churn(&mut self, record_ids: bool) -> usize {
        let mut applied = 0;
        while self.churn_cursor < self.churn_events.len()
            && self.churn_events[self.churn_cursor].round <= self.round
        {
            let ev = self.churn_events[self.churn_cursor];
            self.churn_cursor += 1;
            match ev.kind {
                ChurnKind::Crash => {
                    if self.force_deactivate(ev.node) {
                        applied += 1;
                        if record_ids {
                            self.crashed_scratch.push(ev.node);
                        }
                    }
                }
                ChurnKind::Revive => {
                    if self.force_activate(ev.node) {
                        applied += 1;
                        if record_ids {
                            self.revived_scratch.push(ev.node);
                        }
                    }
                }
                ChurnKind::LateWake => unreachable!("late wakes are precomputed"),
            }
        }
        applied
    }

    /// Enables or disables the gain cache for subsequent rounds.
    ///
    /// The cache is on by default whenever the channel built one. Because
    /// cached resolution is bit-identical to uncached, toggling this never
    /// changes a run's outcome — only its speed. Exposed so equivalence
    /// and determinism tests can compare both paths.
    pub fn set_gain_cache_enabled(&mut self, enabled: bool) {
        self.cache_enabled = enabled;
    }

    /// Whether rounds currently resolve through a gain cache (a cache
    /// exists **and** caching is enabled).
    #[must_use]
    pub fn gain_cache_active(&self) -> bool {
        self.cache_enabled && self.gain_cache.is_some()
    }

    /// The precomputed gain cache, when the channel built one.
    #[must_use]
    pub fn gain_cache(&self) -> Option<&GainCache> {
        self.gain_cache.as_ref()
    }

    /// Enables or disables the far-field engine for subsequent rounds.
    ///
    /// The engine is on by default exactly when no gain cache exists (the
    /// deployment exceeded the cache's `O(n²)` size guard), making it the
    /// third engine tier: exact → gain-cache → far-field as `n` grows.
    /// Because the far-field resolve is decision-exact (bit-identical
    /// receptions; see
    /// [`Channel::resolve_farfield`](fading_channel::Channel::resolve_farfield)),
    /// toggling this never changes a run's outcome — only its speed.
    /// Exposed, like [`Simulation::set_gain_cache_enabled`], so equivalence
    /// and determinism tests can cross all engine tiers.
    pub fn set_farfield_enabled(&mut self, enabled: bool) {
        self.farfield_enabled = enabled;
    }

    /// Whether rounds currently resolve through the far-field engine (an
    /// engine exists **and** it is enabled). Rounds that need SINR
    /// breakdowns for telemetry still route through the instrumented exact
    /// path regardless.
    #[must_use]
    pub fn farfield_active(&self) -> bool {
        self.farfield_enabled && self.farfield.is_some()
    }

    /// The far-field engine, when the channel built one.
    #[must_use]
    pub fn farfield_engine(&self) -> Option<&FarFieldEngine> {
        self.farfield.as_ref()
    }

    /// Decision counters of the far-field engine, when one exists:
    /// how many listener decisions the pruned path settled versus how many
    /// fell back to the exact scan.
    #[must_use]
    pub fn farfield_stats(&self) -> Option<FarFieldStats> {
        self.farfield.as_ref().map(FarFieldEngine::stats)
    }

    /// Enables or disables the hierarchical far-field engine for
    /// subsequent rounds, building it on demand (occupancy synced to the
    /// current active set) if the channel supports one.
    ///
    /// The engine is on by default exactly when the deployment exceeds
    /// [`HIERARCHICAL_AUTO_THRESHOLD`], making it the fourth engine tier:
    /// exact → gain-cache → far-field → hierarchical as `n` grows. The
    /// hierarchical resolve is decision-exact (bit-identical receptions;
    /// see [`Channel::resolve_hierarchical`]), so toggling this never
    /// changes a run's outcome — only its speed. Exposed, like the other
    /// tier toggles, so equivalence and determinism tests can cross every
    /// tier at any size.
    ///
    /// [`Channel::resolve_hierarchical`]: fading_channel::Channel::resolve_hierarchical
    pub fn set_hierarchical_enabled(&mut self, enabled: bool) {
        self.hierarchical_enabled = enabled;
        if enabled && self.hierarchical.is_none() {
            let mut engine = self.channel.build_hierarchical_engine(&self.positions);
            if let Some(e) = &mut engine {
                for (i, &is_active) in self.active.iter().enumerate() {
                    if !is_active {
                        e.deactivate(i);
                    }
                }
            }
            self.hierarchical = engine;
        }
    }

    /// Whether rounds currently resolve through the hierarchical engine
    /// (an engine exists **and** it is enabled). Rounds that need SINR
    /// breakdowns for telemetry still route through the instrumented exact
    /// path regardless.
    #[must_use]
    pub fn hierarchical_active(&self) -> bool {
        self.hierarchical_enabled && self.hierarchical.is_some()
    }

    /// The hierarchical far-field engine, when one has been built.
    #[must_use]
    pub fn hierarchical_engine(&self) -> Option<&HierarchicalFarFieldEngine> {
        self.hierarchical.as_ref()
    }

    /// Decision counters of the hierarchical engine, when one exists.
    #[must_use]
    pub fn hierarchical_stats(&self) -> Option<FarFieldStats> {
        self.hierarchical.as_ref().map(HierarchicalFarFieldEngine::stats)
    }

    /// Sets how many worker threads the hierarchical engine's parallel
    /// per-listener resolve may use (clamped to at least 1; default 1).
    ///
    /// The thread count never changes results: listener chunking is fixed
    /// (independent of `threads`), chunk outputs are merged in chunk
    /// order, and the per-chunk ladder counters are commutative sums — so
    /// `threads ∈ {1, 8}` produce byte-identical [`RunResult`]s (proven
    /// by `tests/parallel_determinism.rs`).
    pub fn set_resolve_threads(&mut self, threads: usize) {
        self.resolve_pool = StealPool::new(threads);
    }

    /// Worker threads available to the hierarchical resolve.
    #[must_use]
    pub fn resolve_threads(&self) -> usize {
        self.resolve_pool.threads()
    }

    /// The running total interference at node `v` from all still-active
    /// nodes (`Σ_{w active, w ≠ v} P / d(w,v)^α`), maintained
    /// incrementally as nodes knock out. `None` when no gain cache exists
    /// or `v` is out of range.
    #[must_use]
    pub fn active_interference_at(&self, v: NodeId) -> Option<f64> {
        if v >= self.positions.len() {
            return None;
        }
        self.active_interference.as_ref().map(|ai| ai.total_at(v))
    }

    /// Selects how much per-round detail to record. Call before stepping.
    pub fn set_trace_level(&mut self, level: TraceLevel) {
        self.trace_level = level;
    }

    /// Caps how many [`RoundRecord`]s the trace retains (keep-first; see
    /// [`Trace::truncated`]). Defaults to [`Trace::DEFAULT_RECORD_CAP`].
    pub fn set_trace_capacity(&mut self, cap: usize) {
        self.trace_cap = cap;
    }

    /// The current trace record cap.
    #[must_use]
    pub fn trace_capacity(&self) -> usize {
        self.trace_cap
    }

    /// Attaches a telemetry sink; each subsequent round delivers one
    /// [`RoundEvent`] to it. The sink's [`TelemetrySink::detail`] level is
    /// read **once, here**. Replaces any previously attached sink.
    ///
    /// Attaching a sink never changes a run's outcome: events are pure
    /// observations, and when SINR detail routes resolution through
    /// [`Channel::resolve_instrumented`] that path is contractually
    /// bit-identical to the uninstrumented one.
    pub fn set_telemetry_sink(&mut self, sink: Box<dyn TelemetrySink>) {
        self.telemetry_detail = sink.detail();
        self.telemetry = Some(sink);
    }

    /// Detaches and returns the telemetry sink, if one is attached (use
    /// [`crate::telemetry::MemorySink::recover`] to downcast it back to a
    /// concrete type).
    pub fn take_telemetry_sink(&mut self) -> Option<Box<dyn TelemetrySink>> {
        self.telemetry_detail = TelemetryDetail::counts();
        self.telemetry.take()
    }

    /// Whether a telemetry sink is currently attached.
    #[must_use]
    pub fn telemetry_attached(&self) -> bool {
        self.telemetry.is_some()
    }

    /// Enables (or disables) the [`MetricsRegistry`] collecting round
    /// latency, phase timers, and per-round distributions. Enabling when
    /// already enabled keeps the existing registry. Metrics include
    /// wall-clock times and are excluded from the determinism contract.
    pub fn set_metrics_enabled(&mut self, enabled: bool) {
        if enabled {
            if self.metrics.is_none() {
                self.metrics = Some(Box::new(MetricsRegistry::new()));
            }
        } else {
            self.metrics = None;
        }
    }

    /// The metrics collected so far, when enabled.
    #[must_use]
    pub fn metrics(&self) -> Option<&MetricsRegistry> {
        self.metrics.as_deref()
    }

    /// Detaches and returns the metrics registry, if metrics were enabled.
    pub fn take_metrics(&mut self) -> Option<MetricsRegistry> {
        self.metrics.take().map(|b| *b)
    }

    /// Attaches a span tracer: every subsequent [`Simulation::step`]
    /// records a `step` span with one child per phase (`churn`, `act`,
    /// `resolve` + its tier, `ge_drop`, `feedback`, `telemetry`).
    ///
    /// Tracing never changes a run's outcome — spans only observe. A
    /// *disabled* tracer ([`Tracer::set_enabled`]) costs one branch per
    /// span site; detach entirely with [`Simulation::clear_tracer`] to
    /// drop even that.
    pub fn set_tracer(&mut self, tracer: Arc<Tracer>) {
        self.tracer = Some(tracer);
    }

    /// Detaches and returns the tracer, if one is attached.
    pub fn clear_tracer(&mut self) -> Option<Arc<Tracer>> {
        self.tracer.take()
    }

    /// The attached tracer, if any.
    #[must_use]
    pub fn tracer(&self) -> Option<&Arc<Tracer>> {
        self.tracer.as_ref()
    }

    /// Opens a span on the attached tracer, or returns an inert guard.
    fn span(&self, name: &'static str) -> Option<SpanGuard> {
        self.tracer.as_ref().map(|t| t.span(name))
    }

    /// One unified snapshot of every engine-decision counter: per-tier
    /// round routing, gain-cache and perturbation activity, and the
    /// far-field decision ladder's per-rung counters (merged in from the
    /// live engine). See [`EngineCounters`] for the reconciliation
    /// invariants.
    #[must_use]
    pub fn engine_counters(&self) -> EngineCounters {
        let mut c = self.counters;
        c.gain_cache_built = self.gain_cache.is_some();
        // Both engines share the same decision ladder; the counters view
        // aggregates their per-rung stats into one block.
        let mut ff = self.farfield.as_ref().map(FarFieldEngine::stats).unwrap_or_default();
        if let Some(h) = self.hierarchical.as_ref().map(HierarchicalFarFieldEngine::stats) {
            ff.rounds += h.rounds;
            ff.empty_round_silences += h.empty_round_silences;
            ff.nonfinite_fallbacks += h.nonfinite_fallbacks;
            ff.noise_floor_silences += h.noise_floor_silences;
            ff.no_near_winner_fallbacks += h.no_near_winner_fallbacks;
            ff.far_rival_fallbacks += h.far_rival_fallbacks;
            ff.bracket_decisions += h.bracket_decisions;
            ff.bracket_straddle_fallbacks += h.bracket_straddle_fallbacks;
        }
        c.farfield = ff;
        c
    }

    /// Enables self-checking engines: on every eligible round, `samples`
    /// randomly chosen listeners are re-resolved through the **exact**
    /// instrumented path and compared against the fast tier's receptions.
    /// `samples == 0` disables the check. Call before stepping.
    ///
    /// A round is eligible when it was served by a fast tier (gain cache,
    /// far-field, or hierarchical) on a channel whose resolve draws no
    /// randomness — a partial re-resolve on an RNG-drawing channel would
    /// desynchronize the stream. On any mismatch, or a non-finite signal /
    /// interference / noise intermediate, the serving tier is **demoted**
    /// for the rest of the run (hierarchical → far-field → gain-cache →
    /// exact), recorded in [`EngineCounters::tier_demotions`] and the span
    /// stream. The check never panics, and because the tiers are
    /// bit-identical, demotion never changes a healthy run's outcome.
    ///
    /// Sample selection draws from a dedicated RNG lane derived from the
    /// master seed, so enabling the check does not perturb the run.
    pub fn set_self_check(&mut self, samples: usize) {
        self.self_check = if samples == 0 {
            None
        } else {
            Some(SelfCheck {
                samples,
                rng: self_check_rng(self.seed),
                inject_violation: false,
            })
        };
    }

    /// Whether self-checking is currently enabled.
    #[must_use]
    pub fn self_check_enabled(&self) -> bool {
        self.self_check.is_some()
    }

    /// Test hook: forces the next audited self-check sample to report a
    /// violation, driving the demotion path without a real engine defect.
    /// No-op when self-checking is disabled.
    pub fn inject_self_check_violation(&mut self) {
        if let Some(sc) = &mut self.self_check {
            sc.inject_violation = true;
        }
    }

    /// Fingerprint over the construction inputs (node count, seed, channel,
    /// positions, fault-plan shape). A snapshot only restores into a
    /// simulation with the same fingerprint.
    fn fingerprint(&self) -> u64 {
        let mut bytes = Vec::with_capacity(40 + self.positions.len() * 16);
        bytes.extend_from_slice(&(self.positions.len() as u64).to_le_bytes());
        bytes.extend_from_slice(&self.seed.to_le_bytes());
        bytes.extend_from_slice(self.channel.name().as_bytes());
        for p in &self.positions {
            bytes.extend_from_slice(&p.x.to_le_bytes());
            bytes.extend_from_slice(&p.y.to_le_bytes());
        }
        match &self.fault_plan {
            None => bytes.push(0xFF),
            Some(plan) => {
                bytes.push(1);
                bytes.extend_from_slice(&(plan.jammers().len() as u64).to_le_bytes());
                bytes.extend_from_slice(&(plan.noise_bursts().len() as u64).to_le_bytes());
                bytes.extend_from_slice(&(plan.churn().len() as u64).to_le_bytes());
                bytes.push(u8::from(plan.loss().is_some()));
            }
        }
        fnv1a64(&bytes)
    }

    /// Captures a checksummed [`SimSnapshot`] of every piece of mutable run
    /// state: round counter, all RNG lanes (including the fault lane), the
    /// active mask, per-node protocol states, fault-plan progress
    /// (churn cursor, Gilbert–Elliott burst state), engine-tier toggles
    /// with occupancy-bearing stats, counters, and the trace.
    ///
    /// Restoring into an identically constructed simulation (same
    /// deployment, channel, seed, protocol factory, and fault plan) via
    /// [`Simulation::restore`] resumes the run **byte-identically**: the
    /// resumed [`RunResult`] equals the uninterrupted one across every
    /// engine tier.
    #[must_use]
    pub fn snapshot(&self) -> SimSnapshot {
        SimSnapshot {
            n: self.positions.len() as u64,
            seed: self.seed,
            fingerprint: self.fingerprint(),
            round: self.round,
            total_transmissions: self.total_transmissions,
            resolved_at: self.resolved_at,
            winner: self.winner.map(|w| w as u64),
            active: self.active.clone(),
            node_rngs: self.node_rngs.iter().map(SmallRng::state).collect(),
            chan_rng: self.chan_rng.state(),
            fault_rng: self.fault_rng.state(),
            self_check_samples: self
                .self_check
                .as_ref()
                .map_or(0, |sc| sc.samples as u64),
            self_check_rng: self
                .self_check
                .as_ref()
                .map_or([0; 4], |sc| sc.rng.state()),
            protocol_states: self.protocols.iter().map(|p| p.save_state()).collect(),
            churn_cursor: self.churn_cursor as u64,
            loss_in_burst: self.loss_in_burst,
            trace_level: match self.trace_level {
                TraceLevel::None => 0,
                TraceLevel::Counts => 1,
                TraceLevel::Full => 2,
            },
            trace_cap: self.trace_cap as u64,
            trace_truncated: self.trace.truncated(),
            trace_rounds: self.trace.rounds().to_vec(),
            cache_enabled: self.cache_enabled,
            farfield_enabled: self.farfield_enabled,
            hierarchical_enabled: self.hierarchical_enabled,
            resolve_threads: self.resolve_pool.threads() as u64,
            counters: self.counters,
            farfield_stats: self.farfield.as_ref().map(FarFieldEngine::stats),
            hierarchical_stats: self
                .hierarchical
                .as_ref()
                .map(HierarchicalFarFieldEngine::stats),
        }
    }

    /// Restores a [`SimSnapshot`] into this simulation, which must be
    /// **freshly constructed** with the same inputs as the snapshot's
    /// source (deployment, channel, seed, protocol factory) and have the
    /// same fault plan already attached. After a successful restore the
    /// simulation continues exactly where the snapshot was taken.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Incompatible`] when this simulation has already
    /// stepped, the node counts differ, the construction fingerprint does
    /// not match, or an engine the snapshot recorded cannot be built here;
    /// [`SnapshotError::ProtocolState`] when a protocol rejects its
    /// checkpointed state words.
    pub fn restore(&mut self, snap: &SimSnapshot) -> Result<(), SnapshotError> {
        if self.round != 0 {
            return Err(SnapshotError::Incompatible {
                detail: format!(
                    "restore target must be freshly constructed, but {} round(s) already ran",
                    self.round
                ),
            });
        }
        if snap.n as usize != self.positions.len() {
            return Err(SnapshotError::Incompatible {
                detail: format!(
                    "snapshot holds {} nodes, this simulation has {}",
                    snap.n,
                    self.positions.len()
                ),
            });
        }
        if snap.fingerprint != self.fingerprint() {
            return Err(SnapshotError::Incompatible {
                detail: "construction fingerprint mismatch (different deployment, seed, \
                         channel, or fault plan)"
                    .to_string(),
            });
        }

        // 1. Protocol states first: the active-mask reconciliation below
        // consults `Protocol::is_active` (revive semantics).
        for (p, state) in self.protocols.iter_mut().zip(&snap.protocol_states) {
            p.load_state(state)?;
        }
        // 2. Reconcile the active mask in both directions; the forced
        // transitions keep every engine's occupancy in sync.
        for i in 0..self.positions.len() {
            if self.active[i] && !snap.active[i] {
                self.force_deactivate(i);
            } else if !self.active[i] && snap.active[i] {
                self.force_activate(i);
            }
        }
        // A knocked-out protocol must never be counted active again; if
        // the mask still disagrees, the snapshot belongs to a different
        // protocol configuration.
        if self.active != snap.active {
            return Err(SnapshotError::Incompatible {
                detail: "active mask could not be reconciled (protocol states disagree \
                         with the snapshot's activity)"
                    .to_string(),
            });
        }
        // 3. RNG lanes.
        for (rng, state) in self.node_rngs.iter_mut().zip(&snap.node_rngs) {
            *rng = SmallRng::from_state(*state);
        }
        self.chan_rng = SmallRng::from_state(snap.chan_rng);
        self.fault_rng = SmallRng::from_state(snap.fault_rng);
        // 4. Engine tiers. The hierarchical engine is built on demand when
        // the snapshot recorded one (its occupancy syncs to the active
        // mask reconciled above); a channel that cannot build it is
        // incompatible with the snapshot.
        self.cache_enabled = snap.cache_enabled;
        self.farfield_enabled = snap.farfield_enabled;
        self.hierarchical_enabled = snap.hierarchical_enabled;
        if snap.hierarchical_stats.is_some() && self.hierarchical.is_none() {
            let mut engine = self.channel.build_hierarchical_engine(&self.positions);
            if let Some(e) = &mut engine {
                for (i, &is_active) in self.active.iter().enumerate() {
                    if !is_active {
                        e.deactivate(i);
                    }
                }
            }
            self.hierarchical = engine;
        }
        if snap.farfield_stats.is_some() != self.farfield.is_some()
            || snap.hierarchical_stats.is_some() != self.hierarchical.is_some()
        {
            return Err(SnapshotError::Incompatible {
                detail: "engine availability differs from the snapshot's \
                         (different channel capabilities)"
                    .to_string(),
            });
        }
        if let (Some(engine), Some(stats)) = (&mut self.farfield, snap.farfield_stats) {
            engine.set_stats(stats);
        }
        if let (Some(engine), Some(stats)) = (&mut self.hierarchical, snap.hierarchical_stats) {
            engine.set_stats(stats);
        }
        // 5. Scalars, fault progress, counters, trace.
        self.round = snap.round;
        self.total_transmissions = snap.total_transmissions;
        self.resolved_at = snap.resolved_at;
        self.winner = snap.winner.map(|w| w as NodeId);
        self.churn_cursor = snap.churn_cursor as usize;
        self.loss_in_burst = snap.loss_in_burst;
        self.counters = snap.counters;
        self.trace_level = match snap.trace_level {
            0 => TraceLevel::None,
            1 => TraceLevel::Counts,
            _ => TraceLevel::Full,
        };
        self.trace_cap = snap.trace_cap as usize;
        self.trace = Trace::from_parts(snap.trace_rounds.clone(), snap.trace_truncated);
        self.set_resolve_threads(snap.resolve_threads as usize);
        // 6. Self-check lane.
        self.self_check = if snap.self_check_samples == 0 {
            None
        } else {
            Some(SelfCheck {
                samples: snap.self_check_samples as usize,
                rng: SmallRng::from_state(snap.self_check_rng),
                inject_violation: false,
            })
        };
        Ok(())
    }

    /// Number of nodes in the deployment.
    #[must_use]
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// `true` if the deployment is empty (never the case for deployments
    /// built through `fading-geom`, which require at least two nodes).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// The current (1-based) count of completed rounds.
    #[must_use]
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Number of currently active nodes.
    #[must_use]
    pub fn num_active(&self) -> usize {
        self.num_active
    }

    /// Whether node `i` is still active.
    #[must_use]
    pub fn is_active(&self, i: NodeId) -> bool {
        self.active.get(i).copied().unwrap_or(false)
    }

    /// Ids of currently active nodes, in increasing order.
    #[must_use]
    pub fn active_ids(&self) -> Vec<NodeId> {
        (0..self.len()).filter(|&i| self.active[i]).collect()
    }

    /// Node positions (index = node id).
    #[must_use]
    pub fn positions(&self) -> &[Point] {
        &self.positions
    }

    /// The round in which contention was resolved, if it has been.
    #[must_use]
    pub fn resolved_at(&self) -> Option<u64> {
        self.resolved_at
    }

    /// Total transmissions so far, across all nodes and rounds (the energy
    /// cost in the unit-per-broadcast model).
    #[must_use]
    pub fn total_transmissions(&self) -> u64 {
        self.total_transmissions
    }

    /// Advances the phase timer: charges the time since `mark` to `phase`
    /// and resets the mark. No-op when metrics are disabled.
    fn mark_phase(&mut self, phase: Phase, mark: &mut Option<Instant>) {
        if let (Some(metrics), Some(m)) = (self.metrics.as_deref_mut(), mark.as_mut()) {
            let now = Instant::now();
            metrics.add_phase(phase, now.duration_since(*m));
            *m = now;
        }
    }

    /// Executes one synchronous round and reports the outcome.
    ///
    /// Stepping past resolution is allowed (the remaining active nodes keep
    /// running their protocols); `resolved_at` keeps the *first* resolving
    /// round.
    pub fn step(&mut self) -> StepOutcome {
        let _step_span = self.span("step");
        let round_start = self.metrics.as_ref().map(|_| Instant::now());
        let mut phase_mark = round_start;
        self.round += 1;

        let telemetry_on = self.telemetry.is_some();
        let want_ids = telemetry_on && self.telemetry_detail.ids;
        let want_sinr = telemetry_on && self.telemetry_detail.sinr;

        let active_pre_churn = self.num_active;
        if want_ids {
            self.crashed_scratch.clear();
            self.revived_scratch.clear();
            self.knocked_scratch.clear();
        }
        let span_churn = self.span("churn");
        let churn_applied = self.apply_churn(want_ids);
        drop(span_churn);
        self.mark_phase(Phase::Churn, &mut phase_mark);

        // Phase 1: collect actions from active, awake nodes. (A node
        // scheduled for a late wake-up sleeps — neither transmits nor
        // listens — until its wake round.)
        let span_act = self.span("act");
        self.transmitters.clear();
        self.listeners.clear();
        for i in 0..self.positions.len() {
            if !self.active[i] {
                continue;
            }
            if let Some(&wake) = self.wake_round.get(i) {
                if self.round < wake {
                    continue;
                }
            }
            match self.protocols[i].act(self.round, &mut self.node_rngs[i]) {
                Action::Transmit => self.transmitters.push(i),
                Action::Listen => self.listeners.push(i),
            }
        }
        drop(span_act);

        self.total_transmissions += self.transmitters.len() as u64;
        // The nodes that actually took part this round: active ∧ awake,
        // post-churn. This — not `num_active`, which at this point still
        // counts sleeping late-wakers — is what `RoundRecord::active_before`
        // and `RoundEvent::participants` report.
        let participants = self.transmitters.len() + self.listeners.len();
        self.mark_phase(Phase::Act, &mut phase_mark);

        // Phase 2: the channel decides what listeners observe. The cached
        // path is bit-identical to the uncached one, so which branch runs
        // never affects the outcome; likewise a neutral (or absent)
        // perturbation resolves through the exact same code path, and the
        // instrumented path (taken when the sink wants SINR breakdowns) is
        // contractually bit-identical to the uninstrumented one.
        let cache = if self.cache_enabled {
            self.gain_cache.as_ref()
        } else {
            None
        };
        // The far-field tiers only serve uninstrumented rounds: SINR
        // breakdowns require the full per-pair decomposition the pruned
        // paths exist to skip. The hierarchical engine outranks the flat
        // one when both exist and are enabled.
        let use_hierarchical =
            self.hierarchical_enabled && !want_sinr && self.hierarchical.is_some();
        let use_farfield =
            !use_hierarchical && self.farfield_enabled && !want_sinr && self.farfield.is_some();
        // Which tier serves this round. The classification is the same for
        // perturbed and unperturbed rounds: the fault plan changes what is
        // resolved, not which engine resolves it.
        let resolve_path = if use_hierarchical {
            ResolvePath::Hierarchical
        } else if use_farfield {
            ResolvePath::FarField
        } else if want_sinr {
            ResolvePath::Instrumented
        } else if cache.is_some() {
            ResolvePath::Cached
        } else {
            ResolvePath::Exact
        };
        // Snapshot the far-field fallback tally so telemetry can report the
        // per-round delta (plain field reads; negligible next to resolve).
        let ff_fallbacks_before = if use_hierarchical {
            self.hierarchical
                .as_ref()
                .map_or(0, |e| e.stats().exact_fallbacks())
        } else if use_farfield {
            self.farfield
                .as_ref()
                .map_or(0, |e| e.stats().exact_fallbacks())
        } else {
            0
        };
        let span_resolve = self.span("resolve");
        let span_tier = self.span(match resolve_path {
            ResolvePath::Exact => "resolve.exact",
            ResolvePath::Cached => "resolve.gain_cache",
            ResolvePath::FarField => "resolve.farfield",
            ResolvePath::Hierarchical => "resolve.hierarchical",
            ResolvePath::Instrumented => "resolve.instrumented",
        });
        let mut event_noise_scale = 1.0;
        let mut event_jam_power = 0.0;
        let mut receptions = match &self.fault_plan {
            None if use_hierarchical => self.channel.resolve_hierarchical(
                &self.positions,
                &self.transmitters,
                &self.listeners,
                self.hierarchical.as_mut(),
                &self.resolve_pool,
                &ChannelPerturbation::neutral(),
                &mut self.chan_rng,
            ),
            None if use_farfield => self.channel.resolve_farfield(
                &self.positions,
                &self.transmitters,
                &self.listeners,
                self.farfield.as_mut(),
                &ChannelPerturbation::neutral(),
                &mut self.chan_rng,
            ),
            None if !want_sinr => self.channel.resolve_cached(
                &self.positions,
                &self.transmitters,
                &self.listeners,
                cache,
                &mut self.chan_rng,
            ),
            None => self.channel.resolve_instrumented(
                &self.positions,
                &self.transmitters,
                &self.listeners,
                cache,
                &ChannelPerturbation::neutral(),
                &mut self.chan_rng,
                &mut self.sinr_scratch,
            ),
            Some(plan) => {
                let noise_scale = plan.noise_scale(self.round);
                let jamming = plan.any_jammer_active(self.round);
                if noise_scale != 1.0 {
                    self.counters.noise_scaled_rounds += 1;
                }
                if jamming {
                    self.counters.jammed_rounds += 1;
                }
                if noise_scale != 1.0 || jamming {
                    self.counters.perturbed_rounds += 1;
                }
                let extra: &[f64] = if jamming {
                    let n = self.positions.len();
                    self.jam_scratch.iter_mut().for_each(|g| *g = 0.0);
                    for (j, jammer) in plan.jammers().iter().enumerate() {
                        if jammer.is_active(self.round) {
                            let row = &self.jam_gains[j * n..(j + 1) * n];
                            for (g, &add) in self.jam_scratch.iter_mut().zip(row) {
                                *g += add;
                            }
                        }
                    }
                    &self.jam_scratch
                } else {
                    &[]
                };
                if telemetry_on {
                    event_noise_scale = noise_scale;
                    event_jam_power = extra.iter().sum();
                }
                let perturbation = ChannelPerturbation::new(noise_scale, extra);
                if want_sinr {
                    self.channel.resolve_instrumented(
                        &self.positions,
                        &self.transmitters,
                        &self.listeners,
                        cache,
                        &perturbation,
                        &mut self.chan_rng,
                        &mut self.sinr_scratch,
                    )
                } else if use_hierarchical {
                    self.channel.resolve_hierarchical(
                        &self.positions,
                        &self.transmitters,
                        &self.listeners,
                        self.hierarchical.as_mut(),
                        &self.resolve_pool,
                        &perturbation,
                        &mut self.chan_rng,
                    )
                } else if use_farfield {
                    self.channel.resolve_farfield(
                        &self.positions,
                        &self.transmitters,
                        &self.listeners,
                        self.farfield.as_mut(),
                        &perturbation,
                        &mut self.chan_rng,
                    )
                } else {
                    self.channel.resolve_perturbed(
                        &self.positions,
                        &self.transmitters,
                        &self.listeners,
                        cache,
                        &perturbation,
                        &mut self.chan_rng,
                    )
                }
            }
        };
        drop(span_tier);
        drop(span_resolve);
        debug_assert_eq!(receptions.len(), self.listeners.len());

        self.counters.rounds += 1;
        match resolve_path {
            ResolvePath::Exact => self.counters.exact_rounds += 1,
            ResolvePath::Cached => self.counters.gain_cache_rounds += 1,
            ResolvePath::FarField => self.counters.farfield_rounds += 1,
            ResolvePath::Hierarchical => self.counters.hierarchical_rounds += 1,
            ResolvePath::Instrumented => self.counters.instrumented_rounds += 1,
        }
        // A built cache counts as bypassed when this round was not served
        // through it: either disabled via `set_gain_cache_enabled(false)`,
        // or superseded by the far-field tier. (The instrumented path still
        // carries the cache when enabled, so it does not count.)
        if self.gain_cache.is_some()
            && resolve_path != ResolvePath::Cached
            && !(resolve_path == ResolvePath::Instrumented && self.cache_enabled)
        {
            self.counters.gain_cache_bypassed_rounds += 1;
        }
        self.counters.churn_applied += churn_applied as u64;

        // Self-checking engines (opt-in): re-resolve a few sampled
        // listeners through the exact instrumented path and compare with
        // the fast tier's receptions. Only tier-served rounds on channels
        // whose resolve draws no RNG are auditable — a partial re-resolve
        // on an RNG-drawing channel would desynchronize the stream. On a
        // mismatch or non-finite intermediate the serving tier is demoted
        // for the rest of the run; the check itself never panics.
        if self.self_check.is_some()
            && matches!(
                resolve_path,
                ResolvePath::Cached | ResolvePath::FarField | ResolvePath::Hierarchical
            )
            && !self.listeners.is_empty()
            && !self.channel.resolve_draws_rng()
        {
            if let Some(mut sc) = self.self_check.take() {
                let _span_check = self.span("self_check");
                self.counters.self_check_rounds += 1;
                let m = self.listeners.len();
                let samples = sc.samples.min(m);
                let inject = std::mem::take(&mut sc.inject_violation);
                // Rebuild the round's perturbation exactly as the main
                // resolve saw it (jam_scratch was filled above iff the
                // round is jammed).
                let (noise_scale, jamming) = match &self.fault_plan {
                    Some(plan) => (
                        plan.noise_scale(self.round),
                        plan.any_jammer_active(self.round),
                    ),
                    None => (1.0, false),
                };
                let extra: &[f64] = if jamming { &self.jam_scratch } else { &[] };
                let perturbation = ChannelPerturbation::new(noise_scale, extra);
                let mut violated = false;
                for s in 0..samples {
                    let idx = sc.rng.gen_range(0..m);
                    let audit = [self.listeners[idx]];
                    // The audited channels are deterministic (no RNG
                    // draws); the clone just keeps the signature happy
                    // without touching the real stream.
                    let mut audit_rng = self.chan_rng.clone();
                    let expected = self.channel.resolve_instrumented(
                        &self.positions,
                        &self.transmitters,
                        &audit,
                        None,
                        &perturbation,
                        &mut audit_rng,
                        &mut self.self_check_scratch,
                    );
                    self.counters.self_check_samples += 1;
                    let nonfinite = self.self_check_scratch.first().is_some_and(|b| {
                        !b.signal.is_finite()
                            || !b.interference.is_finite()
                            || !b.noise.is_finite()
                    });
                    if expected.first() != Some(&receptions[idx])
                        || nonfinite
                        || (inject && s == 0)
                    {
                        self.counters.self_check_violations += 1;
                        violated = true;
                    }
                }
                if violated {
                    // Graceful degradation: drop exactly the tier that
                    // served this round; the next round re-selects among
                    // the remaining ones (hierarchical → far-field →
                    // gain-cache → exact).
                    let _span_demote = self.span("self_check.demote");
                    match resolve_path {
                        ResolvePath::Hierarchical => self.hierarchical_enabled = false,
                        ResolvePath::FarField => self.farfield_enabled = false,
                        _ => self.cache_enabled = false,
                    }
                    self.counters.tier_demotions += 1;
                }
                self.self_check = Some(sc);
            }
        }

        // Gilbert–Elliott burst loss: advance the channel state once per
        // round, then drop each decoded message with the state's drop
        // probability. Draws come from the dedicated fault RNG lane, and
        // the reception set is cache-invariant, so this pass preserves
        // byte-determinism across cache and thread settings.
        let mut ge_dropped = 0;
        if let Some(ge) = self.fault_plan.as_ref().and_then(FaultPlan::loss) {
            let span_ge = self.span("ge_drop");
            self.loss_in_burst = ge.advance(self.loss_in_burst, &mut self.fault_rng);
            let drop_prob = ge.drop_prob(self.loss_in_burst);
            if drop_prob > 0.0 {
                for r in &mut receptions {
                    if r.is_message() && self.fault_rng.gen_bool(drop_prob) {
                        *r = fading_channel::Reception::Silence;
                        ge_dropped += 1;
                    }
                }
            }
            drop(span_ge);
        }
        self.counters.ge_dropped += ge_dropped as u64;
        self.mark_phase(Phase::Resolve, &mut phase_mark);

        // Phase 3: feedback and deactivation.
        let span_feedback = self.span("feedback");
        let mut knocked_out = 0;
        for (k, &v) in self.listeners.iter().enumerate() {
            self.protocols[v].feedback(self.round, &receptions[k]);
            if !self.protocols[v].is_active() {
                self.active[v] = false;
                self.num_active -= 1;
                knocked_out += 1;
                if want_ids {
                    self.knocked_scratch.push(v);
                }
                if let (Some(engine), Some(cache)) =
                    (&mut self.active_interference, &self.gain_cache)
                {
                    engine.deactivate(cache, v);
                }
                if let Some(engine) = &mut self.farfield {
                    engine.deactivate(v);
                }
                if let Some(engine) = &mut self.hierarchical {
                    engine.deactivate(v);
                }
            }
        }
        drop(span_feedback);
        self.mark_phase(Phase::Feedback, &mut phase_mark);

        // Resolution check: exactly one *active* node transmitted.
        let outcome = if self.transmitters.len() == 1 {
            let winner = self.transmitters[0];
            if self.resolved_at.is_none() {
                self.resolved_at = Some(self.round);
                self.winner = Some(winner);
            }
            StepOutcome::Resolved { winner }
        } else {
            StepOutcome::Unresolved {
                transmitters: self.transmitters.len(),
                knocked_out,
            }
        };

        match self.trace_level {
            TraceLevel::None => {}
            TraceLevel::Counts => self.trace.push_capped(
                self.trace_cap,
                RoundRecord {
                    round: self.round,
                    active_before: participants,
                    transmitters: self.transmitters.len(),
                    knocked_out,
                    transmitter_ids: None,
                },
            ),
            TraceLevel::Full => self.trace.push_capped(
                self.trace_cap,
                RoundRecord {
                    round: self.round,
                    active_before: participants,
                    transmitters: self.transmitters.len(),
                    knocked_out,
                    transmitter_ids: Some(self.transmitters.clone()),
                },
            ),
        }

        // Metrics read the SINR scratch *before* the event takes it.
        if let Some(metrics) = self.metrics.as_deref_mut() {
            for b in &self.sinr_scratch {
                metrics.record_interference(b.interference);
            }
            if let Some(start) = round_start {
                metrics.record_round(
                    start.elapsed(),
                    self.transmitters.len(),
                    knocked_out,
                    churn_applied,
                    ge_dropped,
                );
            }
        }

        if telemetry_on {
            let _span_telemetry = self.span("telemetry");
            let ff_fallbacks = if use_hierarchical {
                let after = self
                    .hierarchical
                    .as_ref()
                    .map_or(0, |e| e.stats().exact_fallbacks());
                (after - ff_fallbacks_before) as usize
            } else if use_farfield {
                let after = self
                    .farfield
                    .as_ref()
                    .map_or(0, |e| e.stats().exact_fallbacks());
                (after - ff_fallbacks_before) as usize
            } else {
                0
            };
            let event = RoundEvent {
                round: self.round,
                active_pre_churn,
                participants,
                transmitters: self.transmitters.len(),
                listeners: self.listeners.len(),
                knocked_out,
                churn_applied,
                noise_scale: event_noise_scale,
                jam_power: event_jam_power,
                ge_in_burst: self.loss_in_burst,
                ge_dropped,
                resolve_path,
                ff_fallbacks,
                resolved: self.transmitters.len() == 1,
                winner: if self.transmitters.len() == 1 {
                    Some(self.transmitters[0])
                } else {
                    None
                },
                transmitter_ids: if want_ids {
                    self.transmitters.clone()
                } else {
                    Vec::new()
                },
                knocked_out_ids: if want_ids {
                    std::mem::take(&mut self.knocked_scratch)
                } else {
                    Vec::new()
                },
                crashed_ids: if want_ids {
                    std::mem::take(&mut self.crashed_scratch)
                } else {
                    Vec::new()
                },
                revived_ids: if want_ids {
                    std::mem::take(&mut self.revived_scratch)
                } else {
                    Vec::new()
                },
                sinr: if want_sinr {
                    std::mem::take(&mut self.sinr_scratch)
                } else {
                    Vec::new()
                },
            };
            if let Some(sink) = self.telemetry.as_deref_mut() {
                sink.on_round(&event);
            }
        }

        outcome
    }

    /// Runs rounds until contention resolves or `max_rounds` is exhausted,
    /// then returns the result (consuming nothing; the simulation can be
    /// inspected or stepped further).
    pub fn run_until_resolved(&mut self, max_rounds: u64) -> RunResult {
        self.run_until_resolved_with(max_rounds, |_| {})
    }

    /// Like [`Simulation::run_until_resolved`], invoking `observe(&self)`
    /// **before every round** (and once more after the final round), so
    /// callers can snapshot evolving state — e.g. per-round link-class
    /// partitions for the §3.3 schedule-adherence analysis — without
    /// hand-rolling the stepping loop.
    pub fn run_until_resolved_with<F>(&mut self, max_rounds: u64, mut observe: F) -> RunResult
    where
        F: FnMut(&Simulation),
    {
        let initial = self.positions.len();
        while self.resolved_at.is_none() && self.round < max_rounds {
            observe(self);
            self.step();
        }
        observe(self);
        let result = RunResult::new(
            self.resolved_at,
            self.round,
            initial,
            self.num_active,
            self.winner,
            self.total_transmissions,
            std::mem::take(&mut self.trace),
        );
        if let Some(sink) = self.telemetry.as_deref_mut() {
            sink.on_run_end(&result);
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fading_channel::{RadioChannel, Reception, SinrChannel, SinrParams};
    use rand::Rng;

    /// Transmits with a fixed probability forever; knocked out on reception.
    #[derive(Debug)]
    struct Knockout {
        p: f64,
        active: bool,
    }

    impl Protocol for Knockout {
        fn act(&mut self, _round: u64, rng: &mut SmallRng) -> Action {
            if rng.gen_bool(self.p) {
                Action::Transmit
            } else {
                Action::Listen
            }
        }
        fn feedback(&mut self, _round: u64, reception: &Reception) {
            if reception.is_message() {
                self.active = false;
            }
        }
        fn is_active(&self) -> bool {
            self.active
        }
        fn name(&self) -> &'static str {
            "test-knockout"
        }
        fn save_state(&self) -> Vec<u64> {
            vec![u64::from(self.active)]
        }
        fn load_state(&mut self, state: &[u64]) -> Result<(), crate::ProtocolStateError> {
            match state {
                [active] => {
                    self.active = *active != 0;
                    Ok(())
                }
                _ => Err(crate::ProtocolStateError {
                    protocol: self.name(),
                    expected: 1,
                    got: state.len(),
                }),
            }
        }
    }

    /// Always transmits.
    #[derive(Debug)]
    struct AlwaysTx;

    impl Protocol for AlwaysTx {
        fn act(&mut self, _round: u64, _rng: &mut SmallRng) -> Action {
            Action::Transmit
        }
        fn feedback(&mut self, _round: u64, _reception: &Reception) {}
        fn is_active(&self) -> bool {
            true
        }
        fn name(&self) -> &'static str {
            "test-always"
        }
    }

    /// Only node 0 transmits; everyone else listens.
    #[derive(Debug)]
    struct OnlyNodeZero {
        id: NodeId,
    }

    impl Protocol for OnlyNodeZero {
        fn act(&mut self, _round: u64, _rng: &mut SmallRng) -> Action {
            if self.id == 0 {
                Action::Transmit
            } else {
                Action::Listen
            }
        }
        fn feedback(&mut self, _round: u64, _reception: &Reception) {}
        fn is_active(&self) -> bool {
            true
        }
        fn name(&self) -> &'static str {
            "test-node-zero"
        }
    }

    fn line_deployment(n: usize) -> Deployment {
        Deployment::from_points(
            (0..n)
                .map(|i| Point::new(i as f64 * 2.0, 0.0))
                .collect::<Vec<_>>(),
        )
        .unwrap()
    }

    #[test]
    fn solo_transmitter_resolves_in_round_one() {
        let mut sim = Simulation::new(line_deployment(4), Box::new(RadioChannel::new()), 0, |id| {
            Box::new(OnlyNodeZero { id })
        });
        match sim.step() {
            StepOutcome::Resolved { winner } => assert_eq!(winner, 0),
            other => panic!("expected resolution, got {other:?}"),
        }
        assert_eq!(sim.resolved_at(), Some(1));
    }

    #[test]
    fn everyone_transmitting_never_resolves_on_radio() {
        let mut sim = Simulation::new(line_deployment(4), Box::new(RadioChannel::new()), 0, |_| {
            Box::new(AlwaysTx)
        });
        let result = sim.run_until_resolved(50);
        assert!(!result.resolved());
        assert_eq!(result.rounds_executed(), 50);
        assert_eq!(result.final_active(), 4);
    }

    #[test]
    fn knockout_protocol_resolves_on_sinr() {
        let deployment = Deployment::uniform_square(24, 15.0, 3);
        let channel = SinrChannel::new(SinrParams::default_single_hop());
        let mut sim = Simulation::new(deployment, Box::new(channel), 17, |_| {
            Box::new(Knockout {
                p: 0.25,
                active: true,
            })
        });
        let result = sim.run_until_resolved(5_000);
        assert!(result.resolved(), "run did not resolve");
        assert!(result.winner().is_some());
        assert!(result.final_active() >= 1);
    }

    #[test]
    fn identical_seeds_reproduce_identical_runs() {
        let run = |seed: u64| {
            let deployment = Deployment::uniform_square(20, 12.0, 5);
            let channel = SinrChannel::new(SinrParams::default_single_hop());
            let mut sim = Simulation::new(deployment, Box::new(channel), seed, |_| {
                Box::new(Knockout {
                    p: 0.25,
                    active: true,
                })
            });
            sim.set_trace_level(TraceLevel::Full);
            sim.run_until_resolved(5_000)
        };
        let a = run(123);
        let b = run(123);
        let c = run(124);
        assert_eq!(a.resolved_at(), b.resolved_at());
        assert_eq!(a.trace(), b.trace());
        // Different seeds should (generically) differ somewhere.
        assert!(a.resolved_at() != c.resolved_at() || a.trace() != c.trace());
    }

    #[test]
    fn trace_levels_record_expected_detail() {
        let deployment = line_deployment(6);
        let channel = RadioChannel::new();
        let mut sim = Simulation::new(deployment, Box::new(channel), 1, |_| Box::new(AlwaysTx));
        sim.set_trace_level(TraceLevel::Counts);
        sim.step();
        let deployment2 = line_deployment(6);
        let mut sim2 = Simulation::new(deployment2, Box::new(channel), 1, |_| Box::new(AlwaysTx));
        sim2.set_trace_level(TraceLevel::Full);
        sim2.step();

        let r1 = sim.run_until_resolved(1);
        let r2 = sim2.run_until_resolved(1);
        assert_eq!(r1.trace().rounds()[0].transmitter_ids, None);
        assert_eq!(
            r2.trace().rounds()[0].transmitter_ids,
            Some(vec![0, 1, 2, 3, 4, 5])
        );
        assert_eq!(r1.trace().rounds()[0].transmitters, 6);
    }

    #[test]
    fn knocked_out_nodes_stop_acting() {
        // Two nodes, radio channel: when one transmits alone the other is
        // knocked out; afterwards num_active == 1.
        let mut sim = Simulation::new(line_deployment(2), Box::new(RadioChannel::new()), 9, |_| {
            Box::new(Knockout {
                p: 0.5,
                active: true,
            })
        });
        let result = sim.run_until_resolved(10_000);
        assert!(result.resolved());
        assert_eq!(sim.num_active(), 1);
        let survivor = sim.active_ids();
        assert_eq!(survivor.len(), 1);
        assert_eq!(Some(survivor[0]), result.winner());
    }

    #[test]
    fn transmission_count_matches_trace() {
        let deployment = Deployment::uniform_square(24, 15.0, 3);
        let channel = SinrChannel::new(SinrParams::default_single_hop());
        let mut sim = Simulation::new(deployment, Box::new(channel), 17, |_| {
            Box::new(Knockout {
                p: 0.25,
                active: true,
            })
        });
        sim.set_trace_level(TraceLevel::Counts);
        let result = sim.run_until_resolved(5_000);
        let from_trace: u64 = result
            .trace()
            .rounds()
            .iter()
            .map(|r| r.transmitters as u64)
            .sum();
        assert_eq!(result.total_transmissions(), from_trace);
        assert!(result.total_transmissions() > 0);
        assert_eq!(sim.total_transmissions(), from_trace);
    }

    fn knockout_sim(seed: u64) -> Simulation {
        let deployment = Deployment::uniform_square(20, 12.0, 5);
        let channel = SinrChannel::new(SinrParams::default_single_hop());
        Simulation::new(deployment, Box::new(channel), seed, |_| {
            Box::new(Knockout {
                p: 0.25,
                active: true,
            })
        })
    }

    #[test]
    fn try_new_rejects_empty_deployment() {
        let deployment = Deployment::from_points(Vec::new()).unwrap_or_else(|_| {
            // `fading-geom` may itself refuse empty deployments; in that
            // case the guard in try_new is unreachable through the public
            // API and this test only checks the NoActiveNodes path below.
            Deployment::uniform_square(2, 5.0, 0)
        });
        if deployment.is_empty() {
            let err = Simulation::try_new(deployment, Box::new(RadioChannel::new()), 0, |_| {
                Box::new(AlwaysTx)
            })
            .unwrap_err();
            assert_eq!(err, SimError::EmptyDeployment);
            assert!(err.to_string().contains("no nodes"));
        }
    }

    #[test]
    fn try_new_rejects_all_inactive_protocols() {
        let err = Simulation::try_new(line_deployment(4), Box::new(RadioChannel::new()), 0, |_| {
            Box::new(Knockout {
                p: 0.5,
                active: false,
            })
        })
        .unwrap_err();
        assert_eq!(err, SimError::NoActiveNodes);
        assert!(err.to_string().contains("never resolve"));
    }

    #[test]
    fn try_new_accepts_normal_setup() {
        let sim = Simulation::try_new(line_deployment(4), Box::new(RadioChannel::new()), 0, |_| {
            Box::new(AlwaysTx)
        })
        .unwrap();
        assert_eq!(sim.num_active(), 4);
    }

    #[test]
    fn fault_plan_rejected_mid_run() {
        let mut sim = knockout_sim(1);
        sim.step();
        let err = sim.set_fault_plan(FaultPlan::new()).unwrap_err();
        assert_eq!(err, FaultError::PlanAttachedMidRun { round: 1 });
    }

    #[test]
    fn fault_plan_rejects_out_of_range_churn() {
        let mut sim = knockout_sim(1);
        let plan =
            FaultPlan::new().with_churn(crate::faults::ChurnEvent::crash(3, 999).unwrap());
        let err = sim.set_fault_plan(plan).unwrap_err();
        assert!(matches!(err, FaultError::NodeOutOfRange { node: 999, .. }));
    }

    #[test]
    fn empty_fault_plan_is_byte_identical_to_none() {
        let run = |with_plan: bool| {
            let mut sim = knockout_sim(77);
            if with_plan {
                sim.set_fault_plan(FaultPlan::new()).unwrap();
            }
            sim.set_trace_level(TraceLevel::Full);
            sim.run_until_resolved(5_000)
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn continuous_strong_jammer_blocks_all_knockouts() {
        // A jammer drowning every listener cannot stop a lucky solo
        // transmission from resolving contention — but it must prevent
        // every knockout (no listener ever decodes a message).
        use crate::faults::Jammer;
        let mut sim = knockout_sim(42);
        let power = SinrParams::default_single_hop().power() * 1e6;
        let plan = FaultPlan::new()
            .with_jammer(Jammer::continuous(Point::new(6.0, 6.0), power, 1).unwrap());
        sim.set_fault_plan(plan).unwrap();
        sim.set_trace_level(TraceLevel::Counts);
        let result = sim.run_until_resolved(200);
        assert!(
            result.trace().rounds().iter().all(|r| r.knocked_out == 0),
            "an overwhelming continuous jammer must prevent every knockout"
        );
        assert_eq!(sim.num_active(), sim.len());
    }

    #[test]
    fn budgeted_jammer_only_delays_resolution() {
        use crate::faults::Jammer;
        let clean = {
            let mut sim = knockout_sim(42);
            sim.run_until_resolved(5_000)
        };
        let jammed = {
            let mut sim = knockout_sim(42);
            let power = SinrParams::default_single_hop().power() * 1e6;
            let plan = FaultPlan::new()
                .with_jammer(Jammer::new(Point::new(6.0, 6.0), power, 1, 1, 1, Some(30)).unwrap());
            sim.set_fault_plan(plan).unwrap();
            sim.run_until_resolved(5_000)
        };
        assert!(jammed.resolved(), "a budget-bounded jammer cannot block forever");
        assert!(
            jammed.resolved_at().unwrap() >= clean.resolved_at().unwrap(),
            "jamming should never speed up resolution on the same seed"
        );
    }

    #[test]
    fn crash_events_force_nodes_out() {
        use crate::faults::ChurnEvent;
        let mut sim = Simulation::new(line_deployment(4), Box::new(RadioChannel::new()), 0, |_| {
            Box::new(AlwaysTx)
        });
        let plan = FaultPlan::new()
            .with_churn(ChurnEvent::crash(2, 1).unwrap())
            .with_churn(ChurnEvent::crash(2, 2).unwrap())
            .with_churn(ChurnEvent::crash(2, 3).unwrap());
        sim.set_fault_plan(plan).unwrap();
        sim.step();
        assert_eq!(sim.num_active(), 4);
        // Round 2: nodes 1–3 crash at the start, node 0 transmits alone.
        match sim.step() {
            StepOutcome::Resolved { winner } => assert_eq!(winner, 0),
            other => panic!("expected resolution after crashes, got {other:?}"),
        }
        assert!(!sim.is_active(1));
        assert_eq!(sim.num_active(), 1);
    }

    #[test]
    fn revive_undoes_crash_but_not_knockout() {
        use crate::faults::ChurnEvent;
        let mut sim = Simulation::new(line_deployment(4), Box::new(RadioChannel::new()), 0, |_| {
            Box::new(AlwaysTx)
        });
        let plan = FaultPlan::new()
            .with_churn(ChurnEvent::crash(1, 2).unwrap())
            .with_churn(ChurnEvent::revive(3, 2).unwrap());
        sim.set_fault_plan(plan).unwrap();
        sim.step();
        assert!(!sim.is_active(2), "crash must deactivate");
        sim.step();
        assert!(!sim.is_active(2));
        sim.step();
        assert!(sim.is_active(2), "revive must restore a crashed node");
        assert_eq!(sim.num_active(), 4);
    }

    #[test]
    fn revive_never_resurrects_protocol_knockouts() {
        use crate::faults::ChurnEvent;
        // Two-node radio network: node 0 transmits alone in round 1, so
        // node 1 receives and knocks itself out. A revival scheduled later
        // must NOT bring it back: its own protocol is inactive.
        let mut sim = Simulation::new(line_deployment(2), Box::new(RadioChannel::new()), 0, |id| {
            if id == 0 {
                Box::new(AlwaysTx) as Box<dyn Protocol>
            } else {
                Box::new(Knockout {
                    p: 0.0,
                    active: true,
                })
            }
        });
        let plan = FaultPlan::new().with_churn(ChurnEvent::revive(3, 1).unwrap());
        sim.set_fault_plan(plan).unwrap();
        sim.step();
        assert!(!sim.is_active(1), "reception must knock node 1 out");
        sim.step();
        sim.step();
        assert!(
            !sim.is_active(1),
            "revival must not override a protocol-level knockout"
        );
    }

    #[test]
    fn late_wake_nodes_sleep_until_their_round() {
        use crate::faults::ChurnEvent;
        // All nodes always transmit; nodes 1–3 wake only at round 4. With
        // only node 0 awake, round 1 resolves immediately.
        let mut sim = Simulation::new(line_deployment(4), Box::new(RadioChannel::new()), 0, |_| {
            Box::new(AlwaysTx)
        });
        let plan = FaultPlan::new()
            .with_churn(ChurnEvent::late_wake(4, 1).unwrap())
            .with_churn(ChurnEvent::late_wake(4, 2).unwrap())
            .with_churn(ChurnEvent::late_wake(4, 3).unwrap());
        sim.set_fault_plan(plan).unwrap();
        assert!(sim.is_awake(0));
        assert!(!sim.is_awake(1));
        match sim.step() {
            StepOutcome::Resolved { winner } => assert_eq!(winner, 0),
            other => panic!("expected solo transmission from the lone awake node, got {other:?}"),
        }
        // After round 3 completes, the sleepers join in round 4.
        sim.step();
        sim.step();
        assert!(sim.is_awake(1));
        match sim.step() {
            StepOutcome::Unresolved { transmitters, .. } => assert_eq!(transmitters, 4),
            other => panic!("all four awake nodes should transmit, got {other:?}"),
        }
    }

    #[test]
    fn noise_burst_suppresses_decoding_for_its_window() {
        use crate::faults::NoiseBurst;
        // Solo transmitter on SINR: listener decodes every round — unless a
        // massive noise burst covers the round.
        let channel = SinrChannel::new(SinrParams::default_single_hop());
        let deployment = Deployment::from_points(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
        ])
        .unwrap();
        let mut sim = Simulation::new(deployment, Box::new(channel), 0, |id| {
            Box::new(OnlyNodeZero { id })
        });
        let plan = FaultPlan::new()
            .with_noise_burst(NoiseBurst::new(2, 2, 1e12).unwrap());
        sim.set_fault_plan(plan).unwrap();
        sim.set_trace_level(TraceLevel::Counts);
        // Rounds 1–4: the trace can't see receptions directly, but the
        // Knockout-free protocol keeps state; instead verify via
        // total_transmissions and explicit stepping that no panic occurs
        // and resolution still happens in round 1 (solo transmitter).
        match sim.step() {
            StepOutcome::Resolved { winner } => assert_eq!(winner, 0),
            other => panic!("solo transmitter must resolve, got {other:?}"),
        }
    }

    #[test]
    fn gilbert_elliott_loss_changes_trajectory_deterministically() {
        use crate::faults::GilbertElliott;
        let run = |with_loss: bool| {
            let mut sim = knockout_sim(123);
            if with_loss {
                let plan = FaultPlan::new()
                    .with_loss(GilbertElliott::new(0.3, 0.2, 0.1, 0.95).unwrap());
                sim.set_fault_plan(plan).unwrap();
            }
            sim.set_trace_level(TraceLevel::Full);
            sim.run_until_resolved(5_000)
        };
        let a = run(true);
        let b = run(true);
        assert_eq!(a, b, "faulted runs must be reproducible from the seed");
        let clean = run(false);
        // Dropped knockout messages slow resolution on this seed.
        assert!(a.resolved() && clean.resolved());
        assert_ne!(
            a.trace(),
            clean.trace(),
            "heavy burst loss should alter the knockout trajectory"
        );
    }

    #[test]
    fn faulted_run_is_cache_invariant() {
        use crate::faults::{ChurnEvent, GilbertElliott, Jammer, NoiseBurst};
        let run = |cache_on: bool| {
            let mut sim = knockout_sim(9);
            let power = SinrParams::default_single_hop().power() * 10.0;
            let plan = FaultPlan::new()
                .with_jammer(Jammer::new(Point::new(6.0, 6.0), power, 3, 5, 2, Some(20)).unwrap())
                .with_noise_burst(NoiseBurst::new(4, 6, 3.0).unwrap())
                .with_churn(ChurnEvent::crash(5, 0).unwrap())
                .with_churn(ChurnEvent::revive(9, 0).unwrap())
                .with_churn(ChurnEvent::late_wake(3, 1).unwrap())
                .with_loss(GilbertElliott::new(0.2, 0.3, 0.05, 0.8).unwrap());
            sim.set_fault_plan(plan).unwrap();
            sim.set_gain_cache_enabled(cache_on);
            sim.set_trace_level(TraceLevel::Full);
            sim.run_until_resolved(5_000)
        };
        assert_eq!(run(true), run(false), "fault path must be cache-invariant");
    }

    #[test]
    fn self_check_on_a_healthy_run_never_demotes() {
        let clean = {
            let mut sim = knockout_sim(31);
            sim.set_trace_level(TraceLevel::Full);
            sim.run_until_resolved(5_000)
        };
        let mut sim = knockout_sim(31);
        sim.set_trace_level(TraceLevel::Full);
        sim.set_self_check(4);
        assert!(sim.self_check_enabled());
        let checked = sim.run_until_resolved(5_000);
        let counters = sim.engine_counters();
        assert!(counters.self_check_rounds > 0, "cached rounds must be audited");
        assert!(counters.self_check_samples >= counters.self_check_rounds);
        assert_eq!(counters.self_check_violations, 0);
        assert_eq!(counters.tier_demotions, 0);
        assert!(sim.gain_cache_active(), "no demotion on a healthy run");
        assert_eq!(checked, clean, "auditing must not perturb the run");
    }

    #[test]
    fn injected_violation_demotes_the_tier_without_panicking() {
        let clean = {
            let mut sim = knockout_sim(31);
            sim.set_trace_level(TraceLevel::Full);
            sim.run_until_resolved(5_000)
        };
        let mut sim = knockout_sim(31);
        sim.set_trace_level(TraceLevel::Full);
        sim.set_self_check(2);
        sim.inject_self_check_violation();
        let result = sim.run_until_resolved(5_000);
        let counters = sim.engine_counters();
        assert_eq!(counters.tier_demotions, 1, "exactly one demotion");
        assert!(counters.self_check_violations >= 1);
        assert!(
            !sim.gain_cache_active(),
            "the serving gain-cache tier must be demoted"
        );
        // The tiers are bit-identical, so a (spurious) demotion degrades
        // speed, never the outcome.
        assert_eq!(result, clean);
    }

    #[test]
    fn snapshot_restore_resumes_byte_identically() {
        let make = || {
            let mut sim = knockout_sim(55);
            sim.set_trace_level(TraceLevel::Full);
            sim
        };
        let uninterrupted = make().run_until_resolved(5_000);

        let mut interrupted = make();
        for _ in 0..3 {
            interrupted.step();
        }
        let bytes = interrupted.snapshot().to_bytes();
        drop(interrupted);

        let decoded = crate::recover::SimSnapshot::from_bytes(&bytes).unwrap();
        let mut resumed = make();
        resumed.restore(&decoded).unwrap();
        let result = resumed.run_until_resolved(5_000);
        assert_eq!(result, uninterrupted, "resume must be byte-identical");
    }

    #[test]
    fn restore_rejects_a_foreign_or_stepped_target() {
        let mut source = knockout_sim(1);
        source.step();
        let snap = source.snapshot();

        // Different seed → different fingerprint.
        let mut wrong_seed = knockout_sim(2);
        assert!(matches!(
            wrong_seed.restore(&snap),
            Err(SnapshotError::Incompatible { .. })
        ));

        // A target that has already stepped is refused.
        let mut stepped = knockout_sim(1);
        stepped.step();
        let err = stepped.restore(&snap).unwrap_err();
        assert!(err.to_string().contains("freshly constructed"), "{err}");

        // The identical fresh target accepts it.
        let mut fresh = knockout_sim(1);
        fresh.restore(&snap).unwrap();
        assert_eq!(fresh.round(), 1);
    }

    #[test]
    fn snapshot_restore_preserves_fault_plan_progress() {
        use crate::faults::{ChurnEvent, GilbertElliott, Jammer, NoiseBurst};
        let plan = || {
            let power = SinrParams::default_single_hop().power() * 10.0;
            FaultPlan::new()
                .with_jammer(Jammer::new(Point::new(6.0, 6.0), power, 3, 5, 2, Some(20)).unwrap())
                .with_noise_burst(NoiseBurst::new(4, 6, 3.0).unwrap())
                .with_churn(ChurnEvent::crash(5, 0).unwrap())
                .with_churn(ChurnEvent::revive(9, 0).unwrap())
                .with_churn(ChurnEvent::late_wake(3, 1).unwrap())
                .with_loss(GilbertElliott::new(0.2, 0.3, 0.05, 0.8).unwrap())
        };
        let make = || {
            let mut sim = knockout_sim(9);
            sim.set_fault_plan(plan()).unwrap();
            sim.set_trace_level(TraceLevel::Full);
            sim
        };
        let uninterrupted = make().run_until_resolved(5_000);

        // Interrupt mid-churn: after round 6 the crash fired (round 5) but
        // the revive (round 9) is still pending, and the GE chain and
        // jammer budget are mid-flight.
        let mut interrupted = make();
        for _ in 0..6 {
            interrupted.step();
        }
        let snap = interrupted.snapshot();
        let mut resumed = make();
        resumed.restore(&snap).unwrap();
        let result = resumed.run_until_resolved(5_000);
        assert_eq!(result, uninterrupted, "mid-churn resume must be byte-identical");
    }

    #[test]
    fn active_ids_track_deactivation() {
        let mut sim = Simulation::new(line_deployment(3), Box::new(RadioChannel::new()), 0, |id| {
            Box::new(OnlyNodeZero { id })
        });
        assert_eq!(sim.active_ids(), vec![0, 1, 2]);
        assert_eq!(sim.num_active(), 3);
        assert!(sim.is_active(2));
        assert!(!sim.is_active(5));
        sim.step();
        // OnlyNodeZero never deactivates anyone.
        assert_eq!(sim.num_active(), 3);
    }
}
