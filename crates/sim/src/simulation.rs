//! The round-based simulation engine.

use rand::rngs::SmallRng;

use fading_channel::{ActiveInterference, Channel, GainCache, NodeId};
use fading_geom::{Deployment, Point};

use crate::result::{RoundRecord, RunResult, Trace, TraceLevel};
use crate::rng::{channel_rng, node_rng};
use crate::{Action, Protocol};

/// What happened in one call to [`Simulation::step`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// Exactly one active node transmitted: contention is resolved.
    Resolved {
        /// The solo transmitter.
        winner: NodeId,
    },
    /// Zero or at least two active nodes transmitted.
    Unresolved {
        /// Number of transmitters this round.
        transmitters: usize,
        /// Number of nodes knocked out by this round's receptions.
        knocked_out: usize,
    },
}

/// A synchronous-round simulation: one deployment, one channel, one protocol
/// instance per node.
///
/// Each round the simulator (1) asks every active node for its action,
/// (2) resolves receptions for the active listeners through the channel,
/// (3) delivers feedback to the listeners, and (4) deactivates nodes whose
/// protocol reports inactive. The run is **resolved** in the first round in
/// which exactly one active node transmits.
///
/// See the [crate-level example](crate) for a complete usage sketch.
#[derive(Debug)]
pub struct Simulation {
    positions: Vec<Point>,
    channel: Box<dyn Channel>,
    protocols: Vec<Box<dyn Protocol>>,
    node_rngs: Vec<SmallRng>,
    chan_rng: SmallRng,
    active: Vec<bool>,
    num_active: usize,
    round: u64,
    total_transmissions: u64,
    resolved_at: Option<u64>,
    winner: Option<NodeId>,
    trace_level: TraceLevel,
    trace: Trace,
    // Precomputed pairwise gains (None when the channel has no
    // deterministic gains or the deployment exceeds the size guard), and
    // the incremental interference totals maintained on top of them.
    gain_cache: Option<GainCache>,
    cache_enabled: bool,
    active_interference: Option<ActiveInterference>,
    // Scratch buffers reused across rounds.
    transmitters: Vec<NodeId>,
    listeners: Vec<NodeId>,
}

impl Simulation {
    /// Creates a simulation over `deployment` with the given channel and
    /// master `seed`. `make_protocol` is called once per node id to build
    /// that node's protocol instance.
    pub fn new<F>(
        deployment: Deployment,
        channel: Box<dyn Channel>,
        seed: u64,
        mut make_protocol: F,
    ) -> Self
    where
        F: FnMut(NodeId) -> Box<dyn Protocol>,
    {
        let n = deployment.len();
        let protocols: Vec<Box<dyn Protocol>> = (0..n).map(&mut make_protocol).collect();
        let node_rngs: Vec<SmallRng> = (0..n).map(|i| node_rng(seed, i)).collect();
        let active: Vec<bool> = protocols.iter().map(|p| p.is_active()).collect();
        let num_active = active.iter().filter(|&&a| a).count();
        let positions = deployment.points().to_vec();
        let gain_cache = channel.build_gain_cache(&positions);
        let mut active_interference = gain_cache.as_ref().map(ActiveInterference::new);
        if let (Some(engine), Some(cache)) = (&mut active_interference, &gain_cache) {
            for (i, &is_active) in active.iter().enumerate() {
                if !is_active {
                    engine.deactivate(cache, i);
                }
            }
        }
        Simulation {
            positions,
            channel,
            protocols,
            node_rngs,
            chan_rng: channel_rng(seed),
            active,
            num_active,
            round: 0,
            total_transmissions: 0,
            resolved_at: None,
            winner: None,
            trace_level: TraceLevel::None,
            trace: Trace::default(),
            gain_cache,
            cache_enabled: true,
            active_interference,
            transmitters: Vec::new(),
            listeners: Vec::new(),
        }
    }

    /// Enables or disables the gain cache for subsequent rounds.
    ///
    /// The cache is on by default whenever the channel built one. Because
    /// cached resolution is bit-identical to uncached, toggling this never
    /// changes a run's outcome — only its speed. Exposed so equivalence
    /// and determinism tests can compare both paths.
    pub fn set_gain_cache_enabled(&mut self, enabled: bool) {
        self.cache_enabled = enabled;
    }

    /// Whether rounds currently resolve through a gain cache (a cache
    /// exists **and** caching is enabled).
    #[must_use]
    pub fn gain_cache_active(&self) -> bool {
        self.cache_enabled && self.gain_cache.is_some()
    }

    /// The precomputed gain cache, when the channel built one.
    #[must_use]
    pub fn gain_cache(&self) -> Option<&GainCache> {
        self.gain_cache.as_ref()
    }

    /// The running total interference at node `v` from all still-active
    /// nodes (`Σ_{w active, w ≠ v} P / d(w,v)^α`), maintained
    /// incrementally as nodes knock out. `None` when no gain cache exists
    /// or `v` is out of range.
    #[must_use]
    pub fn active_interference_at(&self, v: NodeId) -> Option<f64> {
        if v >= self.positions.len() {
            return None;
        }
        self.active_interference.as_ref().map(|ai| ai.total_at(v))
    }

    /// Selects how much per-round detail to record. Call before stepping.
    pub fn set_trace_level(&mut self, level: TraceLevel) {
        self.trace_level = level;
    }

    /// Number of nodes in the deployment.
    #[must_use]
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// `true` if the deployment is empty (never the case for deployments
    /// built through `fading-geom`, which require at least two nodes).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// The current (1-based) count of completed rounds.
    #[must_use]
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Number of currently active nodes.
    #[must_use]
    pub fn num_active(&self) -> usize {
        self.num_active
    }

    /// Whether node `i` is still active.
    #[must_use]
    pub fn is_active(&self, i: NodeId) -> bool {
        self.active.get(i).copied().unwrap_or(false)
    }

    /// Ids of currently active nodes, in increasing order.
    #[must_use]
    pub fn active_ids(&self) -> Vec<NodeId> {
        (0..self.len()).filter(|&i| self.active[i]).collect()
    }

    /// Node positions (index = node id).
    #[must_use]
    pub fn positions(&self) -> &[Point] {
        &self.positions
    }

    /// The round in which contention was resolved, if it has been.
    #[must_use]
    pub fn resolved_at(&self) -> Option<u64> {
        self.resolved_at
    }

    /// Total transmissions so far, across all nodes and rounds (the energy
    /// cost in the unit-per-broadcast model).
    #[must_use]
    pub fn total_transmissions(&self) -> u64 {
        self.total_transmissions
    }

    /// Executes one synchronous round and reports the outcome.
    ///
    /// Stepping past resolution is allowed (the remaining active nodes keep
    /// running their protocols); `resolved_at` keeps the *first* resolving
    /// round.
    pub fn step(&mut self) -> StepOutcome {
        self.round += 1;
        let active_before = self.num_active;

        // Phase 1: collect actions from active nodes.
        self.transmitters.clear();
        self.listeners.clear();
        for i in 0..self.positions.len() {
            if !self.active[i] {
                continue;
            }
            match self.protocols[i].act(self.round, &mut self.node_rngs[i]) {
                Action::Transmit => self.transmitters.push(i),
                Action::Listen => self.listeners.push(i),
            }
        }

        self.total_transmissions += self.transmitters.len() as u64;

        // Phase 2: the channel decides what listeners observe. The cached
        // path is bit-identical to the uncached one, so which branch runs
        // never affects the outcome.
        let cache = if self.cache_enabled {
            self.gain_cache.as_ref()
        } else {
            None
        };
        let receptions = self.channel.resolve_cached(
            &self.positions,
            &self.transmitters,
            &self.listeners,
            cache,
            &mut self.chan_rng,
        );
        debug_assert_eq!(receptions.len(), self.listeners.len());

        // Phase 3: feedback and deactivation.
        let mut knocked_out = 0;
        for (k, &v) in self.listeners.iter().enumerate() {
            self.protocols[v].feedback(self.round, &receptions[k]);
            if !self.protocols[v].is_active() {
                self.active[v] = false;
                self.num_active -= 1;
                knocked_out += 1;
                if let (Some(engine), Some(cache)) =
                    (&mut self.active_interference, &self.gain_cache)
                {
                    engine.deactivate(cache, v);
                }
            }
        }

        // Resolution check: exactly one *active* node transmitted.
        let outcome = if self.transmitters.len() == 1 {
            let winner = self.transmitters[0];
            if self.resolved_at.is_none() {
                self.resolved_at = Some(self.round);
                self.winner = Some(winner);
            }
            StepOutcome::Resolved { winner }
        } else {
            StepOutcome::Unresolved {
                transmitters: self.transmitters.len(),
                knocked_out,
            }
        };

        match self.trace_level {
            TraceLevel::None => {}
            TraceLevel::Counts => self.trace.push(RoundRecord {
                round: self.round,
                active_before,
                transmitters: self.transmitters.len(),
                knocked_out,
                transmitter_ids: None,
            }),
            TraceLevel::Full => self.trace.push(RoundRecord {
                round: self.round,
                active_before,
                transmitters: self.transmitters.len(),
                knocked_out,
                transmitter_ids: Some(self.transmitters.clone()),
            }),
        }

        outcome
    }

    /// Runs rounds until contention resolves or `max_rounds` is exhausted,
    /// then returns the result (consuming nothing; the simulation can be
    /// inspected or stepped further).
    pub fn run_until_resolved(&mut self, max_rounds: u64) -> RunResult {
        self.run_until_resolved_with(max_rounds, |_| {})
    }

    /// Like [`Simulation::run_until_resolved`], invoking `observe(&self)`
    /// **before every round** (and once more after the final round), so
    /// callers can snapshot evolving state — e.g. per-round link-class
    /// partitions for the §3.3 schedule-adherence analysis — without
    /// hand-rolling the stepping loop.
    pub fn run_until_resolved_with<F>(&mut self, max_rounds: u64, mut observe: F) -> RunResult
    where
        F: FnMut(&Simulation),
    {
        let initial = self.positions.len();
        while self.resolved_at.is_none() && self.round < max_rounds {
            observe(self);
            self.step();
        }
        observe(self);
        RunResult::new(
            self.resolved_at,
            self.round,
            initial,
            self.num_active,
            self.winner,
            self.total_transmissions,
            std::mem::take(&mut self.trace),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fading_channel::{RadioChannel, Reception, SinrChannel, SinrParams};
    use rand::Rng;

    /// Transmits with a fixed probability forever; knocked out on reception.
    #[derive(Debug)]
    struct Knockout {
        p: f64,
        active: bool,
    }

    impl Protocol for Knockout {
        fn act(&mut self, _round: u64, rng: &mut SmallRng) -> Action {
            if rng.gen_bool(self.p) {
                Action::Transmit
            } else {
                Action::Listen
            }
        }
        fn feedback(&mut self, _round: u64, reception: &Reception) {
            if reception.is_message() {
                self.active = false;
            }
        }
        fn is_active(&self) -> bool {
            self.active
        }
        fn name(&self) -> &'static str {
            "test-knockout"
        }
    }

    /// Always transmits.
    #[derive(Debug)]
    struct AlwaysTx;

    impl Protocol for AlwaysTx {
        fn act(&mut self, _round: u64, _rng: &mut SmallRng) -> Action {
            Action::Transmit
        }
        fn feedback(&mut self, _round: u64, _reception: &Reception) {}
        fn is_active(&self) -> bool {
            true
        }
        fn name(&self) -> &'static str {
            "test-always"
        }
    }

    /// Only node 0 transmits; everyone else listens.
    #[derive(Debug)]
    struct OnlyNodeZero {
        id: NodeId,
    }

    impl Protocol for OnlyNodeZero {
        fn act(&mut self, _round: u64, _rng: &mut SmallRng) -> Action {
            if self.id == 0 {
                Action::Transmit
            } else {
                Action::Listen
            }
        }
        fn feedback(&mut self, _round: u64, _reception: &Reception) {}
        fn is_active(&self) -> bool {
            true
        }
        fn name(&self) -> &'static str {
            "test-node-zero"
        }
    }

    fn line_deployment(n: usize) -> Deployment {
        Deployment::from_points(
            (0..n)
                .map(|i| Point::new(i as f64 * 2.0, 0.0))
                .collect::<Vec<_>>(),
        )
        .unwrap()
    }

    #[test]
    fn solo_transmitter_resolves_in_round_one() {
        let mut sim = Simulation::new(line_deployment(4), Box::new(RadioChannel::new()), 0, |id| {
            Box::new(OnlyNodeZero { id })
        });
        match sim.step() {
            StepOutcome::Resolved { winner } => assert_eq!(winner, 0),
            other => panic!("expected resolution, got {other:?}"),
        }
        assert_eq!(sim.resolved_at(), Some(1));
    }

    #[test]
    fn everyone_transmitting_never_resolves_on_radio() {
        let mut sim = Simulation::new(line_deployment(4), Box::new(RadioChannel::new()), 0, |_| {
            Box::new(AlwaysTx)
        });
        let result = sim.run_until_resolved(50);
        assert!(!result.resolved());
        assert_eq!(result.rounds_executed(), 50);
        assert_eq!(result.final_active(), 4);
    }

    #[test]
    fn knockout_protocol_resolves_on_sinr() {
        let deployment = Deployment::uniform_square(24, 15.0, 3);
        let channel = SinrChannel::new(SinrParams::default_single_hop());
        let mut sim = Simulation::new(deployment, Box::new(channel), 17, |_| {
            Box::new(Knockout {
                p: 0.25,
                active: true,
            })
        });
        let result = sim.run_until_resolved(5_000);
        assert!(result.resolved(), "run did not resolve");
        assert!(result.winner().is_some());
        assert!(result.final_active() >= 1);
    }

    #[test]
    fn identical_seeds_reproduce_identical_runs() {
        let run = |seed: u64| {
            let deployment = Deployment::uniform_square(20, 12.0, 5);
            let channel = SinrChannel::new(SinrParams::default_single_hop());
            let mut sim = Simulation::new(deployment, Box::new(channel), seed, |_| {
                Box::new(Knockout {
                    p: 0.25,
                    active: true,
                })
            });
            sim.set_trace_level(TraceLevel::Full);
            sim.run_until_resolved(5_000)
        };
        let a = run(123);
        let b = run(123);
        let c = run(124);
        assert_eq!(a.resolved_at(), b.resolved_at());
        assert_eq!(a.trace(), b.trace());
        // Different seeds should (generically) differ somewhere.
        assert!(a.resolved_at() != c.resolved_at() || a.trace() != c.trace());
    }

    #[test]
    fn trace_levels_record_expected_detail() {
        let deployment = line_deployment(6);
        let channel = RadioChannel::new();
        let mut sim = Simulation::new(deployment, Box::new(channel), 1, |_| Box::new(AlwaysTx));
        sim.set_trace_level(TraceLevel::Counts);
        sim.step();
        let deployment2 = line_deployment(6);
        let mut sim2 = Simulation::new(deployment2, Box::new(channel), 1, |_| Box::new(AlwaysTx));
        sim2.set_trace_level(TraceLevel::Full);
        sim2.step();

        let r1 = sim.run_until_resolved(1);
        let r2 = sim2.run_until_resolved(1);
        assert_eq!(r1.trace().rounds()[0].transmitter_ids, None);
        assert_eq!(
            r2.trace().rounds()[0].transmitter_ids,
            Some(vec![0, 1, 2, 3, 4, 5])
        );
        assert_eq!(r1.trace().rounds()[0].transmitters, 6);
    }

    #[test]
    fn knocked_out_nodes_stop_acting() {
        // Two nodes, radio channel: when one transmits alone the other is
        // knocked out; afterwards num_active == 1.
        let mut sim = Simulation::new(line_deployment(2), Box::new(RadioChannel::new()), 9, |_| {
            Box::new(Knockout {
                p: 0.5,
                active: true,
            })
        });
        let result = sim.run_until_resolved(10_000);
        assert!(result.resolved());
        assert_eq!(sim.num_active(), 1);
        let survivor = sim.active_ids();
        assert_eq!(survivor.len(), 1);
        assert_eq!(Some(survivor[0]), result.winner());
    }

    #[test]
    fn transmission_count_matches_trace() {
        let deployment = Deployment::uniform_square(24, 15.0, 3);
        let channel = SinrChannel::new(SinrParams::default_single_hop());
        let mut sim = Simulation::new(deployment, Box::new(channel), 17, |_| {
            Box::new(Knockout {
                p: 0.25,
                active: true,
            })
        });
        sim.set_trace_level(TraceLevel::Counts);
        let result = sim.run_until_resolved(5_000);
        let from_trace: u64 = result
            .trace()
            .rounds()
            .iter()
            .map(|r| r.transmitters as u64)
            .sum();
        assert_eq!(result.total_transmissions(), from_trace);
        assert!(result.total_transmissions() > 0);
        assert_eq!(sim.total_transmissions(), from_trace);
    }

    #[test]
    fn active_ids_track_deactivation() {
        let mut sim = Simulation::new(line_deployment(3), Box::new(RadioChannel::new()), 0, |id| {
            Box::new(OnlyNodeZero { id })
        });
        assert_eq!(sim.active_ids(), vec![0, 1, 2]);
        assert_eq!(sim.num_active(), 3);
        assert!(sim.is_active(2));
        assert!(!sim.is_active(5));
        sim.step();
        // OnlyNodeZero never deactivates anyone.
        assert_eq!(sim.num_active(), 3);
    }
}
