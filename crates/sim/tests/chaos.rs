//! Chaos harness: random fault plans must never break the simulator.
//!
//! For each channel model, ≥128 randomly generated [`FaultPlan`]s (jammers
//! with random positions/powers/duty cycles/budgets, noise bursts, churn
//! schedules, Gilbert–Elliott burst loss) are each run as a small seeded
//! trial batch under every combination of gain cache {on, off} × worker
//! threads {1, 8}. The properties:
//!
//! 1. **No panics** — arbitrary (valid) plans never crash the engine.
//! 2. **Byte-determinism** — all four cache/thread configurations produce
//!    identical `Vec<RunResult>`, traces included.
//! 3. **Explicit outcomes** — every run ends as `Resolved` in a round
//!    within the cap, or as `RoundCapExhausted` having executed exactly
//!    the cap; no silent third state.

use fading_channel::{
    Channel, LossySinrChannel, RayleighSinrChannel, Reception, SinrChannel, SinrParams,
};
use fading_geom::{Deployment, Point};
use fading_sim::faults::{ChurnEvent, FaultPlan, GilbertElliott, Jammer, NoiseBurst};
use fading_sim::{montecarlo, Action, Protocol, RunOutcome, RunResult, Simulation, TraceLevel};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::Rng;

const N_NODES: usize = 12;
const SIDE: f64 = 10.0;
const ROUND_CAP: u64 = 400;
const TRIALS: usize = 3;

/// Transmits with fixed probability; knocked out on any reception.
#[derive(Debug)]
struct Knockout {
    p: f64,
    active: bool,
}

impl Protocol for Knockout {
    fn act(&mut self, _round: u64, rng: &mut SmallRng) -> Action {
        if rng.gen_bool(self.p) {
            Action::Transmit
        } else {
            Action::Listen
        }
    }
    fn feedback(&mut self, _round: u64, reception: &Reception) {
        if reception.is_message() {
            self.active = false;
        }
    }
    fn is_active(&self) -> bool {
        self.active
    }
    fn name(&self) -> &'static str {
        "test-knockout"
    }
}

/// Raw generated jammer parameters:
/// ((x, y), power_exponent, start, period, burst_raw, budget_raw).
type JammerSpec = ((f64, f64), f64, u64, u64, u64, u64);
/// (start, len, log10_factor).
type BurstSpec = (u64, u64, f64);
/// (round, node, kind_selector).
type ChurnSpec = (u64, usize, u8);
/// (enabled, p_enter, p_exit, drop_good, drop_bad).
type LossSpec = (bool, f64, f64, f64, f64);

/// Builds a valid `FaultPlan` from raw generated parameters. Raw values
/// are mapped into each component's legal domain, so construction can
/// only fail on a bug in the validators themselves.
fn build_plan(
    jammers: &[JammerSpec],
    bursts: &[BurstSpec],
    churn: &[ChurnSpec],
    loss: LossSpec,
) -> FaultPlan {
    let mut plan = FaultPlan::new();
    for &((x, y), power_exp, start, period, burst_raw, budget_raw) in jammers {
        let power = 10f64.powf(power_exp);
        let burst_len = 1 + burst_raw % period;
        let budget = if budget_raw == 0 { None } else { Some(budget_raw) };
        plan = plan.with_jammer(
            Jammer::new(Point::new(x, y), power, start, period, burst_len, budget)
                .expect("mapped jammer parameters are valid"),
        );
    }
    for &(start, len, log_factor) in bursts {
        plan = plan.with_noise_burst(
            NoiseBurst::new(start, len, 10f64.powf(log_factor))
                .expect("mapped burst parameters are valid"),
        );
    }
    for &(round, node, kind) in churn {
        let event = match kind % 3 {
            0 => ChurnEvent::late_wake(round, node),
            1 => ChurnEvent::crash(round, node),
            _ => ChurnEvent::revive(round, node),
        };
        plan = plan.with_churn(event.expect("round ≥ 1 by construction"));
    }
    let (enabled, p_enter, p_exit, drop_good, drop_bad) = loss;
    if enabled {
        plan = plan.with_loss(
            GilbertElliott::new(p_enter, p_exit, drop_good, drop_bad)
                .expect("probabilities drawn from [0, 1]"),
        );
    }
    plan
}

/// One seeded trial batch under the given plan and cache/thread config.
fn run_batch(
    make_channel: &(dyn Fn() -> Box<dyn Channel> + Sync),
    plan: &FaultPlan,
    cached: bool,
    threads: usize,
) -> Vec<RunResult> {
    montecarlo::run_trials(TRIALS, threads, 7_000, |seed| {
        let deployment = Deployment::uniform_square(N_NODES, SIDE, seed);
        let mut sim = Simulation::new(deployment, make_channel(), seed, |_| {
            Box::new(Knockout {
                p: 0.25,
                active: true,
            })
        });
        sim.set_fault_plan(plan.clone())
            .expect("plan validated against this deployment size");
        sim.set_gain_cache_enabled(cached);
        sim.set_trace_level(TraceLevel::Full);
        sim.run_until_resolved(ROUND_CAP)
    })
}

/// The full chaos property for one (channel, plan) pair.
fn check_chaos_properties(make_channel: &(dyn Fn() -> Box<dyn Channel> + Sync), plan: &FaultPlan) {
    let reference = run_batch(make_channel, plan, true, 1);
    for &cached in &[true, false] {
        for &threads in &[1usize, 8] {
            let got = run_batch(make_channel, plan, cached, threads);
            assert_eq!(
                got, reference,
                "faulted batch diverged at cached={cached}, threads={threads}, plan={plan:?}"
            );
        }
    }
    for result in &reference {
        match result.outcome() {
            RunOutcome::Resolved { round, winner } => {
                assert!((1..=ROUND_CAP).contains(&round), "round {round} out of range");
                assert!(winner.is_some(), "resolved runs must name a winner");
            }
            RunOutcome::RoundCapExhausted { rounds_executed } => {
                assert_eq!(rounds_executed, ROUND_CAP, "cap exhaustion must run the full cap");
            }
        }
    }
}

fn params() -> SinrParams {
    SinrParams::default_single_hop()
}

fn plan_strategy() -> impl Strategy<
    Value = (
        Vec<JammerSpec>,
        Vec<BurstSpec>,
        Vec<ChurnSpec>,
        LossSpec,
    ),
> {
    (
        prop::collection::vec(
            (
                (0.0..SIDE, 0.0..SIDE),
                0.0..9.0f64, // power 1 .. 10^9
                1u64..60,
                1u64..12,
                0u64..12, // mapped to 1..=period
                0u64..50, // 0 = unbounded
            ),
            0..3,
        ),
        prop::collection::vec((1u64..60, 1u64..40, -1.0..6.0f64), 0..3),
        prop::collection::vec((1u64..60, 0..N_NODES, 0u8..3), 0..7),
        (
            any::<bool>(),
            0.0..=1.0f64,
            0.0..=1.0f64,
            0.0..=1.0f64,
            0.0..=1.0f64,
        ),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn sinr_survives_random_fault_plans((jammers, bursts, churn, loss) in plan_strategy()) {
        let plan = build_plan(&jammers, &bursts, &churn, loss);
        check_chaos_properties(&|| Box::new(SinrChannel::new(params())), &plan);
    }

    #[test]
    fn rayleigh_survives_random_fault_plans((jammers, bursts, churn, loss) in plan_strategy()) {
        let plan = build_plan(&jammers, &bursts, &churn, loss);
        check_chaos_properties(&|| Box::new(RayleighSinrChannel::new(params())), &plan);
    }

    #[test]
    fn lossy_survives_random_fault_plans((jammers, bursts, churn, loss) in plan_strategy()) {
        let plan = build_plan(&jammers, &bursts, &churn, loss);
        check_chaos_properties(
            &|| Box::new(LossySinrChannel::new(params(), 0.2).expect("valid drop_prob")),
            &plan,
        );
    }
}
