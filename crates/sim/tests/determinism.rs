//! Determinism harness: the gain cache must be invisible to results.
//!
//! [`montecarlo::run_trials`] batches over seeded simulations; this suite
//! asserts the batch output is **byte-identical** (full [`RunResult`]
//! equality, traces included) regardless of (a) whether the simulation
//! resolves rounds through the gain cache and (b) how many worker threads
//! run the batch — the cached-resolve contract and the seed-ordered
//! fan-out contract, checked end to end.

use fading_channel::{
    Channel, LossySinrChannel, RayleighSinrChannel, Reception, SinrChannel, SinrParams,
};
use fading_geom::Deployment;
use fading_sim::{montecarlo, Action, Protocol, RunResult, Simulation, TraceLevel};
use rand::rngs::SmallRng;
use rand::Rng;

/// Transmits with fixed probability; knocked out on any reception.
#[derive(Debug)]
struct Knockout {
    p: f64,
    active: bool,
}

impl Protocol for Knockout {
    fn act(&mut self, _round: u64, rng: &mut SmallRng) -> Action {
        if rng.gen_bool(self.p) {
            Action::Transmit
        } else {
            Action::Listen
        }
    }
    fn feedback(&mut self, _round: u64, reception: &Reception) {
        if reception.is_message() {
            self.active = false;
        }
    }
    fn is_active(&self) -> bool {
        self.active
    }
    fn name(&self) -> &'static str {
        "test-knockout"
    }
}

/// Runs one full trial batch: `trials` seeded runs of a 24-node knockout
/// protocol on the channel built by `make_channel`, with the gain cache
/// forced on or off.
fn run_batch<F>(make_channel: &F, cached: bool, threads: usize, trials: usize) -> Vec<RunResult>
where
    F: Fn() -> Box<dyn Channel> + Sync,
{
    montecarlo::run_trials(trials, threads, 1000, |seed| {
        let deployment = Deployment::uniform_square(24, 15.0, seed);
        let mut sim = Simulation::new(deployment, make_channel(), seed, |_| {
            Box::new(Knockout {
                p: 0.25,
                active: true,
            })
        });
        sim.set_gain_cache_enabled(cached);
        sim.set_trace_level(TraceLevel::Full);
        sim.run_until_resolved(20_000)
    })
}

/// The cross-product check for one channel: cache {on, off} × threads
/// {1, 8} must all produce the same `Vec<RunResult>`.
fn assert_cache_and_threads_invariant<F>(make_channel: F)
where
    F: Fn() -> Box<dyn Channel> + Sync,
{
    let trials = 12;
    let reference = run_batch(&make_channel, true, 1, trials);
    assert!(
        reference.iter().any(|r| r.resolved()),
        "batch never resolved; the scenario is too hard to be a useful oracle"
    );
    for &cached in &[true, false] {
        for &threads in &[1usize, 8] {
            let got = run_batch(&make_channel, cached, threads, trials);
            assert_eq!(
                got, reference,
                "results diverged at cached={cached}, threads={threads}"
            );
        }
    }
}

fn params() -> SinrParams {
    SinrParams::default_single_hop()
}

#[test]
fn sinr_results_invariant_under_cache_and_thread_count() {
    assert_cache_and_threads_invariant(|| Box::new(SinrChannel::new(params())));
}

#[test]
fn rayleigh_results_invariant_under_cache_and_thread_count() {
    assert_cache_and_threads_invariant(|| Box::new(RayleighSinrChannel::new(params())));
}

#[test]
fn lossy_results_invariant_under_cache_and_thread_count() {
    assert_cache_and_threads_invariant(|| {
        Box::new(LossySinrChannel::new(params(), 0.2).expect("valid drop_prob"))
    });
}

#[test]
fn simulation_exposes_cache_state() {
    let deployment = Deployment::uniform_square(16, 10.0, 7);
    let channel = SinrChannel::new(params());
    let mut sim = Simulation::new(deployment, Box::new(channel), 7, |_| {
        Box::new(Knockout {
            p: 0.25,
            active: true,
        })
    });
    assert!(sim.gain_cache_active(), "SINR channel should build a cache");
    assert_eq!(sim.gain_cache().map(|c| c.len()), Some(16));
    sim.set_gain_cache_enabled(false);
    assert!(!sim.gain_cache_active());
    assert!(sim.gain_cache().is_some(), "disabling keeps the cache built");
}

#[test]
fn active_interference_shrinks_as_nodes_knock_out() {
    let deployment = Deployment::uniform_square(24, 15.0, 3);
    let channel = SinrChannel::new(params());
    let mut sim = Simulation::new(deployment, Box::new(channel), 17, |_| {
        Box::new(Knockout {
            p: 0.25,
            active: true,
        })
    });
    let initial: Vec<f64> = (0..sim.len())
        .map(|v| sim.active_interference_at(v).expect("cache exists"))
        .collect();
    assert!(initial.iter().all(|&t| t > 0.0));

    let result = sim.run_until_resolved(20_000);
    assert!(result.resolved());
    assert!(sim.num_active() < sim.len(), "someone must knock out");
    for (v, &was) in initial.iter().enumerate() {
        let now = sim.active_interference_at(v).expect("cache exists");
        assert!(now <= was, "interference at {v} grew: {now} > {was}");
    }
    assert_eq!(sim.active_interference_at(usize::MAX), None);
}

#[test]
fn radio_channel_has_no_cache_but_runs_identically() {
    use fading_channel::RadioChannel;
    let run = |cached: bool| {
        let deployment = Deployment::uniform_square(12, 10.0, 5);
        let mut sim = Simulation::new(deployment, Box::new(RadioChannel::new()), 5, |_| {
            Box::new(Knockout {
                p: 0.25,
                active: true,
            })
        });
        sim.set_gain_cache_enabled(cached);
        sim.set_trace_level(TraceLevel::Full);
        sim.run_until_resolved(20_000)
    };
    let a = run(true);
    let b = run(false);
    assert_eq!(a, b);

    let deployment = Deployment::uniform_square(12, 10.0, 5);
    let sim = Simulation::new(deployment, Box::new(RadioChannel::new()), 5, |_| {
        Box::new(Knockout {
            p: 0.25,
            active: true,
        })
    });
    assert!(!sim.gain_cache_active());
    assert_eq!(sim.active_interference_at(0), None);
}
