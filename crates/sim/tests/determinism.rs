//! Determinism harness: the gain cache must be invisible to results.
//!
//! [`montecarlo::run_trials`] batches over seeded simulations; this suite
//! asserts the batch output is **byte-identical** (full [`RunResult`]
//! equality, traces included) regardless of (a) whether the simulation
//! resolves rounds through the gain cache and (b) how many worker threads
//! run the batch — the cached-resolve contract and the seed-ordered
//! fan-out contract, checked end to end.

use fading_channel::{
    Channel, LossySinrChannel, RayleighSinrChannel, Reception, SinrChannel, SinrParams,
};
use fading_geom::{Deployment, Point};
use fading_sim::faults::{ChurnEvent, FaultPlan, GilbertElliott, Jammer, NoiseBurst};
use fading_sim::{montecarlo, Action, Protocol, RunResult, Simulation, TraceLevel};
use rand::rngs::SmallRng;
use rand::Rng;

/// Transmits with fixed probability; knocked out on any reception.
#[derive(Debug)]
struct Knockout {
    p: f64,
    active: bool,
}

impl Protocol for Knockout {
    fn act(&mut self, _round: u64, rng: &mut SmallRng) -> Action {
        if rng.gen_bool(self.p) {
            Action::Transmit
        } else {
            Action::Listen
        }
    }
    fn feedback(&mut self, _round: u64, reception: &Reception) {
        if reception.is_message() {
            self.active = false;
        }
    }
    fn is_active(&self) -> bool {
        self.active
    }
    fn name(&self) -> &'static str {
        "test-knockout"
    }
}

/// Runs one full trial batch: `trials` seeded runs of a 24-node knockout
/// protocol on the channel built by `make_channel`, with the gain cache
/// forced on or off.
fn run_batch<F>(make_channel: &F, cached: bool, threads: usize, trials: usize) -> Vec<RunResult>
where
    F: Fn() -> Box<dyn Channel> + Sync,
{
    montecarlo::run_trials(trials, threads, 1000, |seed| {
        let deployment = Deployment::uniform_square(24, 15.0, seed);
        let mut sim = Simulation::new(deployment, make_channel(), seed, |_| {
            Box::new(Knockout {
                p: 0.25,
                active: true,
            })
        });
        sim.set_gain_cache_enabled(cached);
        sim.set_trace_level(TraceLevel::Full);
        sim.run_until_resolved(20_000)
    })
}

/// The cross-product check for one channel: cache {on, off} × threads
/// {1, 8} must all produce the same `Vec<RunResult>`.
fn assert_cache_and_threads_invariant<F>(make_channel: F)
where
    F: Fn() -> Box<dyn Channel> + Sync,
{
    let trials = 12;
    let reference = run_batch(&make_channel, true, 1, trials);
    assert!(
        reference.iter().any(|r| r.resolved()),
        "batch never resolved; the scenario is too hard to be a useful oracle"
    );
    for &cached in &[true, false] {
        for &threads in &[1usize, 8] {
            let got = run_batch(&make_channel, cached, threads, trials);
            assert_eq!(
                got, reference,
                "results diverged at cached={cached}, threads={threads}"
            );
        }
    }
}

fn params() -> SinrParams {
    SinrParams::default_single_hop()
}

#[test]
fn sinr_results_invariant_under_cache_and_thread_count() {
    assert_cache_and_threads_invariant(|| Box::new(SinrChannel::new(params())));
}

#[test]
fn rayleigh_results_invariant_under_cache_and_thread_count() {
    assert_cache_and_threads_invariant(|| Box::new(RayleighSinrChannel::new(params())));
}

#[test]
fn lossy_results_invariant_under_cache_and_thread_count() {
    assert_cache_and_threads_invariant(|| {
        Box::new(LossySinrChannel::new(params(), 0.2).expect("valid drop_prob"))
    });
}

/// A representative kitchen-sink fault plan: duty-cycled budgeted jamming,
/// a noise burst, all three churn kinds, and Gilbert–Elliott burst loss.
fn stress_plan() -> FaultPlan {
    let power = SinrParams::default_single_hop().power() * 10.0;
    FaultPlan::new()
        .with_jammer(Jammer::new(Point::new(7.5, 7.5), power, 2, 6, 3, Some(60)).expect("valid"))
        .with_jammer(Jammer::continuous(Point::new(1.0, 14.0), power / 4.0, 10).expect("valid"))
        .with_noise_burst(NoiseBurst::new(5, 15, 4.0).expect("valid"))
        .with_churn(ChurnEvent::late_wake(4, 3).expect("valid"))
        .with_churn(ChurnEvent::crash(6, 0).expect("valid"))
        .with_churn(ChurnEvent::revive(12, 0).expect("valid"))
        .with_loss(GilbertElliott::new(0.15, 0.3, 0.02, 0.7).expect("valid"))
}

/// Like [`run_batch`], with the stress fault plan attached to every trial.
fn run_faulted_batch<F>(make_channel: &F, cached: bool, threads: usize, trials: usize) -> Vec<RunResult>
where
    F: Fn() -> Box<dyn Channel> + Sync,
{
    montecarlo::run_trials(trials, threads, 1000, |seed| {
        let deployment = Deployment::uniform_square(24, 15.0, seed);
        let mut sim = Simulation::new(deployment, make_channel(), seed, |_| {
            Box::new(Knockout {
                p: 0.25,
                active: true,
            })
        });
        sim.set_fault_plan(stress_plan()).expect("plan fits deployment");
        sim.set_gain_cache_enabled(cached);
        sim.set_trace_level(TraceLevel::Full);
        sim.run_until_resolved(20_000)
    })
}

/// The cache {on, off} × threads {1, 8} cross-product with fault injection
/// active: jamming, churn, noise bursts, and burst loss must all preserve
/// byte-determinism.
fn assert_faulted_cache_and_threads_invariant<F>(make_channel: F)
where
    F: Fn() -> Box<dyn Channel> + Sync,
{
    let trials = 12;
    let reference = run_faulted_batch(&make_channel, true, 1, trials);
    assert!(
        reference.iter().any(|r| r.resolved()),
        "faulted batch never resolved; the scenario is too hard to be a useful oracle"
    );
    for &cached in &[true, false] {
        for &threads in &[1usize, 8] {
            let got = run_faulted_batch(&make_channel, cached, threads, trials);
            assert_eq!(
                got, reference,
                "faulted results diverged at cached={cached}, threads={threads}"
            );
        }
    }
}

#[test]
fn faulted_sinr_results_invariant_under_cache_and_thread_count() {
    assert_faulted_cache_and_threads_invariant(|| Box::new(SinrChannel::new(params())));
}

#[test]
fn faulted_rayleigh_results_invariant_under_cache_and_thread_count() {
    assert_faulted_cache_and_threads_invariant(|| Box::new(RayleighSinrChannel::new(params())));
}

#[test]
fn faulted_lossy_results_invariant_under_cache_and_thread_count() {
    assert_faulted_cache_and_threads_invariant(|| {
        Box::new(LossySinrChannel::new(params(), 0.2).expect("valid drop_prob"))
    });
}

#[test]
fn attaching_a_fault_plan_does_not_disturb_unfaulted_streams() {
    // A plan with no loss model must leave the channel and node RNG
    // streams untouched: the empty-plan run and the no-plan run are
    // byte-identical (the dedicated fault RNG lane is never drawn from).
    let run = |attach_empty: bool| {
        let deployment = Deployment::uniform_square(24, 15.0, 3);
        let mut sim = Simulation::new(
            deployment,
            Box::new(RayleighSinrChannel::new(params())),
            3,
            |_| {
                Box::new(Knockout {
                    p: 0.25,
                    active: true,
                })
            },
        );
        if attach_empty {
            sim.set_fault_plan(FaultPlan::new()).expect("empty plan");
        }
        sim.set_trace_level(TraceLevel::Full);
        sim.run_until_resolved(20_000)
    };
    assert_eq!(run(false), run(true));
}

#[test]
fn simulation_exposes_cache_state() {
    let deployment = Deployment::uniform_square(16, 10.0, 7);
    let channel = SinrChannel::new(params());
    let mut sim = Simulation::new(deployment, Box::new(channel), 7, |_| {
        Box::new(Knockout {
            p: 0.25,
            active: true,
        })
    });
    assert!(sim.gain_cache_active(), "SINR channel should build a cache");
    assert_eq!(sim.gain_cache().map(|c| c.len()), Some(16));
    sim.set_gain_cache_enabled(false);
    assert!(!sim.gain_cache_active());
    assert!(sim.gain_cache().is_some(), "disabling keeps the cache built");
}

/// Regression: the Rayleigh channel's n×n gain cache is memory-bound past
/// LLC and *slower* than recomputing deterministic gains with the batched
/// kernels (measured 43.1 ms cached vs 33.4 ms uncached per round at
/// n = 4096). The simulator must respect the channel's
/// `gain_cache_profitable` policy: Rayleigh keeps the cache up to
/// `RAYLEIGH_CACHE_PROFITABLE_NODES` and bypasses it above, while the
/// deterministic SINR channel keeps it at every size its own guard admits.
/// Bypassing never changes results (cached ≡ uncached bit-exactly), which
/// `rayleigh_results_invariant_under_cache_and_thread_count` pins.
#[test]
fn rayleigh_bypasses_gain_cache_above_profitability_threshold() {
    use fading_channel::RAYLEIGH_CACHE_PROFITABLE_NODES;

    let make_sim = |channel: Box<dyn Channel>, n: usize| {
        let deployment = Deployment::uniform_square(n, 40.0, 11);
        Simulation::new(deployment, channel, 11, |_| {
            Box::new(Knockout {
                p: 0.25,
                active: true,
            })
        })
    };

    // At and below the threshold the cache still wins and is kept.
    let small = make_sim(Box::new(RayleighSinrChannel::new(params())), 16);
    assert!(small.gain_cache_active(), "small Rayleigh should cache");

    // Above it the simulator must not even build the cache...
    let n = RAYLEIGH_CACHE_PROFITABLE_NODES + 1;
    let big = make_sim(Box::new(RayleighSinrChannel::new(params())), n);
    assert!(
        big.gain_cache().is_none(),
        "Rayleigh cache should be bypassed at n = {n}"
    );
    assert!(!big.gain_cache_active());

    // ...while the deterministic channel keeps caching at the same size
    // (the policy is per-channel, not global).
    let sinr = make_sim(Box::new(SinrChannel::new(params())), n);
    assert!(
        sinr.gain_cache_active(),
        "SINR should still cache at n = {n}"
    );
}

#[test]
fn active_interference_shrinks_as_nodes_knock_out() {
    let deployment = Deployment::uniform_square(24, 15.0, 3);
    let channel = SinrChannel::new(params());
    let mut sim = Simulation::new(deployment, Box::new(channel), 17, |_| {
        Box::new(Knockout {
            p: 0.25,
            active: true,
        })
    });
    let initial: Vec<f64> = (0..sim.len())
        .map(|v| sim.active_interference_at(v).expect("cache exists"))
        .collect();
    assert!(initial.iter().all(|&t| t > 0.0));

    let result = sim.run_until_resolved(20_000);
    assert!(result.resolved());
    assert!(sim.num_active() < sim.len(), "someone must knock out");
    for (v, &was) in initial.iter().enumerate() {
        let now = sim.active_interference_at(v).expect("cache exists");
        assert!(now <= was, "interference at {v} grew: {now} > {was}");
    }
    assert_eq!(sim.active_interference_at(usize::MAX), None);
}

/// Like [`run_batch`]/[`run_faulted_batch`], but exercising the far-field
/// engine: gain cache disabled so the farfield/exact comparison is pure,
/// fault plan optional.
fn run_farfield_batch<F>(
    make_channel: &F,
    farfield: bool,
    threads: usize,
    trials: usize,
    faulted: bool,
) -> Vec<RunResult>
where
    F: Fn() -> Box<dyn Channel> + Sync,
{
    montecarlo::run_trials(trials, threads, 1000, move |seed| {
        let deployment = Deployment::uniform_square(24, 15.0, seed);
        let mut sim = Simulation::new(deployment, make_channel(), seed, |_| {
            Box::new(Knockout {
                p: 0.25,
                active: true,
            })
        });
        if faulted {
            sim.set_fault_plan(stress_plan()).expect("plan fits deployment");
        }
        sim.set_gain_cache_enabled(false);
        sim.set_farfield_enabled(farfield);
        sim.set_trace_level(TraceLevel::Full);
        sim.run_until_resolved(20_000)
    })
}

/// The engine-tier cross-product: farfield {on, off} × threads {1, 8} ×
/// fault plan {none, stress} must all produce byte-identical results —
/// the end-to-end restatement of the decision-exactness contract, with
/// knockout churn keeping the tile occupancy maintenance honest.
fn assert_farfield_and_threads_invariant<F>(make_channel: F)
where
    F: Fn() -> Box<dyn Channel> + Sync,
{
    let trials = 12;
    for &faulted in &[false, true] {
        let reference = run_farfield_batch(&make_channel, false, 1, trials, faulted);
        assert!(
            reference.iter().any(|r| r.resolved()),
            "batch (faulted={faulted}) never resolved; too hard to be a useful oracle"
        );
        for &farfield in &[true, false] {
            for &threads in &[1usize, 8] {
                let got = run_farfield_batch(&make_channel, farfield, threads, trials, faulted);
                assert_eq!(
                    got, reference,
                    "results diverged at farfield={farfield}, threads={threads}, faulted={faulted}"
                );
            }
        }
    }
}

#[test]
fn sinr_results_invariant_under_farfield_and_thread_count() {
    assert_farfield_and_threads_invariant(|| Box::new(SinrChannel::new(params())));
}

#[test]
fn rayleigh_results_invariant_under_farfield_and_thread_count() {
    // Rayleigh builds no engine (per-pair fading draws pin the rng
    // schedule); enabling the tier must be a clean no-op.
    assert_farfield_and_threads_invariant(|| Box::new(RayleighSinrChannel::new(params())));
}

#[test]
fn lossy_results_invariant_under_farfield_and_thread_count() {
    assert_farfield_and_threads_invariant(|| {
        Box::new(LossySinrChannel::new(params(), 0.2).expect("valid drop_prob"))
    });
}

#[test]
fn simulation_exposes_farfield_state() {
    let deployment = Deployment::uniform_square(16, 10.0, 7);
    let channel = SinrChannel::new(params());
    let mut sim = Simulation::new(deployment, Box::new(channel), 7, |_| {
        Box::new(Knockout {
            p: 0.25,
            active: true,
        })
    });
    // A 16-node SINR sim builds both tiers, but the gain cache wins the
    // default at this size: farfield is built yet dormant.
    assert!(sim.gain_cache_active());
    assert!(!sim.farfield_active(), "cache tier should win at n=16");
    assert!(sim.farfield_engine().is_some(), "engine is built regardless");
    sim.set_farfield_enabled(true);
    assert!(sim.farfield_active());
    assert_eq!(sim.farfield_engine().map(|e| e.num_active()), Some(16));
    assert_eq!(
        sim.farfield_stats().map(|s| s.rounds),
        Some(0),
        "no rounds resolved yet"
    );
    sim.set_farfield_enabled(false);
    assert!(!sim.farfield_active());
    assert!(sim.farfield_engine().is_some(), "disabling keeps it built");
}

#[test]
fn farfield_occupancy_shrinks_as_nodes_knock_out() {
    let deployment = Deployment::uniform_square(24, 15.0, 3);
    let channel = SinrChannel::new(params());
    let mut sim = Simulation::new(deployment, Box::new(channel), 17, |_| {
        Box::new(Knockout {
            p: 0.25,
            active: true,
        })
    });
    sim.set_gain_cache_enabled(false);
    sim.set_farfield_enabled(true);
    sim.set_trace_level(TraceLevel::Counts);
    assert_eq!(sim.farfield_engine().map(|e| e.num_active()), Some(24));

    let result = sim.run_until_resolved(20_000);
    assert!(result.resolved());
    assert!(sim.num_active() < sim.len(), "someone must knock out");

    let engine = sim.farfield_engine().expect("engine stays built");
    assert_eq!(
        engine.num_active(),
        sim.num_active(),
        "tile occupancy must track the simulation's live-node count"
    );
    let per_tile_sum: usize = (0..engine.tiles().num_tiles())
        .map(|t| engine.active_in_tile(t))
        .sum();
    assert_eq!(per_tile_sum, engine.num_active());
    let stats = sim.farfield_stats().expect("engine stays built");
    assert!(stats.rounds > 0, "the engine should have served rounds");
    let listeners_served: u64 = result
        .trace()
        .rounds()
        .iter()
        .map(|r| (r.active_before - r.transmitters) as u64)
        .sum();
    assert_eq!(
        stats.listeners_resolved(),
        listeners_served,
        "every listener decision lands in exactly one stats bucket"
    );
    assert_eq!(
        stats.fast_decisions() + stats.noise_floor_silences + stats.exact_fallbacks(),
        stats.listeners_resolved(),
        "rung counters must reconcile with listeners resolved"
    );
}

#[test]
fn radio_channel_has_no_cache_but_runs_identically() {
    use fading_channel::RadioChannel;
    let run = |cached: bool| {
        let deployment = Deployment::uniform_square(12, 10.0, 5);
        let mut sim = Simulation::new(deployment, Box::new(RadioChannel::new()), 5, |_| {
            Box::new(Knockout {
                p: 0.25,
                active: true,
            })
        });
        sim.set_gain_cache_enabled(cached);
        sim.set_trace_level(TraceLevel::Full);
        sim.run_until_resolved(20_000)
    };
    let a = run(true);
    let b = run(false);
    assert_eq!(a, b);

    let deployment = Deployment::uniform_square(12, 10.0, 5);
    let sim = Simulation::new(deployment, Box::new(RadioChannel::new()), 5, |_| {
        Box::new(Knockout {
            p: 0.25,
            active: true,
        })
    });
    assert!(!sim.gain_cache_active());
    assert_eq!(sim.active_interference_at(0), None);
}
