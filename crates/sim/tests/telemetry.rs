//! Telemetry integration suite: the determinism matrix (sink on/off ×
//! cache on/off × threads 1/8, clean and faulted, across channel models),
//! JSONL round-trips, the `active_before` late-wake regression, the trace
//! record cap, and active-set replay.

use fading_channel::{
    Channel, LossySinrChannel, RadioChannel, RayleighSinrChannel, SinrChannel, SinrParams,
};
use fading_geom::{Deployment, Point};
use fading_sim::faults::{ChurnEvent, FaultPlan, GilbertElliott, Jammer, NoiseBurst};
use fading_sim::telemetry::{jsonl, replay_active_sets};
use fading_sim::{
    montecarlo, Action, MemorySink, NoopSink, NodeId, Protocol, Reception, RunResult, Simulation,
    TelemetryDetail, Trace, TraceLevel,
};
use rand::rngs::SmallRng;
use rand::Rng;

/// Transmits with fixed probability; knocked out on reception.
#[derive(Debug)]
struct Knockout {
    p: f64,
    active: bool,
}

impl Protocol for Knockout {
    fn act(&mut self, _round: u64, rng: &mut SmallRng) -> Action {
        if rng.gen_bool(self.p) {
            Action::Transmit
        } else {
            Action::Listen
        }
    }
    fn feedback(&mut self, _round: u64, reception: &Reception) {
        if reception.is_message() {
            self.active = false;
        }
    }
    fn is_active(&self) -> bool {
        self.active
    }
    fn name(&self) -> &'static str {
        "test-knockout"
    }
}

/// Always transmits (never resolves with ≥ 2 nodes on the radio channel).
#[derive(Debug)]
struct AlwaysTx;

impl Protocol for AlwaysTx {
    fn act(&mut self, _round: u64, _rng: &mut SmallRng) -> Action {
        Action::Transmit
    }
    fn feedback(&mut self, _round: u64, _reception: &Reception) {}
    fn is_active(&self) -> bool {
        true
    }
    fn name(&self) -> &'static str {
        "test-always"
    }
}

fn make_channel(name: &str) -> Box<dyn Channel> {
    let params = SinrParams::default_single_hop();
    match name {
        "sinr" => Box::new(SinrChannel::new(params)),
        "rayleigh" => Box::new(RayleighSinrChannel::new(params)),
        "lossy" => Box::new(LossySinrChannel::new(params, 0.3).unwrap()),
        "radio" => Box::new(RadioChannel::new()),
        other => panic!("unknown channel {other}"),
    }
}

/// A plan exercising every fault type at once (jamming, noise burst,
/// crash + revive, late wake, Gilbert–Elliott loss).
fn everything_plan() -> FaultPlan {
    let power = SinrParams::default_single_hop().power() * 10.0;
    FaultPlan::new()
        .with_jammer(Jammer::new(Point::new(6.0, 6.0), power, 3, 5, 2, Some(20)).unwrap())
        .with_noise_burst(NoiseBurst::new(4, 6, 3.0).unwrap())
        .with_churn(ChurnEvent::crash(5, 0).unwrap())
        .with_churn(ChurnEvent::revive(9, 0).unwrap())
        .with_churn(ChurnEvent::late_wake(3, 1).unwrap())
        .with_loss(GilbertElliott::new(0.2, 0.3, 0.05, 0.8).unwrap())
}

#[derive(Clone, Copy, Debug)]
enum Sink {
    None,
    Noop,
    Memory(TelemetryDetail),
}

fn run_matrix_cell(
    channel: &str,
    seed: u64,
    cache_on: bool,
    sink: Sink,
    faulted: bool,
) -> (RunResult, Option<MemorySink>) {
    let deployment = Deployment::uniform_square(20, 12.0, seed);
    let mut sim = Simulation::new(deployment, make_channel(channel), seed, |_| {
        Box::new(Knockout {
            p: 0.25,
            active: true,
        })
    });
    if faulted {
        sim.set_fault_plan(everything_plan()).unwrap();
    }
    sim.set_gain_cache_enabled(cache_on);
    sim.set_trace_level(TraceLevel::Full);
    match sink {
        Sink::None => {}
        Sink::Noop => sim.set_telemetry_sink(Box::new(NoopSink)),
        Sink::Memory(detail) => sim.set_telemetry_sink(Box::new(MemorySink::new(detail))),
    }
    let result = sim.run_until_resolved(5_000);
    let recovered = sim.take_telemetry_sink().and_then(MemorySink::recover);
    (result, recovered)
}

/// The core non-perturbation contract: for every channel model, fault
/// setting, cache setting, and sink detail level, the `RunResult` is
/// byte-identical to the sink-free cached baseline.
#[test]
fn telemetry_never_perturbs_any_channel_or_fault_setting() {
    for channel in ["sinr", "rayleigh", "lossy", "radio"] {
        for faulted in [false, true] {
            let (baseline, _) = run_matrix_cell(channel, 42, true, Sink::None, faulted);
            for cache_on in [true, false] {
                for sink in [
                    Sink::None,
                    Sink::Noop,
                    Sink::Memory(TelemetryDetail::counts()),
                    Sink::Memory(TelemetryDetail::ids()),
                    Sink::Memory(TelemetryDetail::full()),
                ] {
                    let (result, _) = run_matrix_cell(channel, 42, cache_on, sink, faulted);
                    assert_eq!(
                        result, baseline,
                        "{channel} faulted={faulted} cache={cache_on} sink={sink:?}: \
                         telemetry or cache setting perturbed the run"
                    );
                }
            }
        }
    }
}

/// Monte-Carlo with per-trial sinks: the merged (result, events) stream is
/// identical across thread counts, and results match sink-free trials.
#[test]
fn montecarlo_telemetry_is_thread_invariant() {
    let trial = |seed: u64| {
        let deployment = Deployment::uniform_square(16, 10.0, seed);
        let mut sim = Simulation::new(deployment, make_channel("sinr"), seed, |_| {
            Box::new(Knockout {
                p: 0.25,
                active: true,
            })
        });
        sim.set_fault_plan(everything_plan()).unwrap();
        sim.set_telemetry_sink(Box::new(MemorySink::new(TelemetryDetail::full())));
        let result = sim.run_until_resolved(5_000);
        let events = MemorySink::recover(sim.take_telemetry_sink().unwrap())
            .unwrap()
            .into_events();
        (result, events)
    };
    let one = montecarlo::run_trials_with(8, 1, 300, trial);
    let eight = montecarlo::run_trials_with(8, 8, 300, trial);
    assert_eq!(one, eight, "thread count must not affect results or event streams");

    let plain = montecarlo::run_trials(8, 4, 300, |seed| {
        let deployment = Deployment::uniform_square(16, 10.0, seed);
        let mut sim = Simulation::new(deployment, make_channel("sinr"), seed, |_| {
            Box::new(Knockout {
                p: 0.25,
                active: true,
            })
        });
        sim.set_fault_plan(everything_plan()).unwrap();
        sim.run_until_resolved(5_000)
    });
    for ((with_sink, events), without_sink) in one.iter().zip(&plain) {
        assert_eq!(with_sink, without_sink, "sink must not perturb Monte-Carlo trials");
        assert_eq!(events.len() as u64, with_sink.rounds_executed());
    }
}

/// Full-detail event streams survive a JSONL file round-trip bit-exactly,
/// both as a flat stream and as tagged trial blocks.
#[test]
fn jsonl_files_round_trip_bit_exactly() {
    let (result, sink) = run_matrix_cell("sinr", 7, true, Sink::Memory(TelemetryDetail::full()), true);
    let events = sink.unwrap().into_events();
    assert_eq!(events.len() as u64, result.rounds_executed());
    assert!(
        events.iter().any(|e| !e.sinr.is_empty()),
        "faulted SINR run must produce breakdowns to make the round-trip meaningful"
    );

    let dir = std::env::temp_dir();
    let flat = dir.join(format!("fading-telemetry-{}-flat.jsonl", std::process::id()));
    jsonl::write_events_to_path(&flat, &events).unwrap();
    let back = jsonl::read_events_from_path(&flat).unwrap();
    assert_eq!(back, events, "flat stream must round-trip");
    std::fs::remove_file(&flat).ok();

    let blocks = vec![
        jsonl::TrialBlock {
            trial: 0,
            seed: 7,
            events: events.clone(),
        },
        jsonl::TrialBlock {
            trial: 1,
            seed: 8,
            events: Vec::new(),
        },
    ];
    let tagged = dir.join(format!("fading-telemetry-{}-blocks.jsonl", std::process::id()));
    jsonl::write_trial_blocks_to_path(&tagged, &blocks).unwrap();
    let back = jsonl::read_trial_blocks_from_path(&tagged).unwrap();
    assert_eq!(back, blocks, "trial blocks must round-trip");
    std::fs::remove_file(&tagged).ok();
}

fn line_deployment(n: usize) -> Deployment {
    Deployment::from_points(
        (0..n)
            .map(|i| Point::new(i as f64 * 2.0, 0.0))
            .collect::<Vec<_>>(),
    )
    .unwrap()
}

/// Regression for the `active_before` accounting bug: with a late-wake
/// plan, sleeping nodes are *active but not participating*, and the trace
/// used to count them. `active_before` is pinned to the participant count
/// (post-churn, awake), while the telemetry event additionally reports the
/// raw pre-churn active count.
#[test]
fn late_wake_active_before_counts_participants_only() {
    let build = |cache_on: bool| {
        let mut sim = Simulation::new(line_deployment(4), make_channel("radio"), 0, |_| {
            Box::new(AlwaysTx)
        });
        let plan = FaultPlan::new()
            .with_churn(ChurnEvent::late_wake(4, 1).unwrap())
            .with_churn(ChurnEvent::late_wake(4, 2).unwrap())
            .with_churn(ChurnEvent::late_wake(4, 3).unwrap());
        sim.set_fault_plan(plan).unwrap();
        sim.set_gain_cache_enabled(cache_on);
        sim.set_trace_level(TraceLevel::Counts);
        sim.set_telemetry_sink(Box::new(MemorySink::new(TelemetryDetail::counts())));
        sim
    };
    for cache_on in [true, false] {
        let mut sim = build(cache_on);
        let result = sim.run_until_resolved(1);
        let record = &result.trace().rounds()[0];
        // Only node 0 is awake in round 1: one participant, who transmits
        // solo and resolves. The pre-fix code reported 4 here.
        assert_eq!(record.active_before, 1, "cache={cache_on}");
        assert_eq!(record.transmitters, 1);
        assert_eq!(result.resolved_at(), Some(1));

        let events = MemorySink::recover(sim.take_telemetry_sink().unwrap())
            .unwrap()
            .into_events();
        assert_eq!(events[0].participants, 1);
        assert_eq!(events[0].transmitters, 1);
        assert_eq!(events[0].listeners, 0);
        assert_eq!(
            events[0].active_pre_churn, 4,
            "sleepers are still active — the event keeps both views"
        );
        assert!(events[0].resolved);
        assert_eq!(events[0].winner, Some(0));
    }
}

/// Without late-wake churn, the participant semantics coincide with the
/// old start-of-round active count — pinned here so the redefinition
/// cannot silently change unfaulted traces.
#[test]
fn active_before_unchanged_without_late_wake() {
    let run = |faulted: bool| {
        let deployment = Deployment::uniform_square(20, 12.0, 5);
        let mut sim = Simulation::new(deployment, make_channel("sinr"), 5, |_| {
            Box::new(Knockout {
                p: 0.25,
                active: true,
            })
        });
        if faulted {
            // Crash/revive churn but NO late wakes: every active node is
            // awake, so participants == post-churn active count.
            let plan = FaultPlan::new()
                .with_churn(ChurnEvent::crash(3, 0).unwrap())
                .with_churn(ChurnEvent::revive(6, 0).unwrap());
            sim.set_fault_plan(plan).unwrap();
        }
        sim.set_trace_level(TraceLevel::Counts);
        sim.set_telemetry_sink(Box::new(MemorySink::new(TelemetryDetail::counts())));
        let result = sim.run_until_resolved(5_000);
        let events = MemorySink::recover(sim.take_telemetry_sink().unwrap())
            .unwrap()
            .into_events();
        (result, events)
    };
    for faulted in [false, true] {
        let (result, events) = run(faulted);
        assert_eq!(events.len(), result.trace().len());
        for (record, event) in result.trace().rounds().iter().zip(&events) {
            assert_eq!(record.active_before, event.participants, "faulted={faulted}");
            assert_eq!(
                event.participants,
                event.transmitters + event.listeners,
                "faulted={faulted}"
            );
            // No late-wakers ⇒ every post-churn active node participates.
            let post_churn = if event.round <= 1 || faulted {
                // active_pre_churn already reflects the previous round's
                // knockouts; churn this round shifts it by the applied
                // events, which participants must match.
                None
            } else {
                Some(event.active_pre_churn)
            };
            if let Some(expected) = post_churn {
                assert_eq!(event.participants, expected, "faulted={faulted}");
            }
        }
    }
}

/// Regression for unbounded trace growth: a run that exhausts its round
/// cap at `TraceLevel::Full` stops recording at the trace capacity,
/// keeps the *first* records, and reports `truncated`.
#[test]
fn trace_cap_bounds_round_cap_exhausted_runs() {
    let mut sim = Simulation::new(line_deployment(4), make_channel("radio"), 0, |_| {
        Box::new(AlwaysTx)
    });
    sim.set_trace_level(TraceLevel::Full);
    sim.set_trace_capacity(10);
    assert_eq!(sim.trace_capacity(), 10);
    let result = sim.run_until_resolved(100);
    assert!(!result.resolved(), "AlwaysTx on radio must exhaust the cap");
    assert_eq!(result.rounds_executed(), 100);
    assert_eq!(result.trace().len(), 10, "recording must stop at the cap");
    assert!(result.trace().truncated());
    let rounds: Vec<u64> = result.trace().rounds().iter().map(|r| r.round).collect();
    assert_eq!(rounds, (1..=10).collect::<Vec<u64>>(), "keep-first semantics");

    // Under the (documented) default cap nothing is truncated.
    assert_eq!(Trace::DEFAULT_RECORD_CAP, 65_536);
    let mut sim = Simulation::new(line_deployment(4), make_channel("radio"), 0, |_| {
        Box::new(AlwaysTx)
    });
    sim.set_trace_level(TraceLevel::Full);
    let result = sim.run_until_resolved(100);
    assert_eq!(result.trace().len(), 100);
    assert!(!result.trace().truncated());
}

/// `replay_active_sets` reconstructs exactly the per-round active sets an
/// observer loop would have snapshotted.
#[test]
fn replay_matches_observed_active_sets() {
    let deployment = Deployment::uniform_square(20, 12.0, 11);
    let mut sim = Simulation::new(deployment, make_channel("sinr"), 11, |_| {
        Box::new(Knockout {
            p: 0.25,
            active: true,
        })
    });
    sim.set_fault_plan(everything_plan()).unwrap();
    sim.set_telemetry_sink(Box::new(MemorySink::new(TelemetryDetail::ids())));
    let mut observed: Vec<Vec<NodeId>> = Vec::new();
    let result = sim.run_until_resolved_with(5_000, |s| observed.push(s.active_ids()));
    let events = MemorySink::recover(sim.take_telemetry_sink().unwrap())
        .unwrap()
        .into_events();
    assert_eq!(observed.len(), events.len() + 1);
    let replayed = replay_active_sets(&observed[0], &events);
    assert_eq!(replayed, observed, "replay must match the observer loop");
    assert!(result.resolved());
}

/// Internal consistency of full-detail faulted event streams, plus a
/// requirement that every fault signature (noise burst, jamming, churn)
/// shows up somewhere across the sampled seeds.
#[test]
fn event_stream_is_internally_consistent() {
    let (mut saw_noise, mut saw_jam, mut saw_churn) = (false, false, false);
    for seed in [13u64, 17, 23, 29, 31] {
        let (result, sink) =
            run_matrix_cell("sinr", seed, true, Sink::Memory(TelemetryDetail::full()), true);
        let events = sink.unwrap().into_events();
        assert_eq!(events.len() as u64, result.rounds_executed());
        for (k, ev) in events.iter().enumerate() {
            assert_eq!(ev.round, k as u64 + 1, "rounds must be contiguous from 1");
            assert_eq!(ev.participants, ev.transmitters + ev.listeners);
            assert_eq!(ev.transmitter_ids.len(), ev.transmitters);
            assert_eq!(ev.knocked_out_ids.len(), ev.knocked_out);
            assert_eq!(
                ev.churn_applied,
                ev.crashed_ids.len() + ev.revived_ids.len(),
                "churn_applied counts effective crashes + revivals"
            );
            assert_eq!(ev.sinr.len(), ev.listeners, "one breakdown per listener");
            assert_eq!(ev.resolved, ev.transmitters == 1);
            if ev.resolved {
                assert_eq!(ev.winner, Some(ev.transmitter_ids[0]));
            } else {
                assert_eq!(ev.winner, None);
            }
            assert!(ev.noise_scale >= 1.0);
            assert!(ev.jam_power >= 0.0);
            for b in &ev.sinr {
                assert_eq!(b.decoded, b.margin >= 0.0);
                assert!(b.signal >= 0.0 && b.interference >= 0.0 && b.extra >= 0.0);
            }
            saw_noise |= ev.noise_scale > 1.0;
            saw_jam |= ev.jam_power > 0.0;
            saw_churn |= ev.churn_applied > 0;
        }
        if result.resolved() {
            let resolving = events.last().unwrap();
            assert!(resolving.resolved, "seed {seed}");
            assert_eq!(resolving.winner, result.winner(), "seed {seed}");
        }
    }
    assert!(saw_noise, "no sampled run entered the noise burst window");
    assert!(saw_jam, "no sampled run recorded jammer activity");
    assert!(saw_churn, "no sampled run applied a crash/revive event");
}

/// Metrics collect without perturbing the run and agree with the result.
#[test]
fn metrics_registry_agrees_with_run_result() {
    let run = |with_metrics: bool| {
        let deployment = Deployment::uniform_square(20, 12.0, 21);
        let mut sim = Simulation::new(deployment, make_channel("sinr"), 21, |_| {
            Box::new(Knockout {
                p: 0.25,
                active: true,
            })
        });
        sim.set_metrics_enabled(with_metrics);
        sim.set_telemetry_sink(Box::new(MemorySink::new(TelemetryDetail::full())));
        let result = sim.run_until_resolved(5_000);
        let metrics = sim.take_metrics();
        (result, metrics)
    };
    let (plain, none) = run(false);
    let (timed, metrics) = run(true);
    assert!(none.is_none());
    assert_eq!(plain, timed, "metrics must not perturb the run");
    let metrics = metrics.unwrap();
    assert_eq!(metrics.rounds(), timed.rounds_executed());
    assert_eq!(metrics.transmissions(), timed.total_transmissions());
    assert_eq!(metrics.knockouts_per_round().count(), timed.rounds_executed());
    assert!(
        metrics.interference().count() > 0,
        "full-detail sink routes SINR breakdowns into the interference histogram"
    );
    assert!(metrics.round_latency_nanos().count() > 0);
    let summary = metrics.summary();
    assert!(summary.contains("rounds="), "{summary}");
}
