//! Observability integration suite: span nesting under panics and
//! out-of-order guard drops, exporter round-trips fed by a *real* traced
//! simulation run, engine-counter reconciliation on live runs, the
//! tracer-attachment non-perturbation contract, Monte-Carlo metrics
//! merging, and a property test pinning `Histogram::merge` to
//! concatenated recording.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use fading_channel::{Channel, RadioChannel, SinrChannel, SinrParams};
use fading_geom::Deployment;
use fading_sim::obs::export::{chrome, flamegraph, prometheus};
use fading_sim::telemetry::jsonl;
use fading_sim::telemetry::{Histogram, MetricsRegistry};
use fading_sim::{
    montecarlo, Action, MemorySink, Protocol, Reception, ResolvePath, Simulation, TelemetryDetail,
    TraceLevel, Tracer,
};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::Rng;

/// Transmits with fixed probability; knocked out on reception.
#[derive(Debug)]
struct Knockout {
    p: f64,
    active: bool,
}

impl Protocol for Knockout {
    fn act(&mut self, _round: u64, rng: &mut SmallRng) -> Action {
        if rng.gen_bool(self.p) {
            Action::Transmit
        } else {
            Action::Listen
        }
    }
    fn feedback(&mut self, _round: u64, reception: &Reception) {
        if reception.is_message() {
            self.active = false;
        }
    }
    fn is_active(&self) -> bool {
        self.active
    }
    fn name(&self) -> &'static str {
        "test-knockout"
    }
}

fn sinr_channel() -> Box<dyn Channel> {
    Box::new(SinrChannel::new(SinrParams::default_single_hop()))
}

fn knockout_sim(n: usize, seed: u64, channel: Box<dyn Channel>) -> Simulation {
    let deployment = Deployment::uniform_square(n, 12.0, seed);
    Simulation::new(deployment, channel, seed, |_| {
        Box::new(Knockout {
            p: 0.25,
            active: true,
        })
    })
}

// ---------------------------------------------------------------------------
// Span nesting under early returns, panics, and out-of-order drops.
// ---------------------------------------------------------------------------

#[test]
fn early_return_closes_spans_in_order() {
    let tracer = Tracer::new();
    fn work(tracer: &Arc<Tracer>, bail: bool) -> u32 {
        let _outer = tracer.span("outer");
        let _inner = tracer.span("inner");
        if bail {
            return 1; // both guards drop here, inner first
        }
        2
    }
    assert_eq!(work(&tracer, true), 1);
    let spans = tracer.finished_spans();
    assert_eq!(spans.len(), 2);
    assert_eq!(tracer.open_spans(), 0);
    let inner = spans.iter().find(|s| s.name == "inner").unwrap();
    let outer = spans.iter().find(|s| s.name == "outer").unwrap();
    assert_eq!(inner.parent, Some(outer.id));
    assert!(inner.end_ns <= outer.end_ns);
}

#[test]
fn panic_inside_span_unwinds_cleanly_and_keeps_parent_stack_usable() {
    let tracer = Tracer::new();
    let _outer = tracer.span("outer");
    let result = catch_unwind(AssertUnwindSafe(|| {
        let _doomed = tracer.span("doomed");
        let _nested = tracer.span("nested");
        panic!("boom");
    }));
    assert!(result.is_err());
    // The unwind dropped both guards; only `outer` should remain open, and
    // new spans must still nest under it.
    assert_eq!(tracer.open_spans(), 1);
    assert_eq!(tracer.current_depth(), 1);
    {
        let _after = tracer.span("after");
        assert_eq!(tracer.current_depth(), 2);
    }
    drop(_outer);
    let spans = tracer.finished_spans();
    assert_eq!(spans.len(), 4);
    let after = spans.iter().find(|s| s.name == "after").unwrap();
    let outer = spans.iter().find(|s| s.name == "outer").unwrap();
    assert_eq!(
        after.parent,
        Some(outer.id),
        "post-panic spans must nest under the survivor, not the unwound frames"
    );
}

#[test]
fn out_of_order_guard_drop_does_not_corrupt_parent_stack() {
    let tracer = Tracer::new();
    let a = tracer.span("a");
    let b = tracer.span("b");
    let c = tracer.span("c");
    // Drop the *middle* guard first: `c` is still open, so closing `b`
    // must also close `c` (a frame cannot outlive its parent) rather than
    // leave the stack pointing at freed frames.
    drop(b);
    assert_eq!(tracer.current_depth(), 1, "only `a` should remain open");
    // `c`'s guard is now stale; dropping it must be a no-op.
    drop(c);
    drop(a);
    let spans = tracer.finished_spans();
    assert_eq!(spans.len(), 3);
    assert_eq!(tracer.open_spans(), 0);
    let b_rec = spans.iter().find(|s| s.name == "b").unwrap();
    let c_rec = spans.iter().find(|s| s.name == "c").unwrap();
    assert_eq!(
        c_rec.end_ns, b_rec.end_ns,
        "orphaned child is closed at its parent's end time"
    );
}

// ---------------------------------------------------------------------------
// Exporters fed by a real traced run.
// ---------------------------------------------------------------------------

/// Runs a traced simulation and returns the tracer with its spans.
fn traced_run() -> Arc<Tracer> {
    let tracer = Tracer::new();
    let mut sim = knockout_sim(20, 42, sinr_channel());
    sim.set_tracer(Arc::clone(&tracer));
    let result = sim.run_until_resolved(5_000);
    assert!(result.resolved());
    tracer
}

#[test]
fn real_run_spans_nest_step_phases_and_round_trip_through_chrome_trace() {
    let tracer = traced_run();
    let spans = tracer.finished_spans();
    assert_eq!(tracer.open_spans(), 0, "run left spans open");
    let steps: Vec<_> = spans.iter().filter(|s| s.name == "step").collect();
    assert!(!steps.is_empty());
    for name in ["churn", "act", "resolve", "feedback"] {
        let phase = spans
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("no {name:?} span recorded"));
        let parent = phase.parent.expect("phase spans nest under step");
        assert!(
            steps.iter().any(|s| s.id == parent),
            "{name:?} span's parent is not a step span"
        );
    }
    // The n=20 SINR sim serves rounds through the gain cache, and the tier
    // span says so.
    assert!(spans.iter().any(|s| s.name == "resolve.gain_cache"));
    // Chrome trace round trip is bit-exact on the real spans.
    let back = chrome::spans_from_chrome_trace(&chrome::spans_to_chrome_trace(&spans)).unwrap();
    assert_eq!(back, spans);
}

#[test]
fn real_run_spans_round_trip_through_collapsed_flamegraph() {
    let tracer = traced_run();
    let spans = tracer.finished_spans();
    let collapsed = flamegraph::collapse_spans(&spans);
    assert!(collapsed.iter().any(|(stack, _)| stack == "step"));
    assert!(collapsed
        .iter()
        .any(|(stack, _)| stack == "step;resolve;resolve.gain_cache"));
    // Self-times sum to total root duration.
    let total: u64 = collapsed.iter().map(|(_, ns)| ns).sum();
    let roots: u64 = spans
        .iter()
        .filter(|s| s.parent.is_none())
        .map(|s| s.duration_ns())
        .sum();
    assert_eq!(total, roots, "self-times must partition root wall time");
    let back = flamegraph::collapsed_from_text(&flamegraph::spans_to_collapsed(&spans)).unwrap();
    assert_eq!(back, collapsed);
}

#[test]
fn real_run_counters_round_trip_through_prometheus_and_jsonl() {
    let mut sim = knockout_sim(24, 7, sinr_channel());
    sim.set_gain_cache_enabled(false);
    sim.set_farfield_enabled(true);
    let result = sim.run_until_resolved(5_000);
    assert!(result.resolved());
    let counters = sim.engine_counters();
    assert!(counters.rounds > 0);
    assert!(counters.farfield.listeners_resolved() > 0);

    let prom = prometheus::counters_to_prometheus(&counters);
    let from_prom = prometheus::counters_from_prometheus(&prom).unwrap();
    assert_eq!(from_prom, counters, "Prometheus round trip must be exact");

    let line = jsonl::counters_to_json(&counters);
    let from_json = jsonl::counters_from_json(&line).unwrap();
    assert_eq!(from_json, counters, "JSONL round trip must be exact");
}

#[test]
fn real_run_metrics_registry_round_trips_through_prometheus() {
    let mut sim = knockout_sim(20, 11, sinr_channel());
    sim.set_metrics_enabled(true);
    sim.set_telemetry_sink(Box::new(MemorySink::new(TelemetryDetail::full())));
    let result = sim.run_until_resolved(5_000);
    assert!(result.resolved());
    let metrics = sim.take_metrics().expect("metrics were enabled");
    assert!(metrics.rounds() > 0);
    let text = prometheus::registry_to_prometheus(&metrics);
    let latency = prometheus::histogram_from_prometheus(&text, "fading_round_latency_nanos")
        .expect("latency histogram parses back");
    assert_eq!(latency.count(), metrics.round_latency_nanos().count());
    assert_eq!(
        latency.bucket_counts(),
        metrics.round_latency_nanos().bucket_counts()
    );
    assert_eq!(latency.max(), metrics.round_latency_nanos().max());
}

// ---------------------------------------------------------------------------
// Engine counters on live runs.
// ---------------------------------------------------------------------------

/// Every stepped round lands in exactly one route counter, whatever the
/// engine configuration.
#[test]
fn counters_route_every_round_exactly_once_across_configurations() {
    for (cache_on, farfield_on, want_sinr) in [
        (true, false, false),
        (false, false, false),
        (false, true, false),
        (true, false, true),
    ] {
        let mut sim = knockout_sim(20, 13, sinr_channel());
        sim.set_gain_cache_enabled(cache_on);
        sim.set_farfield_enabled(farfield_on);
        if want_sinr {
            sim.set_telemetry_sink(Box::new(MemorySink::new(TelemetryDetail::full())));
        }
        let result = sim.run_until_resolved(5_000);
        assert!(result.resolved());
        let c = sim.engine_counters();
        assert_eq!(
            c.routed_rounds(),
            c.rounds,
            "cache={cache_on} farfield={farfield_on} sinr={want_sinr}: \
             route counters must partition the rounds"
        );
        assert_eq!(c.rounds, sim.round());
        let expected_path = if farfield_on {
            ResolvePath::FarField
        } else if want_sinr {
            ResolvePath::Instrumented
        } else if cache_on {
            ResolvePath::Cached
        } else {
            ResolvePath::Exact
        };
        assert_eq!(
            c.rounds_for(expected_path),
            c.rounds,
            "every round should take the configured path"
        );
        assert!(c.gain_cache_built, "n=20 SINR builds a cache");
        if !cache_on && !farfield_on {
            assert_eq!(
                c.gain_cache_bypassed_rounds, c.rounds,
                "disabled cache counts as bypassed every round"
            );
        }
        if farfield_on {
            assert_eq!(
                c.farfield.fast_decisions()
                    + c.farfield.noise_floor_silences
                    + c.farfield.exact_fallbacks(),
                c.farfield.listeners_resolved(),
                "far-field rung counters must reconcile"
            );
        } else {
            assert_eq!(c.farfield.rounds, 0);
        }
    }
}

#[test]
fn radio_channel_runs_report_exact_route_and_no_cache() {
    let mut sim = knockout_sim(12, 5, Box::new(RadioChannel::new()));
    let result = sim.run_until_resolved(5_000);
    assert!(result.resolved());
    let c = sim.engine_counters();
    assert!(!c.gain_cache_built, "the radio channel builds no cache");
    assert_eq!(c.exact_rounds, c.rounds);
    assert_eq!(c.gain_cache_bypassed_rounds, 0);
}

#[test]
fn telemetry_events_carry_resolve_path_and_farfield_fallback_deltas() {
    let mut sim = knockout_sim(24, 9, sinr_channel());
    sim.set_gain_cache_enabled(false);
    sim.set_farfield_enabled(true);
    sim.set_telemetry_sink(Box::new(MemorySink::new(TelemetryDetail::counts())));
    let result = sim.run_until_resolved(5_000);
    assert!(result.resolved());
    let sink = sim
        .take_telemetry_sink()
        .and_then(fading_sim::MemorySink::recover)
        .expect("memory sink recovers");
    let events = sink.events();
    assert!(!events.is_empty());
    assert!(events
        .iter()
        .all(|e| e.resolve_path == ResolvePath::FarField));
    let event_fallbacks: u64 = events.iter().map(|e| e.ff_fallbacks as u64).sum();
    assert_eq!(
        event_fallbacks,
        sim.engine_counters().farfield.exact_fallbacks(),
        "per-round fallback deltas must sum to the engine total"
    );
}

// ---------------------------------------------------------------------------
// Non-perturbation: attaching a tracer never changes outcomes.
// ---------------------------------------------------------------------------

#[test]
fn attaching_a_tracer_never_perturbs_the_run() {
    let run = |tracer: Option<Arc<Tracer>>| {
        let mut sim = knockout_sim(20, 42, sinr_channel());
        sim.set_trace_level(TraceLevel::Full);
        if let Some(t) = tracer {
            sim.set_tracer(t);
        }
        sim.run_until_resolved(5_000)
    };
    let baseline = run(None);
    let enabled = Tracer::new();
    assert_eq!(run(Some(Arc::clone(&enabled))), baseline);
    assert!(!enabled.finished_spans().is_empty());
    let disabled = Tracer::disabled();
    assert_eq!(run(Some(Arc::clone(&disabled))), baseline);
    assert!(disabled.finished_spans().is_empty());
}

// ---------------------------------------------------------------------------
// Monte-Carlo metrics aggregation via MetricsRegistry::merge.
// ---------------------------------------------------------------------------

#[test]
fn montecarlo_trial_registries_merge_into_a_fleet_view() {
    let trial = |seed: u64| {
        let mut sim = knockout_sim(16, seed, sinr_channel());
        sim.set_metrics_enabled(true);
        let result = sim.run_until_resolved(5_000);
        let metrics = sim.take_metrics().expect("metrics were enabled");
        (result, metrics)
    };
    let per_trial = montecarlo::run_trials_with(8, 4, 100, trial);
    let mut fleet = MetricsRegistry::new();
    for (_, m) in &per_trial {
        fleet.merge(m);
    }
    let total_rounds: u64 = per_trial.iter().map(|(_, m)| m.rounds()).sum();
    assert!(total_rounds > 0);
    assert_eq!(fleet.rounds(), total_rounds);
    assert_eq!(
        fleet.knockouts(),
        per_trial.iter().map(|(_, m)| m.knockouts()).sum::<u64>()
    );
    assert_eq!(fleet.round_latency_nanos().count(), total_rounds);
    let max_latency = per_trial
        .iter()
        .filter_map(|(_, m)| m.round_latency_nanos().max())
        .fold(f64::NEG_INFINITY, f64::max);
    assert_eq!(fleet.round_latency_nanos().max(), Some(max_latency));
}

// ---------------------------------------------------------------------------
// Histogram::merge ≡ concatenated recording (property test).
// ---------------------------------------------------------------------------

proptest! {
    #[test]
    fn histogram_merge_is_concatenated_recording(
        xs in prop::collection::vec(0.0_f64..1.0e12, 0..64),
        ys in prop::collection::vec(0.0_f64..1.0e12, 0..64),
    ) {
        let mut left = Histogram::new();
        for &x in &xs {
            left.record(x);
        }
        let mut right = Histogram::new();
        for &y in &ys {
            right.record(y);
        }
        let mut concat = Histogram::new();
        for &v in xs.iter().chain(&ys) {
            concat.record(v);
        }
        left.merge(&right);
        prop_assert_eq!(left.bucket_counts(), concat.bucket_counts());
        prop_assert_eq!(left.count(), concat.count());
        prop_assert_eq!(left.min(), concat.min());
        prop_assert_eq!(left.max(), concat.max());
        // Sums agree to FP association tolerance.
        let scale = concat.sum().abs().max(1.0);
        prop_assert!((left.sum() - concat.sum()).abs() <= 1e-9 * scale);
        for q in [0.0, 0.5, 0.9, 1.0] {
            prop_assert_eq!(left.quantile_upper_bound(q), concat.quantile_upper_bound(q));
        }
    }
}

// ---------------------------------------------------------------------------
// Histogram::merge with overflow-bucket mass (≥ 2^62, +∞): q = 1.0 on the
// merged histogram must resolve to the true exact max across both sides —
// not either side's own max — because the overflow bucket's nominal edge is
// not an upper bound for the values it absorbs.
// ---------------------------------------------------------------------------

/// Values spanning the normal buckets, the overflow bucket (≥ 2^62), and
/// the +∞ clamp path.
fn overflow_heavy_value() -> impl Strategy<Value = f64> {
    prop_oneof![
        0.0_f64..1.0e12,
        4.7e18_f64..8.0e21,
        Just(f64::INFINITY),
    ]
}

proptest! {
    #[test]
    fn histogram_merge_overflow_matches_concatenated(
        xs in prop::collection::vec(overflow_heavy_value(), 0..48),
        ys in prop::collection::vec(overflow_heavy_value(), 1..48),
    ) {
        let mut left = Histogram::new();
        for &x in &xs {
            left.record(x);
        }
        let mut right = Histogram::new();
        for &y in &ys {
            right.record(y);
        }
        let mut concat = Histogram::new();
        for &v in xs.iter().chain(&ys) {
            concat.record(v);
        }
        left.merge(&right);
        prop_assert_eq!(left.bucket_counts(), concat.bucket_counts());
        prop_assert_eq!(left.count(), concat.count());
        prop_assert_eq!(left.min(), concat.min());
        prop_assert_eq!(left.max(), concat.max());
        for q in [0.0, 0.25, 0.5, 0.9, 1.0] {
            prop_assert_eq!(left.quantile_upper_bound(q), concat.quantile_upper_bound(q));
        }
        // The pinned contract: q = 1.0 is the true exact max of the union.
        let true_max = xs.iter().chain(&ys).copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(left.quantile_upper_bound(1.0), Some(true_max));
    }
}

#[test]
fn histogram_merge_overflow_only_side_resolves_true_max() {
    // One side recorded *only* overflow-bucket values, the other only
    // normal-bucket values; merged q = 1.0 must be the overflow side's
    // exact max regardless of merge direction.
    let big = 6.5e18; // ≥ 2^62 ≈ 4.61e18
    let bigger = 9.2e18;
    let mut overflow_only = Histogram::new();
    overflow_only.record(big);
    overflow_only.record(bigger);
    let mut normal_only = Histogram::new();
    normal_only.record(3.0);
    normal_only.record(700.0);

    let mut a = overflow_only.clone();
    a.merge(&normal_only);
    assert_eq!(a.quantile_upper_bound(1.0), Some(bigger));

    let mut b = normal_only.clone();
    b.merge(&overflow_only);
    assert_eq!(b.quantile_upper_bound(1.0), Some(bigger));

    // Both sides in the overflow bucket: the union max wins, not the
    // receiving side's.
    let mut c = overflow_only;
    let mut d = Histogram::new();
    d.record(8.8e20);
    c.merge(&d);
    assert_eq!(c.quantile_upper_bound(1.0), Some(8.8e20));
    assert_eq!(c.count(), 3);
}
