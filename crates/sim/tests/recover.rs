//! Checkpoint/resume end-to-end: a snapshot taken mid-run under an active
//! kitchen-sink fault plan must resume **byte-identically** on every
//! engine tier — exact scan, gain cache, flat far-field, hierarchical —
//! and a corrupted snapshot must fail loudly with a typed error, never
//! restore garbage.

use fading_channel::{Reception, SinrChannel, SinrParams};
use fading_geom::{Deployment, Point};
use fading_sim::faults::{ChurnEvent, FaultPlan, GilbertElliott, Jammer, NoiseBurst};
use fading_sim::recover::{SimSnapshot, SnapshotError};
use fading_sim::{Action, Protocol, ProtocolStateError, Simulation, TraceLevel};
use rand::rngs::SmallRng;
use rand::Rng;

/// Transmits with fixed probability; knocked out on any reception. Carries
/// its knockout bit through `save_state`/`load_state` so checkpoints
/// round-trip it.
#[derive(Debug)]
struct Knockout {
    p: f64,
    active: bool,
}

impl Protocol for Knockout {
    fn act(&mut self, _round: u64, rng: &mut SmallRng) -> Action {
        if rng.gen_bool(self.p) {
            Action::Transmit
        } else {
            Action::Listen
        }
    }
    fn feedback(&mut self, _round: u64, reception: &Reception) {
        if reception.is_message() {
            self.active = false;
        }
    }
    fn is_active(&self) -> bool {
        self.active
    }
    fn name(&self) -> &'static str {
        "test-knockout"
    }
    fn save_state(&self) -> Vec<u64> {
        vec![u64::from(self.active)]
    }
    fn load_state(&mut self, state: &[u64]) -> Result<(), ProtocolStateError> {
        match state {
            [active] => {
                self.active = *active != 0;
                Ok(())
            }
            _ => Err(ProtocolStateError {
                protocol: self.name(),
                expected: 1,
                got: state.len(),
            }),
        }
    }
}

/// Duty-cycled budgeted jamming, a noise burst, all three churn kinds,
/// and Gilbert–Elliott burst loss — every fault cursor the snapshot must
/// carry.
fn stress_plan() -> FaultPlan {
    let power = SinrParams::default_single_hop().power() * 10.0;
    FaultPlan::new()
        .with_jammer(Jammer::new(Point::new(7.5, 7.5), power, 2, 6, 3, Some(60)).expect("valid"))
        .with_noise_burst(NoiseBurst::new(5, 15, 4.0).expect("valid"))
        .with_churn(ChurnEvent::late_wake(4, 3).expect("valid"))
        .with_churn(ChurnEvent::crash(6, 0).expect("valid"))
        .with_churn(ChurnEvent::revive(12, 0).expect("valid"))
        .with_loss(GilbertElliott::new(0.15, 0.3, 0.02, 0.7).expect("valid"))
}

/// The four engine tiers: (label, gain cache, far-field, hierarchical).
const TIERS: [(&str, bool, bool, bool); 4] = [
    ("exact", false, false, false),
    ("gain-cache", true, false, false),
    ("farfield", false, true, false),
    ("hierarchical", false, false, true),
];

fn build_sim(seed: u64, cache: bool, farfield: bool, hierarchical: bool) -> Simulation {
    let deployment = Deployment::uniform_square(24, 15.0, seed);
    let mut sim = Simulation::new(
        deployment,
        Box::new(SinrChannel::new(SinrParams::default_single_hop())),
        seed,
        |_| {
            Box::new(Knockout {
                p: 0.25,
                active: true,
            })
        },
    );
    sim.set_fault_plan(stress_plan()).expect("plan fits deployment");
    sim.set_gain_cache_enabled(cache);
    sim.set_farfield_enabled(farfield);
    sim.set_hierarchical_enabled(hierarchical);
    sim.set_trace_level(TraceLevel::Full);
    sim
}

/// Interrupt after `cut` rounds, serialize the snapshot through its byte
/// codec, restore into a *fresh* simulation, and require the resumed
/// result to equal the uninterrupted one — traces included.
fn assert_resume_identical(label: &str, cache: bool, farfield: bool, hierarchical: bool) {
    for seed in [3u64, 19, 71] {
        let uninterrupted = build_sim(seed, cache, farfield, hierarchical)
            .run_until_resolved(20_000);

        // Cut mid-churn: after round 7 the crash (round 6) has fired but
        // the revive (round 12) is pending, the jammer budget and the
        // Gilbert–Elliott chain are mid-flight.
        let mut victim = build_sim(seed, cache, farfield, hierarchical);
        for _ in 0..7 {
            victim.step();
        }
        let bytes = victim.snapshot().to_bytes();
        let snap = SimSnapshot::from_bytes(&bytes).expect("snapshot codec round-trips");

        let mut resumed = build_sim(seed, cache, farfield, hierarchical);
        resumed.restore(&snap).expect("snapshot fits the fresh twin");
        let result = resumed.run_until_resolved(20_000);
        assert_eq!(
            result, uninterrupted,
            "tier {label}, seed {seed}: resume must be byte-identical"
        );
    }
}

#[test]
fn resume_is_byte_identical_on_every_tier_under_faults() {
    for (label, cache, farfield, hierarchical) in TIERS {
        assert_resume_identical(label, cache, farfield, hierarchical);
    }
}

#[test]
fn resume_with_self_check_enabled_is_byte_identical() {
    let seed = 23;
    let build = || {
        let mut sim = build_sim(seed, false, true, false);
        sim.set_self_check(2);
        sim
    };
    let uninterrupted = build().run_until_resolved(20_000);
    let mut victim = build();
    for _ in 0..7 {
        victim.step();
    }
    let snap = victim.snapshot();
    let mut resumed = build();
    resumed.restore(&snap).expect("snapshot fits");
    let result = resumed.run_until_resolved(20_000);
    assert_eq!(result, uninterrupted, "self-check rng lane must checkpoint");
    assert_eq!(
        resumed.engine_counters().self_check_violations,
        0,
        "a healthy resumed run must not trip the self-check"
    );
}

#[test]
fn corrupted_snapshot_fails_loudly_with_a_typed_error() {
    let mut sim = build_sim(5, true, false, false);
    for _ in 0..4 {
        sim.step();
    }
    let mut bytes = sim.snapshot().to_bytes();

    // Flip one payload byte: the checksum must catch it.
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    match SimSnapshot::from_bytes(&bytes) {
        Err(SnapshotError::Corrupt { .. }) => {}
        other => panic!("corrupted snapshot must decode to Corrupt, got {other:?}"),
    }

    // Truncation must also be loud.
    match SimSnapshot::from_bytes(&bytes[..bytes.len() - 9]) {
        Err(SnapshotError::Corrupt { .. }) => {}
        other => panic!("truncated snapshot must decode to Corrupt, got {other:?}"),
    }
}
