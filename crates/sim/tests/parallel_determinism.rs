//! Parallel-resolve determinism harness: neither the hierarchical engine
//! nor the work-stealing resolve pool may be visible in results.
//!
//! The cross-product here is the PR's headline contract, checked end to
//! end: hierarchical {on, off} × resolve threads {1, 2, 8} × fault plan
//! {none, stress} — with knockout churn shrinking the live set every
//! round — must produce **byte-identical** `Vec<RunResult>`s (traces
//! included). A channel-level multi-chunk check and an adversarial-sleep
//! pool test pin down the two mechanisms the argument rests on: the
//! fixed-chunk deterministic merge and the order-independence of the
//! stealing scheduler.

use fading_channel::{
    Channel, ChannelPerturbation, LossySinrChannel, RayleighSinrChannel, Reception,
    SerialExecutor, SinrChannel, SinrParams,
};
use fading_geom::Deployment;
use fading_sim::faults::{ChurnEvent, FaultPlan, GilbertElliott, Jammer, NoiseBurst};
use fading_sim::{montecarlo, Action, Protocol, RunResult, Simulation, StealPool, TraceLevel};
use fading_geom::Point;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Transmits with fixed probability; knocked out on any reception.
#[derive(Debug)]
struct Knockout {
    p: f64,
    active: bool,
}

impl Protocol for Knockout {
    fn act(&mut self, _round: u64, rng: &mut SmallRng) -> Action {
        if rng.gen_bool(self.p) {
            Action::Transmit
        } else {
            Action::Listen
        }
    }
    fn feedback(&mut self, _round: u64, reception: &Reception) {
        if reception.is_message() {
            self.active = false;
        }
    }
    fn is_active(&self) -> bool {
        self.active
    }
    fn name(&self) -> &'static str {
        "test-knockout"
    }
}

fn params() -> SinrParams {
    SinrParams::default_single_hop()
}

/// The same kitchen-sink fault plan as `determinism.rs`: duty-cycled
/// budgeted jamming, a noise burst, all three churn kinds, and
/// Gilbert–Elliott burst loss.
fn stress_plan() -> FaultPlan {
    let power = SinrParams::default_single_hop().power() * 10.0;
    FaultPlan::new()
        .with_jammer(Jammer::new(Point::new(7.5, 7.5), power, 2, 6, 3, Some(60)).expect("valid"))
        .with_jammer(Jammer::continuous(Point::new(1.0, 14.0), power / 4.0, 10).expect("valid"))
        .with_noise_burst(NoiseBurst::new(5, 15, 4.0).expect("valid"))
        .with_churn(ChurnEvent::late_wake(4, 3).expect("valid"))
        .with_churn(ChurnEvent::crash(6, 0).expect("valid"))
        .with_churn(ChurnEvent::revive(12, 0).expect("valid"))
        .with_loss(GilbertElliott::new(0.15, 0.3, 0.02, 0.7).expect("valid"))
}

/// One seeded trial batch with the hierarchical tier and resolve-thread
/// count under test. The gain cache is disabled so every round actually
/// routes through the tier being compared (hierarchical vs. exact).
fn run_hier_batch<F>(
    make_channel: &F,
    hierarchical: bool,
    resolve_threads: usize,
    trials: usize,
    faulted: bool,
) -> Vec<RunResult>
where
    F: Fn() -> Box<dyn Channel> + Sync,
{
    montecarlo::run_trials(trials, 1, 1000, move |seed| {
        let deployment = Deployment::uniform_square(24, 15.0, seed);
        let mut sim = Simulation::new(deployment, make_channel(), seed, |_| {
            Box::new(Knockout {
                p: 0.25,
                active: true,
            })
        });
        if faulted {
            sim.set_fault_plan(stress_plan()).expect("plan fits deployment");
        }
        sim.set_gain_cache_enabled(false);
        sim.set_hierarchical_enabled(hierarchical);
        sim.set_resolve_threads(resolve_threads);
        sim.set_trace_level(TraceLevel::Full);
        sim.run_until_resolved(20_000)
    })
}

/// The headline cross-product for one channel: hierarchical {on, off} ×
/// resolve threads {1, 2, 8} × faults {none, stress} must all produce the
/// same `Vec<RunResult>` as the exact serial reference.
fn assert_hierarchical_and_threads_invariant<F>(make_channel: F)
where
    F: Fn() -> Box<dyn Channel> + Sync,
{
    let trials = 8;
    for &faulted in &[false, true] {
        let reference = run_hier_batch(&make_channel, false, 1, trials, faulted);
        assert!(
            reference.iter().any(|r| r.resolved()),
            "batch (faulted={faulted}) never resolved; too hard to be a useful oracle"
        );
        for &hierarchical in &[true, false] {
            for &threads in &[1usize, 2, 8] {
                let got = run_hier_batch(&make_channel, hierarchical, threads, trials, faulted);
                assert_eq!(
                    got, reference,
                    "results diverged at hierarchical={hierarchical}, \
                     resolve_threads={threads}, faulted={faulted}"
                );
            }
        }
    }
}

#[test]
fn sinr_results_invariant_under_hierarchical_and_resolve_threads() {
    assert_hierarchical_and_threads_invariant(|| Box::new(SinrChannel::new(params())));
}

#[test]
fn lossy_results_invariant_under_hierarchical_and_resolve_threads() {
    assert_hierarchical_and_threads_invariant(|| {
        Box::new(LossySinrChannel::new(params(), 0.2).expect("valid drop_prob"))
    });
}

#[test]
fn rayleigh_results_invariant_under_hierarchical_and_resolve_threads() {
    // Rayleigh builds no hierarchical engine (per-pair fading draws pin
    // the rng schedule); enabling the tier must be a clean no-op.
    assert_hierarchical_and_threads_invariant(|| Box::new(RayleighSinrChannel::new(params())));
}

/// Channel-level multi-chunk check: a deployment large enough to split
/// into several `HIER_CHUNK`-sized listener chunks must produce the same
/// receptions *and* the same rng cursor under the serial executor and
/// under pools of 2 and 8 workers — the deterministic-merge contract at
/// the layer where the parallelism actually lives.
#[test]
fn multi_chunk_resolve_is_executor_invariant() {
    let n = 4096;
    let deployment = Deployment::uniform_square(n, 130.0, 11);
    let positions = deployment.points().to_vec();
    let p = params();
    let ch = SinrChannel::new(p);
    let mut rng_seed = SmallRng::seed_from_u64(99);
    let transmitters: Vec<usize> = (0..n).filter(|_| rng_seed.gen_bool(0.25)).collect();
    let listeners: Vec<usize> = (0..n).filter(|i| !transmitters.contains(i)).collect();
    assert!(
        listeners.len() > 2048,
        "need multiple HIER_CHUNK-sized chunks for this test to bite"
    );

    let run = |executor: &dyn fading_channel::ChunkExecutor| {
        let mut engine = ch.build_hierarchical_engine(&positions);
        assert!(engine.is_some(), "SINR must build a hierarchical engine");
        let mut rng = SmallRng::seed_from_u64(7);
        let rx = ch.resolve_hierarchical(
            &positions,
            &transmitters,
            &listeners,
            engine.as_mut(),
            executor,
            &ChannelPerturbation::neutral(),
            &mut rng,
        );
        (rx, rng)
    };

    let (serial_rx, serial_rng) = run(&SerialExecutor);
    for &threads in &[2usize, 8] {
        let pool = StealPool::new(threads);
        let (rx, rng) = run(&pool);
        assert_eq!(rx, serial_rx, "receptions diverged at {threads} workers");
        assert_eq!(rng, serial_rng, "rng cursor diverged at {threads} workers");
    }
}

/// Adversarial-sleep pool test: per-task sleeps derived from the task id
/// scramble completion order (late tasks finish first, early tasks get
/// stolen), yet each task's output lands in its own slot and the gathered
/// results are identical across pool widths — completion order has no
/// channel through which to leak into results.
#[test]
fn adversarial_sleeps_cannot_leak_completion_order_into_results() {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Mutex;

    const TASKS: usize = 64;
    let expected: Vec<u64> = (0..TASKS as u64)
        .map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .collect();

    let mut completion_orders = Vec::new();
    for &threads in &[1usize, 2, 8] {
        let pool = StealPool::new(threads);
        let slots: Vec<AtomicU64> = (0..TASKS).map(|_| AtomicU64::new(0)).collect();
        let order = Mutex::new(Vec::with_capacity(TASKS));
        pool.run(TASKS, &|i| {
            // Deterministic per-task jitter, worst at the front of the
            // range so the owner's queue drains slowly and thieves win.
            let jitter_ms = 3u64.saturating_sub((i as u64) % 4);
            std::thread::sleep(std::time::Duration::from_millis(jitter_ms));
            slots[i].store((i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15), Ordering::SeqCst);
            order.lock().expect("no panics hold the lock").push(i);
        });
        let got: Vec<u64> = slots.iter().map(|s| s.load(Ordering::SeqCst)).collect();
        assert_eq!(got, expected, "slot contents diverged at {threads} threads");
        let order = order.into_inner().expect("no panics hold the lock");
        assert_eq!(order.len(), TASKS, "every task ran exactly once");
        completion_orders.push(order);
    }
    // The single-threaded pool runs inline and in order; wider pools are
    // free to complete in any order — the point is that the assertion
    // above held regardless of what these orders turned out to be.
    assert_eq!(
        completion_orders[0],
        (0..TASKS).collect::<Vec<_>>(),
        "inline execution is sequential by construction"
    );
}

/// API surface: the hierarchical tier is dormant below the auto
/// threshold, builds on demand, tracks knockout occupancy, and the
/// resolve-pool width is a visible, settable knob.
#[test]
fn simulation_exposes_hierarchical_state() {
    let deployment = Deployment::uniform_square(24, 15.0, 7);
    let channel = SinrChannel::new(params());
    let mut sim = Simulation::new(deployment, Box::new(channel), 7, |_| {
        Box::new(Knockout {
            p: 0.25,
            active: true,
        })
    });
    assert!(
        !sim.hierarchical_active(),
        "24 nodes sit far below HIERARCHICAL_AUTO_THRESHOLD"
    );
    assert!(sim.hierarchical_engine().is_none(), "not built eagerly");
    assert_eq!(sim.resolve_threads(), 1, "serial resolve by default");

    sim.set_gain_cache_enabled(false);
    sim.set_hierarchical_enabled(true);
    sim.set_resolve_threads(8);
    assert!(sim.hierarchical_active());
    assert_eq!(sim.resolve_threads(), 8);
    assert_eq!(
        sim.hierarchical_engine().map(|e| e.num_active()),
        Some(24),
        "on-demand build syncs occupancy with the live set"
    );
    assert_eq!(sim.hierarchical_stats().map(|s| s.rounds), Some(0));

    let result = sim.run_until_resolved(20_000);
    assert!(result.resolved());
    assert!(sim.num_active() < sim.len(), "someone must knock out");
    let engine = sim.hierarchical_engine().expect("engine stays built");
    assert_eq!(
        engine.num_active(),
        sim.num_active(),
        "tree occupancy must track the simulation's live-node count"
    );
    let stats = sim.hierarchical_stats().expect("engine stays built");
    assert!(stats.rounds > 0, "the tier should have served rounds");
    assert_eq!(
        stats.fast_decisions() + stats.noise_floor_silences + stats.exact_fallbacks(),
        stats.listeners_resolved(),
        "rung counters must reconcile with listeners resolved"
    );

    sim.set_hierarchical_enabled(false);
    assert!(!sim.hierarchical_active());
    assert!(
        sim.hierarchical_engine().is_some(),
        "disabling keeps the engine built"
    );
}
