//! Integration tests for the observer-driven run loop and the simulator's
//! behavioral contracts under unusual protocols.

use fading_channel::{Reception, SinrChannel, SinrParams};
use fading_geom::Deployment;
use fading_sim::{Action, Protocol, Simulation};
use rand::rngs::SmallRng;
use rand::Rng;

#[derive(Debug)]
struct Knockout {
    p: f64,
    active: bool,
}

impl Protocol for Knockout {
    fn act(&mut self, _round: u64, rng: &mut SmallRng) -> Action {
        if rng.gen_bool(self.p) {
            Action::Transmit
        } else {
            Action::Listen
        }
    }
    fn feedback(&mut self, _round: u64, rx: &Reception) {
        if rx.is_message() {
            self.active = false;
        }
    }
    fn is_active(&self) -> bool {
        self.active
    }
    fn name(&self) -> &'static str {
        "test-knockout"
    }
}

fn sim(seed: u64) -> Simulation {
    let d = Deployment::uniform_square(32, 20.0, seed);
    let params = SinrParams::default_single_hop().with_power_for(&d);
    Simulation::new(d, Box::new(SinrChannel::new(params)), seed, |_| {
        Box::new(Knockout {
            p: 0.1,
            active: true,
        })
    })
}

#[test]
fn observer_sees_every_round_plus_final_state() {
    let mut observed_rounds = Vec::new();
    let mut active_counts = Vec::new();
    let result = sim(5).run_until_resolved_with(100_000, |s| {
        observed_rounds.push(s.round());
        active_counts.push(s.num_active());
    });
    assert!(result.resolved());
    // One observation before each executed round, plus the closing one.
    assert_eq!(observed_rounds.len() as u64, result.rounds_executed() + 1);
    // Round counters are 0, 1, 2, … in order.
    for (i, &r) in observed_rounds.iter().enumerate() {
        assert_eq!(r, i as u64);
    }
    // Active counts are non-increasing.
    for w in active_counts.windows(2) {
        assert!(w[1] <= w[0]);
    }
}

#[test]
fn observer_variant_matches_plain_run() {
    let plain = sim(9).run_until_resolved(100_000);
    let observed = sim(9).run_until_resolved_with(100_000, |_| {});
    assert_eq!(plain.resolved_at(), observed.resolved_at());
    assert_eq!(plain.winner(), observed.winner());
    assert_eq!(plain.total_transmissions(), observed.total_transmissions());
}

/// A protocol that claims inactive from the start: the simulator must never
/// schedule it, and a network of them simply never resolves.
#[derive(Debug)]
struct BornDead;

impl Protocol for BornDead {
    fn act(&mut self, _round: u64, _rng: &mut SmallRng) -> Action {
        panic!("inactive protocol must never be asked to act");
    }
    fn feedback(&mut self, _round: u64, _rx: &Reception) {
        panic!("inactive protocol must never receive feedback");
    }
    fn is_active(&self) -> bool {
        false
    }
    fn name(&self) -> &'static str {
        "born-dead"
    }
}

#[test]
fn initially_inactive_nodes_are_never_scheduled() {
    let d = Deployment::uniform_square(8, 10.0, 1);
    let params = SinrParams::default_single_hop().with_power_for(&d);
    let mut s = Simulation::new(d, Box::new(SinrChannel::new(params)), 1, |_| {
        Box::new(BornDead)
    });
    assert_eq!(s.num_active(), 0);
    let result = s.run_until_resolved(50);
    assert!(!result.resolved());
    assert_eq!(result.total_transmissions(), 0);
}

/// A node that reports inactive after its first feedback but then flips
/// back to active: the simulator treats deactivation as permanent.
#[derive(Debug)]
struct Flaky {
    fed: u32,
}

impl Protocol for Flaky {
    fn act(&mut self, _round: u64, _rng: &mut SmallRng) -> Action {
        Action::Listen
    }
    fn feedback(&mut self, _round: u64, _rx: &Reception) {
        self.fed += 1;
    }
    fn is_active(&self) -> bool {
        // Inactive exactly at the first post-feedback check, active again
        // afterwards — an adversarial (buggy) implementation.
        self.fed != 1
    }
    fn name(&self) -> &'static str {
        "flaky"
    }
}

#[test]
fn deactivation_is_permanent_even_if_protocol_flips_back() {
    let d = Deployment::uniform_square(4, 10.0, 2);
    let params = SinrParams::default_single_hop().with_power_for(&d);
    let mut s = Simulation::new(d, Box::new(SinrChannel::new(params)), 2, |_| {
        Box::new(Flaky { fed: 0 })
    });
    // Round 1: everyone listens, receives silence (fed = 1 → inactive).
    s.step();
    assert_eq!(s.num_active(), 0);
    // Further rounds never reactivate anyone.
    s.step();
    s.step();
    assert_eq!(s.num_active(), 0);
    assert_eq!(s.active_ids(), Vec::<usize>::new());
}

/// Mixed population: half the nodes never deactivate (greedy), half follow
/// the knockout rule. Resolution still only requires a single transmitter
/// among the ACTIVE set, so greedy nodes keep it unresolved until luck or
/// knockouts thin the greedy side... which never happens — assert the
/// precise semantics instead: knockout nodes all die, greedy nodes persist.
#[derive(Debug)]
struct Greedy;

impl Protocol for Greedy {
    fn act(&mut self, _round: u64, rng: &mut SmallRng) -> Action {
        if rng.gen_bool(0.5) {
            Action::Transmit
        } else {
            Action::Listen
        }
    }
    fn feedback(&mut self, _round: u64, _rx: &Reception) {}
    fn is_active(&self) -> bool {
        true
    }
    fn name(&self) -> &'static str {
        "greedy"
    }
}

#[test]
fn mixed_populations_follow_their_own_rules() {
    let d = Deployment::uniform_square(16, 8.0, 3);
    let params = SinrParams::default_single_hop().with_power_for(&d);
    let mut s = Simulation::new(d, Box::new(SinrChannel::new(params)), 3, |id| {
        if id % 2 == 0 {
            Box::new(Greedy) as Box<dyn Protocol>
        } else {
            Box::new(Knockout {
                p: 0.3,
                active: true,
            })
        }
    });
    for _ in 0..300 {
        s.step();
    }
    // Every greedy (even-id) node is still active.
    for id in (0..16).step_by(2) {
        assert!(s.is_active(id), "greedy node {id} was deactivated");
    }
    // With dense greedy transmitters around, knockout nodes should mostly
    // be gone after 300 rounds.
    let knockouts_alive = (1..16).step_by(2).filter(|&id| s.is_active(id)).count();
    assert!(
        knockouts_alive <= 4,
        "{knockouts_alive} knockout nodes survived"
    );
}
