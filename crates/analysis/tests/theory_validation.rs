//! Empirical validation of the paper's analysis lemmas against live FKN
//! executions: Lemma 6 (good-node fraction), Corollary 7 (constant-fraction
//! knockout), and the §3.3 class-bound schedule.

use fading_analysis::{
    separated_subset, ClassBoundSchedule, GoodNodes, LinkClasses, ScheduleParams,
};
use fading_channel::{SinrChannel, SinrParams};
use fading_geom::{generators, Deployment};
use fading_protocols::Fkn;
use fading_sim::Simulation;

const ALPHA: f64 = 3.0;

fn sinr_sim(deployment: Deployment, seed: u64) -> Simulation {
    let channel = SinrChannel::new(SinrParams::default_single_hop());
    Simulation::new(
        deployment,
        Box::new(channel),
        seed,
        |_| Box::new(Fkn::new()),
    )
}

/// Lemma 6: with `n_{<i} ≤ δ·n_i`, at least half of `V_i` is good.
#[test]
fn lemma6_dominant_class_is_mostly_good() {
    // 40 pairs in class 3, only 2 pairs in class 0: n_{<3} = 4 ≤ δ·80 for
    // any reasonable δ.
    let d = generators::geometric_pairs(&[2, 0, 0, 40], 7).unwrap();
    let active: Vec<usize> = (0..d.len()).collect();
    let classes = LinkClasses::partition(d.points(), &active, d.min_link());
    let good = GoodNodes::classify(d.points(), &active, &classes, ALPHA);
    // geometric_pairs separation 1.5·2^i and min_link = 1.5 → unit 1.5, so
    // every pair is class 0 w.r.t. its own nn... find the dominant class.
    let sizes = classes.sizes();
    let (dominant, _) = sizes
        .iter()
        .enumerate()
        .max_by_key(|(_, &s)| s)
        .expect("some class is nonempty");
    assert!(
        good.good_fraction(dominant) >= 0.5,
        "dominant class {dominant} good fraction {} (sizes {sizes:?})",
        good.good_fraction(dominant)
    );
}

/// Corollary 7 empirically: one FKN round on a crowded single class knocks
/// out a constant fraction of the separated subset S_i (averaged over
/// seeds).
#[test]
fn corollary7_constant_fraction_knockout() {
    let mut fractions = Vec::new();
    for seed in 0..10 {
        let d = Deployment::uniform_square(200, 40.0, seed);
        let unit = d.min_link();
        let mut sim = sinr_sim(d.clone(), seed);
        let before = sim.active_ids();
        let classes = LinkClasses::partition(d.points(), &before, unit);
        let good = GoodNodes::classify(d.points(), &before, &classes, ALPHA);
        let i = classes.smallest_nonempty().expect("nonempty class");
        let s_i = separated_subset(d.points(), &classes, &good, i, 2.0);
        if s_i.len() < 5 {
            continue;
        }
        sim.step();
        let knocked = s_i.members().iter().filter(|&&u| !sim.is_active(u)).count();
        fractions.push(knocked as f64 / s_i.len() as f64);
    }
    assert!(!fractions.is_empty(), "no seed produced a usable S_i");
    let mean = fractions.iter().sum::<f64>() / fractions.len() as f64;
    assert!(
        mean > 0.05,
        "mean knockout fraction {mean} too small: knockouts are not happening"
    );
}

/// The §3.3 schedule: a real FKN execution's link-class sizes eventually
/// fall (permanently) below every bound vector, and the completion round is
/// within a constant factor of the schedule horizon.
#[test]
fn schedule_adherence_on_real_execution() {
    let d = Deployment::uniform_square(256, 60.0, 3);
    let unit = d.min_link();
    let num_classes = d.num_link_classes();
    let n = d.len();
    let mut sim = sinr_sim(d.clone(), 3);

    // Record link-class size vectors per round until resolution.
    let mut series: Vec<Vec<usize>> = Vec::new();
    for _ in 0..100_000 {
        let active = sim.active_ids();
        let classes = LinkClasses::partition(d.points(), &active, unit);
        series.push(classes.sizes());
        if sim.resolved_at().is_some() {
            break;
        }
        sim.step();
    }
    assert!(sim.resolved_at().is_some(), "run did not resolve");

    let sched = ClassBoundSchedule::new(n, num_classes, ScheduleParams::default());
    let adherence = sched.adherence(&series);
    assert!(adherence.is_monotone());
    assert_eq!(
        adherence.coverage(),
        1.0,
        "execution never satisfied some bound: {adherence:?}"
    );
    let completion = adherence.completion_round().unwrap();
    // Theorem 1: completion within O(horizon) rounds. The schedule counts
    // *steps*; each step needs O(1) rounds (segments), so allow a generous
    // constant.
    let horizon = sched.horizon();
    assert!(
        completion <= 20 * horizon + 100,
        "completion {completion} vs horizon {horizon}"
    );
}

/// Migration: knocking out a node can only move its old neighbors to LARGER
/// classes ("no node can join a smaller link class").
#[test]
fn knockouts_never_shrink_class_indices() {
    let d = Deployment::uniform_square(128, 30.0, 11);
    let unit = d.min_link();
    let mut sim = sinr_sim(d.clone(), 11);
    let mut prev: Option<LinkClasses> = None;
    for _ in 0..60 {
        let active = sim.active_ids();
        if active.len() < 2 {
            break;
        }
        let classes = LinkClasses::partition(d.points(), &active, unit);
        if let Some(ref p) = prev {
            for &u in &active {
                if let (Some(old), Some(new)) = (p.class_of(u), classes.class_of(u)) {
                    assert!(
                        new >= old,
                        "node {u} migrated from class {old} down to {new}"
                    );
                }
            }
        }
        prev = Some(classes);
        sim.step();
    }
}

/// The smallest nonempty class empties fastest on multi-scale deployments:
/// by the time the run resolves, classes vanished bottom-up in the trace.
#[test]
fn smallest_class_index_is_monotone_in_time() {
    let d = generators::clustered(6, 20, 0.8, 200.0, 5).unwrap();
    let unit = d.min_link();
    let mut sim = sinr_sim(d.clone(), 5);
    let mut smallest_seen: Vec<usize> = Vec::new();
    for _ in 0..100_000 {
        let active = sim.active_ids();
        if active.len() < 2 || sim.resolved_at().is_some() {
            break;
        }
        let classes = LinkClasses::partition(d.points(), &active, unit);
        if let Some(s) = classes.smallest_nonempty() {
            smallest_seen.push(s);
        }
        sim.step();
    }
    assert!(!smallest_seen.is_empty());
    // Not strictly monotone round-by-round (migration can fill a small
    // class), but the final smallest index must be >= the initial one, and
    // large regressions should not occur.
    let first = smallest_seen[0];
    let last = *smallest_seen.last().unwrap();
    assert!(
        last >= first,
        "smallest class regressed from {first} to {last}"
    );
}

/// Lemmas 3 and 4, live: over real FKN rounds, the outside interference at
/// most members of S_i stays within a constant number of budget units, and
/// the worst-case inside interference (everyone in S_i ∪ T_i transmitting)
/// is bounded for every member.
#[test]
fn lemma3_and_lemma4_interference_budgets() {
    use fading_analysis::{check_lemmas, separated_subset};
    use fading_channel::SinrParams;
    use fading_sim::Action;

    let mut outside_fracs = Vec::new();
    let mut inside_fracs = Vec::new();
    for seed in 0..8 {
        let d = Deployment::uniform_square(200, 40.0, seed);
        let unit = d.min_link();
        let params = SinrParams::default_single_hop().with_power_for(&d);
        let active: Vec<usize> = (0..d.len()).collect();
        let classes = LinkClasses::partition(d.points(), &active, unit);
        let good = GoodNodes::classify(d.points(), &active, &classes, ALPHA);
        let Some(i) = classes.smallest_nonempty() else {
            continue;
        };
        let s_i = separated_subset(d.points(), &classes, &good, i, 2.0);
        if s_i.len() < 5 {
            continue;
        }
        // Draw one round of FKN transmitters (p = 0.05) from the active set.
        use rand::Rng;
        let mut rng = fading_sim::node_rng(seed, 0);
        let transmitters: Vec<usize> = active
            .iter()
            .copied()
            .filter(|_| rng.gen_bool(0.05))
            .collect();
        let _ = Action::Listen; // silence unused-import lint on some cfgs
                                // Budgets: generous constants — the lemmas allow any constant c.
        let check = check_lemmas(d.points(), &s_i, &params, unit, &transmitters, 50.0, 50.0);
        outside_fracs.push(check.outside_ok_fraction);
        inside_fracs.push(check.inside_ok_fraction);
    }
    assert!(!outside_fracs.is_empty(), "no usable S_i found");
    // Lemma 3: at least half the members within budget (we require the
    // average across seeds to clear it comfortably).
    let mean_outside = outside_fracs.iter().sum::<f64>() / outside_fracs.len() as f64;
    assert!(
        mean_outside >= 0.5,
        "outside-budget fraction {mean_outside} below Lemma 3's guarantee"
    );
    // Lemma 4 is deterministic: every member within budget, every seed.
    for (k, f) in inside_fracs.iter().enumerate() {
        assert_eq!(*f, 1.0, "seed {k}: inside budget violated");
    }
}
