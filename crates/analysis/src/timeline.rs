//! Per-round execution timelines: link-class evolution packaged for
//! schedule-adherence and knockout-dynamics analysis.

use fading_channel::NodeId;
use fading_geom::Point;

use crate::{ClassBoundSchedule, LinkClasses, TraceAdherence};

/// One snapshot of an execution, taken at the start of a round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimelineEntry {
    /// Completed rounds when the snapshot was taken (0 = initial state).
    pub round: u64,
    /// Number of active nodes.
    pub active: usize,
    /// Link-class sizes `(n_0, n_1, …)` up to the largest occupied index.
    pub class_sizes: Vec<usize>,
}

impl TimelineEntry {
    /// The smallest nonempty class index, if any.
    #[must_use]
    pub fn smallest_nonempty(&self) -> Option<usize> {
        self.class_sizes.iter().position(|&s| s > 0)
    }
}

/// A recorded execution timeline: the link-class size vector at every round
/// of a run, plus the derived analyses of §3.3.
///
/// Build one incrementally with [`ExecutionTimeline::record`] from inside a
/// simulation loop (or the observer hook of
/// `Simulation::run_until_resolved_with`).
///
/// # Example
///
/// ```
/// use fading_analysis::ExecutionTimeline;
/// use fading_channel::{SinrChannel, SinrParams};
/// use fading_geom::Deployment;
/// use fading_protocols::Fkn;
/// use fading_sim::Simulation;
///
/// let d = Deployment::uniform_square(48, 25.0, 3);
/// let params = SinrParams::default_single_hop().with_power_for(&d);
/// let mut timeline = ExecutionTimeline::new(d.min_link());
/// let mut sim = Simulation::new(d.clone(), Box::new(SinrChannel::new(params)), 3, |_| {
///     Box::new(Fkn::new())
/// });
/// let result = sim.run_until_resolved_with(100_000, |s| {
///     timeline.record(s.round(), d.points(), &s.active_ids());
/// });
/// assert!(result.resolved());
/// assert_eq!(timeline.len() as u64, result.rounds_executed() + 1);
/// assert!(timeline.is_active_monotone());
/// ```
#[derive(Debug, Clone, Default)]
pub struct ExecutionTimeline {
    unit: f64,
    entries: Vec<TimelineEntry>,
}

impl ExecutionTimeline {
    /// Creates an empty timeline using `unit` as the link-class
    /// normalization (the deployment's shortest link).
    ///
    /// # Panics
    ///
    /// Panics if `unit` is not strictly positive.
    #[must_use]
    pub fn new(unit: f64) -> Self {
        assert!(unit > 0.0, "normalization unit must be positive");
        ExecutionTimeline {
            unit,
            entries: Vec::new(),
        }
    }

    /// Records a snapshot: partitions the given active set into link
    /// classes and appends an entry.
    pub fn record(&mut self, round: u64, positions: &[Point], active: &[NodeId]) {
        let classes = LinkClasses::partition(positions, active, self.unit);
        self.entries.push(TimelineEntry {
            round,
            active: active.len(),
            class_sizes: classes.sizes(),
        });
    }

    /// Number of recorded snapshots.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The recorded entries, in order.
    #[must_use]
    pub fn entries(&self) -> &[TimelineEntry] {
        &self.entries
    }

    /// The per-round class-size vectors (the §3.3 input format).
    #[must_use]
    pub fn size_series(&self) -> Vec<Vec<usize>> {
        self.entries.iter().map(|e| e.class_sizes.clone()).collect()
    }

    /// Whether the active count never increased across the timeline
    /// (knockouts are permanent, so any violation indicates a recording or
    /// simulation bug).
    #[must_use]
    pub fn is_active_monotone(&self) -> bool {
        self.entries.windows(2).all(|w| w[1].active <= w[0].active)
    }

    /// The per-round knockout counts implied by consecutive active counts.
    #[must_use]
    pub fn knockouts_per_round(&self) -> Vec<usize> {
        self.entries
            .windows(2)
            .map(|w| w[0].active.saturating_sub(w[1].active))
            .collect()
    }

    /// Checks the timeline against a §3.3 class-bound schedule.
    #[must_use]
    pub fn adherence(&self, schedule: &ClassBoundSchedule) -> TraceAdherence {
        schedule.adherence(&self.size_series())
    }

    /// The largest class index ever occupied (`None` for an empty or
    /// single-node timeline).
    #[must_use]
    pub fn max_occupied_class(&self) -> Option<usize> {
        self.entries
            .iter()
            .filter_map(|e| e.class_sizes.iter().rposition(|&s| s > 0))
            .max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ScheduleParams;

    fn pts(coords: &[(f64, f64)]) -> Vec<Point> {
        coords.iter().map(|&(x, y)| Point::new(x, y)).collect()
    }

    #[test]
    fn records_partition_snapshots() {
        let positions = pts(&[(0.0, 0.0), (1.0, 0.0), (10.0, 0.0), (14.0, 0.0)]);
        let mut t = ExecutionTimeline::new(1.0);
        t.record(0, &positions, &[0, 1, 2, 3]);
        t.record(1, &positions, &[0, 2, 3]);
        t.record(2, &positions, &[2]);
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
        // Round 0: pair (0,1) class 0; pair (2,3) distance 4 → class 2.
        assert_eq!(t.entries()[0].class_sizes, vec![2, 0, 2]);
        assert_eq!(t.entries()[0].smallest_nonempty(), Some(0));
        // Round 1: node 0's nearest active is node 2 at distance 10 →
        // class 3; nodes 2 and 3 pair up at distance 4 → class 2.
        assert_eq!(t.entries()[1].class_sizes, vec![0, 0, 2, 1]);
        // Round 2: a single active node has no classes.
        assert!(t.entries()[2].class_sizes.is_empty());
        assert_eq!(t.entries()[2].smallest_nonempty(), None);
    }

    #[test]
    fn monotonicity_and_knockouts() {
        let positions = pts(&[(0.0, 0.0), (1.0, 0.0), (5.0, 0.0)]);
        let mut t = ExecutionTimeline::new(1.0);
        t.record(0, &positions, &[0, 1, 2]);
        t.record(1, &positions, &[0, 2]);
        t.record(2, &positions, &[0, 2]);
        assert!(t.is_active_monotone());
        assert_eq!(t.knockouts_per_round(), vec![1, 0]);
        assert_eq!(t.max_occupied_class(), Some(2));
    }

    #[test]
    fn non_monotone_is_detected() {
        let positions = pts(&[(0.0, 0.0), (1.0, 0.0), (5.0, 0.0)]);
        let mut t = ExecutionTimeline::new(1.0);
        t.record(0, &positions, &[0, 1]);
        t.record(1, &positions, &[0, 1, 2]);
        assert!(!t.is_active_monotone());
    }

    #[test]
    fn adherence_delegates_to_schedule() {
        let positions = pts(&[(0.0, 0.0), (1.0, 0.0)]);
        let mut t = ExecutionTimeline::new(1.0);
        t.record(0, &positions, &[0, 1]);
        t.record(1, &positions, &[0]);
        let sched = ClassBoundSchedule::new(2, 1, ScheduleParams::default());
        let adherence = t.adherence(&sched);
        assert!(adherence.is_monotone());
        assert!(adherence.completion_round().is_some());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_bad_unit() {
        let _ = ExecutionTimeline::new(0.0);
    }
}
