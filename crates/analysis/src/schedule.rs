//! The class-bound vectors `q_t` of §3.3 and the `Θ(log n + log R)` horizon.

use serde::{Deserialize, Serialize};

/// The two tunable constants of the §3.3 schedule.
///
/// * `gamma` (γ) — the retention fraction from Corollary 7: with high
///   probability at most a `γ` fraction of a pressured link class survives
///   one round.
/// * `rho` (ρ) — the target ratio between consecutive link-class bounds;
///   the paper picks ρ small enough that `ρ/(1−ρ) < γ·δ`.
///
/// From these the schedule derives `γ_slow = γ + ρ/(1−ρ)` (the decay rate
/// of each bound) and `l = ⌈log_{γ_slow} ρ⌉` (the stagger between
/// consecutive classes' start steps).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScheduleParams {
    /// Per-round retention fraction `γ ∈ (0, 1)`.
    pub gamma: f64,
    /// Consecutive-class ratio `ρ ∈ (0, 1)` with `γ + ρ/(1−ρ) < 1`.
    pub rho: f64,
}

impl Default for ScheduleParams {
    /// `γ = 1/2`, `ρ = 1/4`: the empirically comfortable operating point
    /// (FKN knocks out roughly half of a pressured class per round; see
    /// experiment E8), giving `γ_slow = 5/6` and `l = 8`.
    fn default() -> Self {
        ScheduleParams {
            gamma: 0.5,
            rho: 0.25,
        }
    }
}

impl ScheduleParams {
    /// `γ_slow = γ + ρ/(1−ρ)`, the per-step decay factor of every bound.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < γ < 1`, `0 < ρ < 1`, and `γ_slow < 1`.
    #[must_use]
    pub fn gamma_slow(&self) -> f64 {
        assert!(
            self.gamma > 0.0 && self.gamma < 1.0,
            "gamma must be in (0,1)"
        );
        assert!(self.rho > 0.0 && self.rho < 1.0, "rho must be in (0,1)");
        let gs = self.gamma + self.rho / (1.0 - self.rho);
        assert!(gs < 1.0, "gamma + rho/(1-rho) must stay below 1");
        gs
    }

    /// `l = ⌈log_{γ_slow} ρ⌉`: steps between consecutive classes' start
    /// steps. After `l` extra decay steps a class bound has dropped by a
    /// factor `γ_slow^l ≤ ρ` — the paper's interpretation of `ρ` as the
    /// ratio between consecutive link-class bounds.
    #[must_use]
    pub fn stagger(&self) -> u32 {
        let gs = self.gamma_slow();
        (self.rho.ln() / gs.ln()).ceil() as u32
    }
}

/// The sequence of class-bound vectors `q_0, q_1, …` from §3.3.
///
/// For class `i` with start step `s_i = i·l`:
///
/// ```text
/// q_t(i) = n                       for t ≤ s_i
/// q_t(i) = n·γ_slow^(t−s_i)        for t > s_i   (0 once it drops below 1)
/// ```
///
/// The auxiliary vector `q̂_{t+1}(i) = q_t(i)·γ_slow − q_t(i)·ρ/(1−ρ)` is
/// the "permanence" threshold: once a class falls below `q̂_{t+1}(i)` while
/// all smaller classes obey `q_t`, migrations from smaller classes can never
/// push it back above `q_{t+1}(i)` (the argument after Lemma 9).
///
/// # Example
///
/// ```
/// use fading_analysis::{ClassBoundSchedule, ScheduleParams};
///
/// let sched = ClassBoundSchedule::new(1000, 5, ScheduleParams::default());
/// // Claim 8: the horizon is finite and Θ(log n + log R).
/// let t_max = sched.horizon();
/// assert!(t_max > 0);
/// for i in 0..5 {
///     assert_eq!(sched.bound(t_max, i), 0.0);
///     assert_eq!(sched.bound(0, i), 1000.0);
/// }
/// ```
#[derive(Debug, Clone)]
pub struct ClassBoundSchedule {
    n: usize,
    num_classes: usize,
    gamma_slow: f64,
    rho: f64,
    stagger: u32,
}

impl ClassBoundSchedule {
    /// Creates the schedule for `n` initial nodes spread over
    /// `num_classes` link classes.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, `num_classes == 0`, or `params` is invalid (see
    /// [`ScheduleParams::gamma_slow`]).
    #[must_use]
    pub fn new(n: usize, num_classes: usize, params: ScheduleParams) -> Self {
        assert!(n > 0, "need at least one node");
        assert!(num_classes > 0, "need at least one link class");
        ClassBoundSchedule {
            n,
            num_classes,
            gamma_slow: params.gamma_slow(),
            rho: params.rho,
            stagger: params.stagger(),
        }
    }

    /// The decay factor `γ_slow`.
    #[must_use]
    pub fn gamma_slow(&self) -> f64 {
        self.gamma_slow
    }

    /// The stagger `l` between class start steps.
    #[must_use]
    pub fn stagger(&self) -> u32 {
        self.stagger
    }

    /// Number of link classes covered.
    #[must_use]
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// The start step `s_i = i·l` before which class `i` owes no progress.
    #[must_use]
    pub fn start_step(&self, class: usize) -> u64 {
        class as u64 * u64::from(self.stagger)
    }

    /// The bound `q_t(i)` (0.0 once the analytic bound drops below 1,
    /// matching the integrality of class sizes).
    #[must_use]
    pub fn bound(&self, t: u64, class: usize) -> f64 {
        let s_i = self.start_step(class);
        if t <= s_i {
            return self.n as f64;
        }
        let steps = (t - s_i) as i32;
        let q = self.n as f64 * self.gamma_slow.powi(steps);
        if q < 1.0 {
            0.0
        } else {
            q
        }
    }

    /// The auxiliary permanence bound
    /// `q̂_{t+1}(i) = q_t(i)·(γ_slow − ρ/(1−ρ))`.
    #[must_use]
    pub fn aux_bound(&self, t_next: u64, class: usize) -> f64 {
        if t_next == 0 {
            return self.n as f64;
        }
        let q_prev = self.bound(t_next - 1, class);
        let raw = q_prev * (self.gamma_slow - self.rho / (1.0 - self.rho));
        // Clamp below 1 to 0, mirroring `bound`: class sizes are integers,
        // so an analytic bound below 1 forces an empty class.
        if raw < 1.0 {
            0.0
        } else {
            raw
        }
    }

    /// Claim 8's horizon `T`: the smallest step at which every class bound
    /// is 0. Equals `s_{m−1} + ⌈log_{1/γ_slow} n⌉ + 1 = Θ(log n + log R)`.
    #[must_use]
    pub fn horizon(&self) -> u64 {
        let decay_steps = ((self.n as f64).ln() / (1.0 / self.gamma_slow).ln()).ceil() as u64 + 1;
        self.start_step(self.num_classes - 1) + decay_steps
    }

    /// Whether the per-class sizes satisfy `n_i ≤ q_t(i)` for every class
    /// (`sizes` may be shorter than `num_classes`; missing classes count as
    /// empty, and classes beyond `num_classes` must be empty).
    #[must_use]
    pub fn satisfied(&self, t: u64, sizes: &[usize]) -> bool {
        for (i, &size) in sizes.iter().enumerate() {
            let bound = if i < self.num_classes {
                self.bound(t, i)
            } else {
                0.0
            };
            if size as f64 > bound {
                return false;
            }
        }
        true
    }

    /// Checks a recorded execution (per-round link-class size vectors,
    /// round 1 first) against the schedule: for each step `t`, finds the
    /// earliest round after which `q_t` holds **permanently** (the paper's
    /// event `r(t)`).
    #[must_use]
    pub fn adherence(&self, size_series: &[Vec<usize>]) -> TraceAdherence {
        let horizon = self.horizon();
        let rounds = size_series.len();
        let mut reached: Vec<Option<u64>> = Vec::with_capacity(horizon as usize + 1);
        for t in 0..=horizon {
            // Last round that violates q_t; r(t) is the round after it.
            let mut last_violation: Option<usize> = None;
            for (r, sizes) in size_series.iter().enumerate() {
                if !self.satisfied(t, sizes) {
                    last_violation = Some(r);
                }
            }
            let r_t = match last_violation {
                None => Some(1),
                Some(r) if r + 1 < rounds => Some(r as u64 + 2), // 1-based round after
                Some(_) => None, // violated through the end: never reached
            };
            reached.push(r_t);
        }
        TraceAdherence { horizon, reached }
    }
}

/// The result of checking an execution trace against a
/// [`ClassBoundSchedule`]: when each event `r(t)` occurred.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceAdherence {
    /// The schedule horizon `T`.
    pub horizon: u64,
    /// `reached[t]` = the 1-based round from which `q_t` held permanently
    /// (`None` if the execution ended still violating `q_t`).
    pub reached: Vec<Option<u64>>,
}

impl TraceAdherence {
    /// The round by which the *final* bound `q_T` (all classes empty … i.e.
    /// at most the winner left) held permanently.
    #[must_use]
    pub fn completion_round(&self) -> Option<u64> {
        self.reached.last().copied().flatten()
    }

    /// Fraction of steps `t ∈ [0, T]` whose event `r(t)` occurred in the
    /// trace.
    #[must_use]
    pub fn coverage(&self) -> f64 {
        if self.reached.is_empty() {
            return 0.0;
        }
        self.reached.iter().filter(|r| r.is_some()).count() as f64 / self.reached.len() as f64
    }

    /// `r(t)` must be monotone non-decreasing in `t` (a later bound is
    /// tighter). Returns `true` if the recorded events respect that.
    #[must_use]
    pub fn is_monotone(&self) -> bool {
        let mut prev = 0u64;
        for r in self.reached.iter().flatten() {
            if *r < prev {
                return false;
            }
            prev = *r;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_params_derive_documented_constants() {
        let p = ScheduleParams::default();
        assert!((p.gamma_slow() - 5.0 / 6.0).abs() < 1e-12);
        assert_eq!(p.stagger(), 8);
    }

    #[test]
    #[should_panic(expected = "below 1")]
    fn params_reject_overflowing_gamma_slow() {
        let p = ScheduleParams {
            gamma: 0.9,
            rho: 0.5,
        }; // 0.9 + 1 = 1.9
        let _ = p.gamma_slow();
    }

    #[test]
    fn bounds_decay_geometrically_after_start() {
        let sched = ClassBoundSchedule::new(100, 3, ScheduleParams::default());
        let l = u64::from(sched.stagger());
        // Class 1 owes nothing before s_1 = l.
        for t in 0..=l {
            assert_eq!(sched.bound(t, 1), 100.0);
        }
        let gs = sched.gamma_slow();
        assert!((sched.bound(l + 1, 1) - 100.0 * gs).abs() < 1e-9);
        assert!((sched.bound(l + 3, 1) - 100.0 * gs.powi(3)).abs() < 1e-9);
    }

    #[test]
    fn bound_clamps_to_zero_below_one() {
        let sched = ClassBoundSchedule::new(10, 1, ScheduleParams::default());
        let t_zero = (0..10_000u64)
            .find(|&t| sched.bound(t, 0) == 0.0)
            .expect("bound eventually reaches 0");
        assert!(sched.bound(t_zero - 1, 0) >= 1.0);
    }

    #[test]
    fn horizon_scales_with_log_n_plus_classes() {
        let p = ScheduleParams::default();
        let a = ClassBoundSchedule::new(1 << 10, 4, p).horizon();
        let b = ClassBoundSchedule::new(1 << 20, 4, p).horizon();
        let c = ClassBoundSchedule::new(1 << 10, 8, p).horizon();
        // Doubling log n adds ~10·ln2/ln(1/γ_slow) ≈ 38 decay steps; extra
        // classes add l each.
        assert!((30..=45).contains(&(b - a)), "b - a = {}", b - a);
        assert_eq!(c - a, 4 * u64::from(p.stagger()));
    }

    #[test]
    fn horizon_bounds_are_all_zero() {
        let sched = ClassBoundSchedule::new(5_000, 6, ScheduleParams::default());
        let t = sched.horizon();
        for i in 0..6 {
            assert_eq!(sched.bound(t, i), 0.0, "class {i}");
            assert!(sched.bound(0, i) > 0.0);
        }
    }

    #[test]
    fn aux_bound_is_tighter() {
        let sched = ClassBoundSchedule::new(1000, 3, ScheduleParams::default());
        for t in 1..sched.horizon() {
            for i in 0..3 {
                assert!(
                    sched.aux_bound(t, i) <= sched.bound(t, i) + 1e-9,
                    "t={t} i={i}"
                );
            }
        }
    }

    #[test]
    fn satisfied_checks_every_class() {
        let sched = ClassBoundSchedule::new(100, 2, ScheduleParams::default());
        assert!(sched.satisfied(0, &[100, 100]));
        assert!(sched.satisfied(0, &[]));
        // Beyond num_classes, only empty classes are acceptable.
        assert!(sched.satisfied(0, &[1, 1, 0]));
        assert!(!sched.satisfied(0, &[1, 1, 1]));
        // After one step class 0 must have decayed.
        assert!(!sched.satisfied(1, &[100, 100]));
        assert!(sched.satisfied(1, &[83, 100]));
    }

    #[test]
    fn adherence_on_ideal_trace() {
        // A fabricated execution in which class sizes exactly track the
        // bounds one round per step: adherence must be full and monotone.
        let sched = ClassBoundSchedule::new(64, 2, ScheduleParams::default());
        let horizon = sched.horizon();
        let series: Vec<Vec<usize>> = (1..=horizon)
            .map(|t| (0..2).map(|i| sched.bound(t, i).floor() as usize).collect())
            .collect();
        let adherence = sched.adherence(&series);
        assert_eq!(adherence.coverage(), 1.0);
        assert!(adherence.is_monotone());
        assert!(adherence.completion_round().is_some());
    }

    #[test]
    fn adherence_detects_persistent_violation() {
        // Class sizes never shrink: only q_0 (and any bound ≥ n) is ever met.
        let sched = ClassBoundSchedule::new(64, 1, ScheduleParams::default());
        let series: Vec<Vec<usize>> = (0..50).map(|_| vec![64usize]).collect();
        let adherence = sched.adherence(&series);
        assert_eq!(adherence.reached[0], Some(1));
        assert!(adherence.completion_round().is_none());
        assert!(adherence.coverage() < 1.0);
    }

    #[test]
    fn adherence_permanence_requires_no_later_violation() {
        // Dips below the bound then bounces back up: r(t) must point past
        // the bounce.
        let sched = ClassBoundSchedule::new(100, 1, ScheduleParams::default());
        // q_1(0) = 100·(5/6) ≈ 83.3.
        let series = vec![vec![100], vec![80], vec![90], vec![70], vec![60]];
        let adherence = sched.adherence(&series);
        // Violations of q_1 at rounds 1 (100) and 3 (90): permanent from 4.
        assert_eq!(adherence.reached[1], Some(4));
    }
}
