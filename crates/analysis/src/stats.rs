//! Statistics: ordinary least squares fits for scaling-law identification.
//!
//! The experiments fit measured round counts against candidate complexity
//! models (`log n`, `log² n`, `log n + log R`, …) and compare explanatory
//! power via `R²`. A reproduction "matches the shape" of Theorem 1 when the
//! `log n` model fits FKN on uniform deployments with high `R²` and a
//! near-zero quadratic residual, while Decay on the radio channel needs the
//! `log² n` term.

use serde::{Deserialize, Serialize};

// The workspace's canonical quantile estimator lives in
// `fading_sim::montecarlo` (it is what `Summary` uses for medians and
// p95s); re-exported here so analysis code never grows a second,
// subtly-different copy. Note `fading_hitting::WinDistribution::quantile`
// is deliberately *not* this estimator: it computes an upper empirical
// quantile over a distribution whose failure mass sits at +∞, where
// interpolation would be meaningless.
pub use fading_sim::montecarlo::{percentile, percentile_f64};

/// An ordinary-least-squares line fit `y ≈ slope·x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinearFit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination `R² ∈ [0, 1]` (1 for a perfect line;
    /// defined as 0 when the data has no variance).
    pub r_squared: f64,
}

impl LinearFit {
    /// Predicted value at `x`.
    #[must_use]
    pub fn predict(&self, x: f64) -> f64 {
        self.slope * x + self.intercept
    }
}

/// Fits `y ≈ slope·x + intercept` by ordinary least squares.
///
/// # Panics
///
/// Panics if the slices have different lengths or fewer than 2 points, or
/// if all `x` are identical (the slope is then undefined).
///
/// # Example
///
/// ```
/// use fading_analysis::stats::linear_fit;
/// let fit = linear_fit(&[1.0, 2.0, 3.0], &[2.0, 4.0, 6.0]);
/// assert!((fit.slope - 2.0).abs() < 1e-12);
/// assert!((fit.r_squared - 1.0).abs() < 1e-12);
/// ```
#[must_use]
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> LinearFit {
    assert_eq!(xs.len(), ys.len(), "x and y must have equal length");
    assert!(xs.len() >= 2, "need at least two points");
    let n = xs.len() as f64;
    let mean_x = xs.iter().sum::<f64>() / n;
    let mean_y = ys.iter().sum::<f64>() / n;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        sxx += (x - mean_x) * (x - mean_x);
        sxy += (x - mean_x) * (y - mean_y);
        syy += (y - mean_y) * (y - mean_y);
    }
    assert!(sxx > 0.0, "all x values are identical");
    let slope = sxy / sxx;
    let intercept = mean_y - slope * mean_x;
    let r_squared = if syy == 0.0 {
        // No variance in y: the horizontal line is a perfect fit.
        1.0
    } else {
        (sxy * sxy) / (sxx * syy)
    };
    LinearFit {
        slope,
        intercept,
        r_squared,
    }
}

/// Fits `rounds ≈ a·log₂(n) + b`: the shape of Theorem 1 on deployments
/// with `R` polynomial in `n`.
///
/// # Panics
///
/// Propagates the panics of [`linear_fit`]; additionally panics if any `n`
/// is zero.
#[must_use]
pub fn fit_log_n(ns: &[usize], rounds: &[f64]) -> LinearFit {
    let xs: Vec<f64> = ns
        .iter()
        .map(|&n| {
            assert!(n > 0, "n must be positive");
            (n as f64).log2()
        })
        .collect();
    linear_fit(&xs, rounds)
}

/// Fits `rounds ≈ a·log₂²(n) + b`: the radio-network-model shape.
///
/// # Panics
///
/// Propagates the panics of [`linear_fit`]; additionally panics if any `n`
/// is zero.
#[must_use]
pub fn fit_log_squared_n(ns: &[usize], rounds: &[f64]) -> LinearFit {
    let xs: Vec<f64> = ns
        .iter()
        .map(|&n| {
            assert!(n > 0, "n must be positive");
            let l = (n as f64).log2();
            l * l
        })
        .collect();
    linear_fit(&xs, rounds)
}

/// Fits `rounds ≈ a·(log₂ n + log₂ R) + b`: the full Theorem 1 shape with
/// an explicit `R` term (used on the chain deployments of experiment E2
/// where `log R ≫ log n`).
///
/// # Panics
///
/// Propagates the panics of [`linear_fit`]; additionally panics on
/// non-positive `n` or `R < 1`.
#[must_use]
pub fn fit_log_n_plus_log_r(ns: &[usize], rs: &[f64], rounds: &[f64]) -> LinearFit {
    assert_eq!(ns.len(), rs.len(), "n and R must have equal length");
    let xs: Vec<f64> = ns
        .iter()
        .zip(rs)
        .map(|(&n, &r)| {
            assert!(n > 0, "n must be positive");
            assert!(r >= 1.0, "R must be at least 1");
            (n as f64).log2() + r.log2()
        })
        .collect();
    linear_fit(&xs, rounds)
}

/// Pearson correlation coefficient.
///
/// # Panics
///
/// Panics if the slices differ in length, have fewer than 2 points, or
/// either has zero variance.
#[must_use]
pub fn correlation(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "x and y must have equal length");
    assert!(xs.len() >= 2, "need at least two points");
    let n = xs.len() as f64;
    let mean_x = xs.iter().sum::<f64>() / n;
    let mean_y = ys.iter().sum::<f64>() / n;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        sxx += (x - mean_x) * (x - mean_x);
        sxy += (x - mean_x) * (y - mean_y);
        syy += (y - mean_y) * (y - mean_y);
    }
    assert!(sxx > 0.0 && syy > 0.0, "zero variance");
    sxy / (sxx * syy).sqrt()
}

/// Sample mean.
///
/// # Panics
///
/// Panics on an empty slice.
#[must_use]
pub fn mean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "mean of empty slice");
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation (n − 1 denominator; 0 for a single point).
///
/// # Panics
///
/// Panics on an empty slice.
#[must_use]
pub fn std_dev(xs: &[f64]) -> f64 {
    let m = mean(xs);
    if xs.len() < 2 {
        return 0.0;
    }
    let var = xs.iter().map(|&x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64;
    var.sqrt()
}

/// A 95% confidence interval for the mean (normal approximation:
/// `mean ± 1.96·σ/√n`). Adequate for the trial counts (≥ 25) used by the
/// experiment harness.
///
/// # Panics
///
/// Panics on an empty slice.
///
/// # Example
///
/// ```
/// use fading_analysis::stats::mean_ci95;
/// let (lo, hi) = mean_ci95(&[10.0, 12.0, 11.0, 9.0, 13.0]);
/// assert!(lo < 11.0 && 11.0 < hi);
/// ```
#[must_use]
pub fn mean_ci95(xs: &[f64]) -> (f64, f64) {
    let m = mean(xs);
    let half = 1.96 * std_dev(xs) / (xs.len() as f64).sqrt();
    (m - half, m + half)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_line_has_r2_one() {
        let fit = linear_fit(&[0.0, 1.0, 2.0, 3.0], &[5.0, 7.0, 9.0, 11.0]);
        assert!((fit.slope - 2.0).abs() < 1e-12);
        assert!((fit.intercept - 5.0).abs() < 1e-12);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
        assert!((fit.predict(10.0) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn noisy_line_has_lower_r2() {
        let xs = [0.0, 1.0, 2.0, 3.0, 4.0];
        let ys = [0.0, 2.5, 1.5, 4.5, 3.5];
        let fit = linear_fit(&xs, &ys);
        assert!(fit.r_squared < 1.0);
        assert!(fit.r_squared > 0.5);
        assert!(fit.slope > 0.0);
    }

    #[test]
    fn constant_y_is_perfectly_explained() {
        let fit = linear_fit(&[1.0, 2.0, 3.0], &[4.0, 4.0, 4.0]);
        assert_eq!(fit.slope, 0.0);
        assert_eq!(fit.r_squared, 1.0);
    }

    #[test]
    #[should_panic(expected = "identical")]
    fn degenerate_x_panics() {
        let _ = linear_fit(&[1.0, 1.0], &[1.0, 2.0]);
    }

    #[test]
    fn log_n_model_recovers_synthetic_log_data() {
        let ns = [16usize, 64, 256, 1024, 4096];
        let rounds: Vec<f64> = ns.iter().map(|&n| 3.0 * (n as f64).log2() + 7.0).collect();
        let fit = fit_log_n(&ns, &rounds);
        assert!((fit.slope - 3.0).abs() < 1e-9);
        assert!((fit.intercept - 7.0).abs() < 1e-9);
        assert!(fit.r_squared > 0.999);
    }

    #[test]
    fn log_squared_model_beats_log_on_quadratic_data() {
        let ns = [16usize, 64, 256, 1024, 4096, 16384];
        let rounds: Vec<f64> = ns
            .iter()
            .map(|&n| {
                let l = (n as f64).log2();
                0.5 * l * l + 2.0
            })
            .collect();
        let quad = fit_log_squared_n(&ns, &rounds);
        let lin = fit_log_n(&ns, &rounds);
        assert!(quad.r_squared > 0.999);
        assert!(quad.r_squared > lin.r_squared);
    }

    #[test]
    fn log_n_plus_log_r_fits_chain_style_data() {
        let ns = [8usize, 8, 8, 8];
        let rs = [16.0f64, 256.0, 4096.0, 65536.0];
        let rounds: Vec<f64> = ns
            .iter()
            .zip(&rs)
            .map(|(&n, &r)| 2.0 * ((n as f64).log2() + r.log2()) + 1.0)
            .collect();
        let fit = fit_log_n_plus_log_r(&ns, &rs, &rounds);
        assert!((fit.slope - 2.0).abs() < 1e-9);
        assert!(fit.r_squared > 0.999);
    }

    #[test]
    fn correlation_signs() {
        assert!((correlation(&[1.0, 2.0, 3.0], &[2.0, 4.0, 6.0]) - 1.0).abs() < 1e-12);
        assert!((correlation(&[1.0, 2.0, 3.0], &[6.0, 4.0, 2.0]) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn mean_and_std() {
        assert_eq!(mean(&[2.0, 4.0, 6.0]), 4.0);
        assert!((std_dev(&[2.0, 4.0, 6.0]) - 2.0).abs() < 1e-12);
        assert_eq!(std_dev(&[5.0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn mean_rejects_empty() {
        let _ = mean(&[]);
    }

    #[test]
    fn ci95_tightens_with_more_samples() {
        let few: Vec<f64> = (0..10).map(|i| f64::from(i % 3)).collect();
        let many: Vec<f64> = (0..1000).map(|i| f64::from(i % 3)).collect();
        let (lo_f, hi_f) = mean_ci95(&few);
        let (lo_m, hi_m) = mean_ci95(&many);
        assert!(hi_m - lo_m < hi_f - lo_f);
    }

    #[test]
    fn ci95_of_constant_data_is_a_point() {
        let (lo, hi) = mean_ci95(&[4.0, 4.0, 4.0]);
        assert_eq!(lo, 4.0);
        assert_eq!(hi, 4.0);
    }

    /// The re-exported percentile IS the montecarlo one (same function,
    /// not a copy): spot-check exact agreement across sizes and ties,
    /// including the degenerate n=1,2,3 cases and duplicate-heavy data.
    #[test]
    fn percentile_reexport_agrees_with_montecarlo_everywhere() {
        let cases: &[&[u64]] = &[
            &[5],
            &[1, 9],
            &[1, 1, 1],
            &[2, 2, 7],
            &[1, 2, 3, 4, 100],
            &[10, 10, 10, 10, 10, 99],
        ];
        for sorted in cases {
            let as_f64: Vec<f64> = sorted.iter().map(|&v| v as f64).collect();
            for q in [0.0, 10.0, 25.0, 50.0, 75.0, 95.0, 100.0] {
                let canonical = fading_sim::montecarlo::percentile(sorted, q);
                assert_eq!(percentile(sorted, q), canonical, "{sorted:?} q={q}");
                assert_eq!(percentile_f64(&as_f64, q), canonical, "{sorted:?} q={q} (f64)");
            }
        }
        // The median of [10, 20] interpolates — the property the canonical
        // estimator guarantees and an index-based copy would get wrong.
        assert_eq!(percentile(&[10, 20], 50.0), 15.0);
    }
}
