//! Interference accounting at the nodes of `S_i` (Lemmas 3 and 4).
//!
//! The heart of §3.2: a member `u ∈ S_i` with partner `v` is knocked out in
//! a round where `v` transmits, `u` listens, and the total interference at
//! `u` stays below `c·P/(unit·2^i)^α`. Lemma 3 bounds the *outside*
//! interference (transmitters not in `S_i ∪ T_i`) with high probability in
//! `|S_i|`; Lemma 4 bounds the *inside* interference (other members and
//! partners) deterministically, even if all of them transmit at once.
//!
//! This module measures both quantities on concrete round snapshots so the
//! lemmas can be validated numerically.

use fading_channel::{pow_alpha, NodeId, SinrParams};
use fading_geom::Point;

use crate::SeparatedSubset;

/// Interference measured at one member of `S_i` for one round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InterferenceSample {
    /// The member of `S_i`.
    pub member: NodeId,
    /// Its partner in `T_i`.
    pub partner: NodeId,
    /// Interference from transmitters **outside** `S_i ∪ T_i` (Lemma 3's
    /// quantity).
    pub outside: f64,
    /// Interference from transmitters **inside** `S_i ∪ T_i`, excluding the
    /// member itself and its partner (Lemma 4's quantity).
    pub inside: f64,
    /// The signal strength the partner would deliver (`P/d(u,v)^α`).
    pub partner_signal: f64,
}

impl InterferenceSample {
    /// Total interference (outside + inside).
    #[must_use]
    pub fn total(&self) -> f64 {
        self.outside + self.inside
    }

    /// Whether the partner's transmission would be decoded against the
    /// measured interference under the given model parameters.
    #[must_use]
    pub fn partner_decodable(&self, params: &SinrParams) -> bool {
        self.partner_signal >= params.beta() * (params.noise() + self.total())
    }
}

/// The unit interference budget for class `i`: `P / (unit·2^i)^α` — the
/// budgets of Lemmas 3 and 4 are constant multiples of this quantity.
///
/// # Example
///
/// ```
/// use fading_analysis::budget_unit;
/// use fading_channel::SinrParams;
///
/// let params = SinrParams::builder().power(8.0).alpha(3.0).build()?;
/// // Class 1 with unit 1: (2)^3 = 8, so the unit budget is 1.
/// assert_eq!(budget_unit(&params, 1.0, 1), 1.0);
/// # Ok::<(), fading_channel::ChannelError>(())
/// ```
#[must_use]
pub fn budget_unit(params: &SinrParams, unit: f64, class: usize) -> f64 {
    let d = unit * 2f64.powi(class as i32);
    params.power() / pow_alpha(d * d, params.alpha())
}

/// Measures per-member interference at every node of `S_i` for a given
/// transmitter set (one round snapshot).
///
/// `transmitters` may contain members of `S_i` and partners; each sample
/// splits their contribution into the inside component per the lemma
/// definitions.
#[must_use]
pub fn measure_interference(
    positions: &[Point],
    subset: &SeparatedSubset,
    params: &SinrParams,
    transmitters: &[NodeId],
) -> Vec<InterferenceSample> {
    let p = params.power();
    let alpha = params.alpha();
    let members = subset.members();
    let partners = subset.partners();
    let in_set = |w: NodeId| members.contains(&w) || partners.contains(&w);

    members
        .iter()
        .zip(partners)
        .map(|(&u, &v)| {
            let up = positions[u];
            let mut outside = 0.0;
            let mut inside = 0.0;
            for &w in transmitters {
                if w == u || w == v {
                    continue;
                }
                let contribution = p / pow_alpha(positions[w].distance_sq(up), alpha);
                if in_set(w) {
                    inside += contribution;
                } else {
                    outside += contribution;
                }
            }
            let partner_signal = p / pow_alpha(positions[v].distance_sq(up), alpha);
            InterferenceSample {
                member: u,
                partner: v,
                outside,
                inside,
                partner_signal,
            }
        })
        .collect()
}

/// Lemma 4's deterministic worst case: the inside interference at each
/// member of `S_i` if **every** node of `S_i ∪ T_i` (except the member and
/// its partner) transmitted simultaneously.
#[must_use]
pub fn lemma4_worst_case(
    positions: &[Point],
    subset: &SeparatedSubset,
    params: &SinrParams,
) -> Vec<f64> {
    let everyone: Vec<NodeId> = subset
        .members()
        .iter()
        .chain(subset.partners())
        .copied()
        .collect();
    measure_interference(positions, subset, params, &everyone)
        .into_iter()
        .map(|s| s.inside)
        .collect()
}

/// Summary of a Lemma 3 / Lemma 4 check over one round: the fraction of
/// `S_i` members whose measured interference stays within `c` budget units.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LemmaCheck {
    /// Members measured.
    pub members: usize,
    /// Fraction with outside interference `≤ c_outside` budget units.
    pub outside_ok_fraction: f64,
    /// Fraction with worst-case inside interference `≤ c_inside` units.
    pub inside_ok_fraction: f64,
    /// The largest observed outside interference, in budget units.
    pub max_outside_units: f64,
    /// The largest observed worst-case inside interference, in budget units.
    pub max_inside_units: f64,
}

/// Checks Lemmas 3 and 4 numerically on one round snapshot.
///
/// Lemma 3 asserts that with probability `1 − e^{−Ω(|S_i|)}` at least half
/// the members see outside interference at most `c_outside` units; Lemma 4
/// asserts every member's inside interference is at most `c_inside` units
/// *deterministically* (given sufficient separation `s`). Returns the
/// measured fractions so experiments can report them.
#[must_use]
pub fn check_lemmas(
    positions: &[Point],
    subset: &SeparatedSubset,
    params: &SinrParams,
    unit: f64,
    transmitters: &[NodeId],
    c_outside: f64,
    c_inside: f64,
) -> LemmaCheck {
    let unit_budget = budget_unit(params, unit, subset.class());
    let samples = measure_interference(positions, subset, params, transmitters);
    let worst_inside = lemma4_worst_case(positions, subset, params);
    let members = samples.len();
    if members == 0 {
        return LemmaCheck {
            members: 0,
            outside_ok_fraction: 1.0,
            inside_ok_fraction: 1.0,
            max_outside_units: 0.0,
            max_inside_units: 0.0,
        };
    }
    let outside_ok = samples
        .iter()
        .filter(|s| s.outside <= c_outside * unit_budget)
        .count();
    let inside_ok = worst_inside
        .iter()
        .filter(|&&x| x <= c_inside * unit_budget)
        .count();
    LemmaCheck {
        members,
        outside_ok_fraction: outside_ok as f64 / members as f64,
        inside_ok_fraction: inside_ok as f64 / members as f64,
        max_outside_units: samples
            .iter()
            .map(|s| s.outside / unit_budget)
            .fold(0.0, f64::max),
        max_inside_units: worst_inside
            .iter()
            .map(|&x| x / unit_budget)
            .fold(0.0, f64::max),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{separated_subset, GoodNodes, LinkClasses};

    fn params() -> SinrParams {
        SinrParams::builder()
            .power(16.0)
            .alpha(3.0)
            .beta(2.0)
            .noise(1.0)
            .build()
            .unwrap()
    }

    /// Two far-apart class-0 pairs.
    fn two_pairs() -> (Vec<Point>, SeparatedSubset, LinkClasses) {
        let positions = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(100.0, 0.0),
            Point::new(101.0, 0.0),
        ];
        let active: Vec<NodeId> = (0..4).collect();
        let classes = LinkClasses::partition(&positions, &active, 1.0);
        let good = GoodNodes::classify(&positions, &active, &classes, 3.0);
        let subset = separated_subset(&positions, &classes, &good, 0, 3.0);
        (positions, subset, classes)
    }

    #[test]
    fn budget_unit_formula() {
        let p = params();
        // class 2, unit 1: d = 4, 16/64 = 0.25.
        assert!((budget_unit(&p, 1.0, 2) - 0.25).abs() < 1e-12);
        // unit 2 doubles d: 16/512.
        assert!((budget_unit(&p, 2.0, 2) - 16.0 / 512.0).abs() < 1e-12);
    }

    #[test]
    fn no_transmitters_means_zero_interference() {
        let (positions, subset, _) = two_pairs();
        let samples = measure_interference(&positions, &subset, &params(), &[]);
        assert_eq!(samples.len(), 2);
        for s in samples {
            assert_eq!(s.outside, 0.0);
            assert_eq!(s.inside, 0.0);
            assert!(s.partner_signal > 0.0);
        }
    }

    #[test]
    fn partner_contribution_is_excluded() {
        let (positions, subset, _) = two_pairs();
        // Only the partners transmit: at each member, its own partner is
        // excluded and the *other* pair's nodes are inside contributors.
        let transmitters: Vec<NodeId> = subset.partners().to_vec();
        let samples = measure_interference(&positions, &subset, &params(), &transmitters);
        for s in &samples {
            assert_eq!(s.outside, 0.0);
            // The other pair is ~100 away: tiny but nonzero inside term.
            assert!(s.inside > 0.0 && s.inside < 1e-3, "{s:?}");
        }
    }

    #[test]
    fn outside_transmitter_is_counted_outside() {
        let (mut positions, _, _) = two_pairs();
        // Add a fifth, non-member node near the first pair.
        positions.push(Point::new(0.0, 3.0));
        let active: Vec<NodeId> = (0..5).collect();
        let classes = LinkClasses::partition(&positions, &active, 1.0);
        let good = GoodNodes::classify(&positions, &active, &classes, 3.0);
        let subset = separated_subset(&positions, &classes, &good, 0, 3.0);
        let samples = measure_interference(&positions, &subset, &params(), &[4]);
        let near = samples
            .iter()
            .find(|s| s.member == 0 || s.member == 1)
            .expect("first pair has a representative");
        assert!(near.outside > 0.0);
        assert_eq!(near.inside, 0.0);
    }

    #[test]
    fn lemma4_worst_case_is_small_for_separated_pairs() {
        let (positions, subset, _) = two_pairs();
        let p = params();
        let worst = lemma4_worst_case(&positions, &subset, &p);
        let unit_budget = budget_unit(&p, 1.0, 0);
        for w in worst {
            // Pairs are 100 apart; inside interference must be far below
            // one budget unit.
            assert!(w < 0.01 * unit_budget, "inside {w} vs unit {unit_budget}");
        }
    }

    #[test]
    fn decodability_matches_sinr_rule() {
        let (positions, subset, _) = two_pairs();
        let p = params();
        let samples = measure_interference(&positions, &subset, &p, &[]);
        for s in samples {
            // Signal 16 over noise 1, threshold 2: decodable.
            assert!(s.partner_decodable(&p));
        }
    }

    #[test]
    fn check_lemmas_reports_fractions() {
        let (positions, subset, _) = two_pairs();
        let p = params();
        let check = check_lemmas(&positions, &subset, &p, 1.0, &[], 1.0, 1.0);
        assert_eq!(check.members, 2);
        assert_eq!(check.outside_ok_fraction, 1.0);
        assert_eq!(check.inside_ok_fraction, 1.0);
        assert_eq!(check.max_outside_units, 0.0);
    }

    #[test]
    fn empty_subset_check_is_vacuous() {
        let (positions, _, classes) = two_pairs();
        let good = GoodNodes::classify(&positions, &[0, 1, 2, 3], &classes, 3.0);
        let empty = separated_subset(&positions, &classes, &good, 9, 3.0);
        let check = check_lemmas(&positions, &empty, &params(), 1.0, &[0], 1.0, 1.0);
        assert_eq!(check.members, 0);
        assert_eq!(check.outside_ok_fraction, 1.0);
    }
}
