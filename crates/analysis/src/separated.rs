//! The well-separated good subsets `S_i` and partner sets `T_i`
//! (Lemmas 2–4 of the paper).

use fading_channel::NodeId;
use fading_geom::Point;

use crate::{GoodNodes, LinkClasses};

/// The separation constant `s` from Lemma 4: for a target interference
/// budget `c` at each node of `S_i`, it suffices to keep nodes of `S_i`
/// pairwise further than `(s+1)·2^i` apart with
///
/// ```text
/// s = (96 / (c·(1 − 2^{−ε})))^{1/ε},   ε = α/2 − 1.
/// ```
///
/// # Panics
///
/// Panics if `alpha <= 2` or `c <= 0`.
///
/// # Example
///
/// ```
/// use fading_analysis::lemma4_separation;
/// let s = lemma4_separation(3.0, 1.0);
/// assert!(s > 1.0);
/// ```
#[must_use]
pub fn lemma4_separation(alpha: f64, c: f64) -> f64 {
    assert!(alpha > 2.0, "the fading model requires alpha > 2");
    assert!(c > 0.0, "interference budget must be positive");
    let eps = alpha / 2.0 - 1.0;
    (96.0 / (c * (1.0 - 2f64.powf(-eps)))).powf(1.0 / eps)
}

/// A well-separated subset `S_i` of the good nodes of one link class,
/// together with the partner set `T_i`.
#[derive(Debug, Clone)]
pub struct SeparatedSubset {
    class: usize,
    members: Vec<NodeId>,
    partners: Vec<NodeId>,
}

impl SeparatedSubset {
    /// The link class index `i` this subset was built for.
    #[must_use]
    pub fn class(&self) -> usize {
        self.class
    }

    /// The nodes of `S_i`, in increasing id order.
    #[must_use]
    pub fn members(&self) -> &[NodeId] {
        &self.members
    }

    /// `T_i`: for each member (same position in the slice), its partner —
    /// the member's closest active node.
    #[must_use]
    pub fn partners(&self) -> &[NodeId] {
        &self.partners
    }

    /// `|S_i|`.
    #[must_use]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// `true` if `S_i` is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }
}

/// Greedily constructs `S_i ⊆ V_i`: a maximal subset of the *good* nodes of
/// class `d_i` with pairwise distance strictly greater than
/// `(s + 1)·unit·2^i`, plus the partner set `T_i` (each member's nearest
/// active node, per the paper's definition; ties broken toward smaller id by
/// the underlying nearest-neighbor query).
///
/// Greedy maximality gives the constant-fraction guarantee of Lemma 2: a
/// disk-packing argument shows `|S_i| = Θ(#good nodes in V_i)`.
///
/// # Example
///
/// ```
/// use fading_analysis::{separated_subset, GoodNodes, LinkClasses};
/// use fading_geom::{Deployment, Point};
///
/// // Two tight pairs far apart: both pairs' nodes are good, and one node
/// // per location survives the separation filter.
/// let d = Deployment::from_points(vec![
///     Point::new(0.0, 0.0),
///     Point::new(1.0, 0.0),
///     Point::new(100.0, 0.0),
///     Point::new(101.0, 0.0),
/// ]).unwrap();
/// let active: Vec<usize> = (0..4).collect();
/// let classes = LinkClasses::partition(d.points(), &active, 1.0);
/// let good = GoodNodes::classify(d.points(), &active, &classes, 3.0);
/// let s0 = separated_subset(d.points(), &classes, &good, 0, 3.0);
/// assert_eq!(s0.len(), 2); // one per far-apart pair
/// assert_eq!(s0.partners().len(), 2);
/// ```
#[must_use]
pub fn separated_subset(
    positions: &[Point],
    classes: &LinkClasses,
    good: &GoodNodes,
    class: usize,
    s: f64,
) -> SeparatedSubset {
    let min_sep = (s + 1.0) * classes.unit() * 2f64.powi(class as i32);
    let mut members: Vec<NodeId> = Vec::new();
    for &u in classes.members(class) {
        if !good.is_good(u) {
            continue;
        }
        let up = positions[u];
        let far_enough = members.iter().all(|&v| positions[v].distance(up) > min_sep);
        if far_enough {
            members.push(u);
        }
    }
    let partners: Vec<NodeId> = members
        .iter()
        .map(|&u| match classes.nearest_active(u) {
            Some((partner, _)) => partner,
            None => unreachable!("a classed node has an active nearest neighbor"),
        })
        .collect();
    SeparatedSubset {
        class,
        members,
        partners,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(coords: &[(f64, f64)]) -> Vec<Point> {
        coords.iter().map(|&(x, y)| Point::new(x, y)).collect()
    }

    fn build(positions: &[Point], s: f64, class: usize) -> (LinkClasses, SeparatedSubset) {
        let active: Vec<NodeId> = (0..positions.len()).collect();
        let classes = LinkClasses::partition(positions, &active, 1.0);
        let good = GoodNodes::classify(positions, &active, &classes, 3.0);
        let subset = separated_subset(positions, &classes, &good, class, s);
        (classes, subset)
    }

    #[test]
    fn lemma4_constant_decreases_with_budget() {
        // A larger allowed interference budget needs less separation.
        let tight = lemma4_separation(3.0, 0.1);
        let loose = lemma4_separation(3.0, 10.0);
        assert!(tight > loose);
    }

    #[test]
    fn lemma4_constant_formula() {
        // α = 4 → ε = 1: s = 96/(c·(1 − 1/2)) = 192/c.
        assert!((lemma4_separation(4.0, 1.0) - 192.0).abs() < 1e-9);
        assert!((lemma4_separation(4.0, 2.0) - 96.0).abs() < 1e-9);
    }

    #[test]
    fn members_are_pairwise_separated() {
        // Tight pairs spaced 40 apart on a line: class 0 everywhere.
        let mut coords = Vec::new();
        for k in 0..10 {
            let x = f64::from(k) * 40.0;
            coords.push((x, 0.0));
            coords.push((x + 1.0, 0.0));
        }
        let positions = pts(&coords);
        let (classes, subset) = build(&positions, 3.0, 0);
        let min_sep = (3.0 + 1.0) * classes.unit(); // class 0
        for (a, &u) in subset.members().iter().enumerate() {
            for &v in &subset.members()[a + 1..] {
                assert!(positions[u].distance(positions[v]) > min_sep);
            }
        }
        // One node per pair survives at this spacing.
        assert_eq!(subset.len(), 10);
    }

    #[test]
    fn greedy_is_maximal() {
        // No excluded good node could be added without violating separation.
        let mut coords = Vec::new();
        for k in 0..8 {
            let x = f64::from(k) * 3.0;
            coords.push((x, 0.0));
            coords.push((x + 1.0, 0.0));
        }
        let positions = pts(&coords);
        let active: Vec<NodeId> = (0..positions.len()).collect();
        let classes = LinkClasses::partition(&positions, &active, 1.0);
        let good = GoodNodes::classify(&positions, &active, &classes, 3.0);
        let subset = separated_subset(&positions, &classes, &good, 0, 3.0);
        let min_sep = 4.0;
        for &u in classes.members(0) {
            if !good.is_good(u) || subset.members().contains(&u) {
                continue;
            }
            let blocked = subset
                .members()
                .iter()
                .any(|&v| positions[v].distance(positions[u]) <= min_sep);
            assert!(blocked, "good node {u} could have been added");
        }
    }

    #[test]
    fn lemma2_constant_fraction_on_dense_class() {
        // 100 tight pairs on a 10×10 super-grid, spacing 50: every node is
        // good and in class 0; S_0 must contain a constant fraction.
        let mut coords = Vec::new();
        for r in 0..10 {
            for c in 0..10 {
                let x = f64::from(c) * 50.0;
                let y = f64::from(r) * 50.0;
                coords.push((x, y));
                coords.push((x + 1.0, y));
            }
        }
        let positions = pts(&coords);
        let (classes, subset) = build(&positions, 3.0, 0);
        let good_total = classes.count(0);
        assert_eq!(good_total, 200);
        // Pairs are 50 apart; separation needed is 4, so one node per pair
        // qualifies and no two pair-representatives conflict: |S_0| = 100.
        assert_eq!(subset.len(), 100);
        assert!(
            subset.len() * 2 >= good_total / 2,
            "not a constant fraction"
        );
    }

    #[test]
    fn partners_are_nearest_active_nodes() {
        let positions = pts(&[(0.0, 0.0), (1.0, 0.0), (200.0, 0.0), (201.0, 0.0)]);
        let (classes, subset) = build(&positions, 3.0, 0);
        for (k, &u) in subset.members().iter().enumerate() {
            let partner = subset.partners()[k];
            assert_eq!(classes.nearest_active(u).unwrap().0, partner);
            assert_ne!(partner, u);
        }
    }

    #[test]
    fn empty_class_gives_empty_subset() {
        let positions = pts(&[(0.0, 0.0), (1.0, 0.0)]);
        let (_classes, subset) = build(&positions, 3.0, 5);
        assert!(subset.is_empty());
        assert_eq!(subset.class(), 5);
        assert_eq!(subset.len(), 0);
    }

    #[test]
    fn bad_nodes_are_excluded() {
        // Reuse the overloaded configuration: the class-4 node is bad and
        // must not appear in S_4.
        let mut coords = vec![(0.0, 0.0), (16.0, 0.0)];
        for r in 0..11 {
            for c in 0..11 {
                coords.push((f64::from(c) - 5.0, 24.0 + f64::from(r) - 5.0));
            }
        }
        let positions = pts(&coords);
        let active: Vec<NodeId> = (0..positions.len()).collect();
        let classes = LinkClasses::partition(&positions, &active, 1.0);
        let good = GoodNodes::classify(&positions, &active, &classes, 3.0);
        let s4 = separated_subset(&positions, &classes, &good, 4, 1.0);
        assert!(!s4.members().contains(&0));
    }
}
