//! # fading-analysis
//!
//! The analysis machinery of Section 3 of *Contention Resolution on a Fading
//! Channel* (Fineman, Gilbert, Kuhn, Newport — PODC 2016), reified as
//! executable code so every lemma can be validated empirically.
//!
//! * [`LinkClasses`] — the partition of active nodes into classes
//!   `d_0, d_1, …, d_{⌈log R⌉}` by nearest-active-neighbor distance
//!   (`d_i` holds nodes whose nearest neighbor lies in `[2^i, 2^{i+1})`).
//! * [`annulus_count`] / [`good_threshold`] / [`GoodNodes`] — the exponential
//!   annuli `A^i_t(u)` and Definition 1's *good node* predicate
//!   (`|A^i_t(u)| ≤ 96·2^{t(α−ε)}`, `ε = α/2 − 1`).
//! * [`separated_subset`] — the well-spaced good subset `S_i` (pairwise
//!   distance `> (s+1)·2^i`) and its partner set `T_i` (Lemmas 2–4).
//! * [`measure_interference`] / [`check_lemmas`] — numerical verification
//!   of the Lemma 3 (outside) and Lemma 4 (inside) interference budgets at
//!   the nodes of `S_i`.
//! * [`ClassBoundSchedule`] — the class-bound vectors `q_t` and the
//!   auxiliary `q̂_t` of §3.3, with the `T = Θ(log n + log R)` horizon
//!   (Claim 8) and a trace-adherence checker (Lemma 10 / Theorem 1).
//! * [`stats`] — ordinary least squares fits used to test which of
//!   `log n`, `log² n`, `log n + log R` best explains measured round counts.
//!
//! # Example
//!
//! ```
//! use fading_analysis::LinkClasses;
//! use fading_geom::{Deployment, Point};
//!
//! let d = Deployment::from_points(vec![
//!     Point::new(0.0, 0.0),
//!     Point::new(1.0, 0.0),   // pair at distance 1 → class 0
//!     Point::new(100.0, 0.0),
//!     Point::new(105.0, 0.0), // pair at distance 5 → class 2
//! ]).unwrap();
//! let active: Vec<usize> = (0..4).collect();
//! let classes = LinkClasses::partition(d.points(), &active, d.min_link());
//! assert_eq!(classes.count(0), 2);
//! assert_eq!(classes.count(2), 2);
//! assert_eq!(classes.count_below(2), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

mod good;
mod interference;
mod link_classes;
mod schedule;
mod separated;
pub mod stats;
mod timeline;

pub use good::{annulus_count, good_threshold, GoodNodes};
pub use interference::{
    budget_unit, check_lemmas, lemma4_worst_case, measure_interference, InterferenceSample,
    LemmaCheck,
};
pub use link_classes::LinkClasses;
pub use schedule::{ClassBoundSchedule, ScheduleParams, TraceAdherence};
pub use separated::{lemma4_separation, separated_subset, SeparatedSubset};
pub use timeline::{ExecutionTimeline, TimelineEntry};
