//! Exponential annuli and Definition 1's *good nodes*.

use fading_channel::NodeId;
use fading_geom::{GridIndex, Point};

use crate::LinkClasses;

/// The number of **active** nodes in the exponential annulus `A^i_t(u)`:
/// nodes at distance in `(unit·2^t·2^i, unit·2^{t+1}·2^i]` from `u` — i.e.
/// `B(u, 2^{t+1}·2^i) \ B(u, 2^t·2^i)` in the paper's normalized units
/// (the paper sets the shortest link to 1; `unit` carries that scale for
/// unnormalized deployments).
///
/// `index` must be built over the positions of the *active* nodes only;
/// `u_pos` is the center (whether or not it is itself indexed — a node never
/// counts itself because its distance is 0, inside the excluded inner ball).
#[must_use]
pub fn annulus_count(index: &GridIndex, u_pos: Point, unit: f64, i: u32, t: u32) -> usize {
    let inner = unit * 2f64.powi(t as i32) * 2f64.powi(i as i32);
    let outer = 2.0 * inner;
    index.count_in_annulus(u_pos, inner, outer)
}

/// Definition 1's per-annulus budget: a node of class `d_i` is *good* if
/// every annulus `A^i_t(u)` holds at most `96·2^{t(α−ε)}` active nodes,
/// where `ε = α/2 − 1` (so `α − ε = α/2 + 1`).
///
/// The slack between this `2^{t(α/2+1)}` budget and the `Θ(2^{2t})` area
/// growth of the annulus is exactly the paper's "spatial reuse gap": it is
/// positive iff `α > 2`.
///
/// # Panics
///
/// Panics if `alpha <= 2` (the fading model's standing assumption).
///
/// # Example
///
/// ```
/// use fading_analysis::good_threshold;
/// // α = 3 → ε = 0.5, budget 96·2^{2.5·t}.
/// assert_eq!(good_threshold(3.0, 0), 96.0);
/// assert!((good_threshold(3.0, 1) - 96.0 * 2f64.powf(2.5)).abs() < 1e-9);
/// ```
#[must_use]
pub fn good_threshold(alpha: f64, t: u32) -> f64 {
    assert!(alpha > 2.0, "the fading model requires alpha > 2");
    let eps = alpha / 2.0 - 1.0;
    96.0 * 2f64.powf(f64::from(t) * (alpha - eps))
}

/// Good-node classification for one round snapshot.
///
/// Built from a [`LinkClasses`] partition; classifies every classed node as
/// good or not per Definition 1, scanning annuli `t = 0, 1, …` until the
/// inner radius exceeds the farthest active node (beyond which annuli are
/// empty and the budget holds trivially).
///
/// # Example
///
/// ```
/// use fading_analysis::{GoodNodes, LinkClasses};
/// use fading_geom::{Deployment, Point};
///
/// let d = Deployment::from_points(vec![
///     Point::new(0.0, 0.0),
///     Point::new(1.0, 0.0),
///     Point::new(40.0, 0.0),
///     Point::new(41.0, 0.0),
/// ]).unwrap();
/// let active: Vec<usize> = (0..4).collect();
/// let classes = LinkClasses::partition(d.points(), &active, 1.0);
/// let good = GoodNodes::classify(d.points(), &active, &classes, 3.0);
/// // Four well-separated nodes: everyone is good.
/// assert_eq!(good.good_fraction(0), 1.0);
/// assert!(good.is_good(0));
/// ```
#[derive(Debug, Clone)]
pub struct GoodNodes {
    good: Vec<bool>,
    /// Good member count per class index.
    good_per_class: Vec<usize>,
    total_per_class: Vec<usize>,
}

impl GoodNodes {
    /// Classifies every active, classed node.
    ///
    /// `positions` is indexed by node id; `active` and `classes` must come
    /// from the same round snapshot; `alpha > 2` is the path-loss exponent.
    ///
    /// # Panics
    ///
    /// Panics if `alpha <= 2`.
    #[must_use]
    pub fn classify(
        positions: &[Point],
        active: &[NodeId],
        classes: &LinkClasses,
        alpha: f64,
    ) -> Self {
        assert!(alpha > 2.0, "the fading model requires alpha > 2");
        let n = positions.len();
        let unit = classes.unit();
        let mut good = vec![false; n];
        let num_classes = classes.num_classes();
        let mut good_per_class = vec![0usize; num_classes];
        let mut total_per_class = vec![0usize; num_classes];

        let active_points: Vec<Point> = active.iter().map(|&id| positions[id]).collect();
        let index = GridIndex::build(&active_points);
        // Farthest possible distance between active nodes bounds the annuli.
        let span = index.bbox().min().distance(index.bbox().max());

        for &u in active {
            let Some(i) = classes.class_of(u) else {
                continue;
            };
            total_per_class[i] += 1;
            let mut ok = true;
            let mut t: u32 = 0;
            loop {
                let inner = unit * 2f64.powi(t as i32) * 2f64.powi(i as i32);
                if inner > span {
                    break; // Annulus beyond the network: empty, trivially fine.
                }
                let count = annulus_count(&index, positions[u], unit, i as u32, t);
                if (count as f64) > good_threshold(alpha, t) {
                    ok = false;
                    break;
                }
                t += 1;
            }
            if ok {
                good[u] = true;
                good_per_class[i] += 1;
            }
        }
        GoodNodes {
            good,
            good_per_class,
            total_per_class,
        }
    }

    /// Whether node `u` is good (always `false` for unclassed nodes).
    #[must_use]
    pub fn is_good(&self, u: NodeId) -> bool {
        self.good.get(u).copied().unwrap_or(false)
    }

    /// Number of good nodes in class `d_i`.
    #[must_use]
    pub fn good_count(&self, i: usize) -> usize {
        self.good_per_class.get(i).copied().unwrap_or(0)
    }

    /// Fraction of class `d_i` that is good (1.0 for an empty class, by the
    /// convention that an empty class vacuously satisfies Lemma 6).
    #[must_use]
    pub fn good_fraction(&self, i: usize) -> f64 {
        let total = self.total_per_class.get(i).copied().unwrap_or(0);
        if total == 0 {
            1.0
        } else {
            self.good_count(i) as f64 / total as f64
        }
    }

    /// Ids of the good nodes in class `d_i`, drawn from `classes`.
    #[must_use]
    pub fn good_members(&self, classes: &LinkClasses, i: usize) -> Vec<NodeId> {
        classes
            .members(i)
            .iter()
            .copied()
            .filter(|&u| self.is_good(u))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(coords: &[(f64, f64)]) -> Vec<Point> {
        coords.iter().map(|&(x, y)| Point::new(x, y)).collect()
    }

    #[test]
    fn threshold_grows_with_alpha_minus_eps() {
        // α = 4 → ε = 1, exponent α − ε = 3: budget 96·8^t.
        assert_eq!(good_threshold(4.0, 0), 96.0);
        assert_eq!(good_threshold(4.0, 1), 96.0 * 8.0);
        assert_eq!(good_threshold(4.0, 2), 96.0 * 64.0);
    }

    #[test]
    #[should_panic(expected = "alpha > 2")]
    fn threshold_rejects_alpha_two() {
        let _ = good_threshold(2.0, 0);
    }

    #[test]
    fn annulus_count_boundaries() {
        // Points at distances 1, 2, 3, 4, 5 from origin.
        let positions: Vec<Point> = (1..=5).map(|k| Point::new(f64::from(k), 0.0)).collect();
        let index = GridIndex::build(&positions);
        // i = 0, t = 0: annulus (1, 2] → the point at distance 2.
        assert_eq!(annulus_count(&index, Point::ORIGIN, 1.0, 0, 0), 1);
        // i = 0, t = 1: annulus (2, 4] → distances 3 and 4.
        assert_eq!(annulus_count(&index, Point::ORIGIN, 1.0, 0, 1), 2);
        // i = 1, t = 0: annulus (2, 4] again (inner 2^1).
        assert_eq!(annulus_count(&index, Point::ORIGIN, 1.0, 1, 0), 2);
        // Halving the unit halves all radii: annulus (0.5, 1] → distance 1.
        assert_eq!(annulus_count(&index, Point::ORIGIN, 0.5, 0, 0), 1);
    }

    #[test]
    fn sparse_nodes_are_good() {
        let positions = pts(&[(0.0, 0.0), (1.0, 0.0), (50.0, 50.0), (51.0, 50.0)]);
        let active = vec![0, 1, 2, 3];
        let classes = LinkClasses::partition(&positions, &active, 1.0);
        let good = GoodNodes::classify(&positions, &active, &classes, 3.0);
        for u in 0..4 {
            assert!(good.is_good(u), "node {u}");
        }
        assert_eq!(good.good_count(0), 4);
        assert_eq!(good.good_fraction(0), 1.0);
    }

    /// Build the canonical bad-node configuration: a class-4 node whose
    /// first annulus is stuffed with more than 96 class-0 nodes.
    fn bad_node_configuration() -> (Vec<Point>, Vec<NodeId>) {
        let mut coords = vec![(0.0, 0.0), (16.0, 0.0)]; // u and its partner: class 4
                                                        // An 11×11 unit-spaced cluster centered at (24, 60): distances from
                                                        // u = sqrt(24² + 60²) ≈ 64.6 … no — keep it inside u's t=0 annulus
                                                        // (16, 32]: center the cluster at (0, 24), radius ≤ 7.
        for r in 0..11 {
            for c in 0..11 {
                coords.push((f64::from(c) - 5.0, 24.0 + f64::from(r) - 5.0));
            }
        }
        let positions = pts(&coords);
        let active: Vec<NodeId> = (0..positions.len()).collect();
        (positions, active)
    }

    #[test]
    fn overloaded_annulus_is_not_good() {
        let (positions, active) = bad_node_configuration();
        let classes = LinkClasses::partition(&positions, &active, 1.0);
        // u's nearest neighbor is the partner at 16 (cluster is ≥ 17.1 away):
        // class 4. Its t = 0 annulus (16, 32] contains all 121 cluster
        // nodes > 96 budget → u is bad.
        assert_eq!(classes.class_of(0), Some(4));
        let good = GoodNodes::classify(&positions, &active, &classes, 3.0);
        assert!(!good.is_good(0), "overloaded node was classified good");
        // The cluster nodes themselves (class 0, ≤ a handful of neighbors
        // per annulus rung) are good.
        let cluster_good = (2..positions.len()).filter(|&u| good.is_good(u)).count();
        assert_eq!(cluster_good, positions.len() - 2);
    }

    #[test]
    fn good_counts_per_class_are_consistent() {
        let (positions, active) = bad_node_configuration();
        let classes = LinkClasses::partition(&positions, &active, 1.0);
        let good = GoodNodes::classify(&positions, &active, &classes, 3.0);
        for i in 0..classes.num_classes() {
            let by_filter = good.good_members(&classes, i).len();
            assert_eq!(by_filter, good.good_count(i), "class {i}");
            assert!(good.good_count(i) <= classes.count(i));
        }
    }

    #[test]
    fn larger_alpha_is_more_permissive() {
        // The same configuration that is bad at α barely above 2 can be good
        // at large α (budget 96·2^{t(α/2+1)} grows with α).
        let (positions, active) = bad_node_configuration();
        let classes = LinkClasses::partition(&positions, &active, 1.0);
        let strict = GoodNodes::classify(&positions, &active, &classes, 2.2);
        let lax = GoodNodes::classify(&positions, &active, &classes, 6.0);
        let strict_good: usize = (0..classes.num_classes())
            .map(|i| strict.good_count(i))
            .sum();
        let lax_good: usize = (0..classes.num_classes()).map(|i| lax.good_count(i)).sum();
        assert!(lax_good >= strict_good);
    }

    #[test]
    fn good_members_filters_class_list() {
        let positions = pts(&[(0.0, 0.0), (1.0, 0.0), (30.0, 0.0), (31.0, 0.0)]);
        let active = vec![0, 1, 2, 3];
        let classes = LinkClasses::partition(&positions, &active, 1.0);
        let good = GoodNodes::classify(&positions, &active, &classes, 2.5);
        let members = good.good_members(&classes, 0);
        assert_eq!(members, vec![0, 1, 2, 3]);
    }

    #[test]
    fn empty_class_fraction_is_one() {
        let positions = pts(&[(0.0, 0.0), (1.0, 0.0)]);
        let active = vec![0, 1];
        let classes = LinkClasses::partition(&positions, &active, 1.0);
        let good = GoodNodes::classify(&positions, &active, &classes, 3.0);
        assert_eq!(good.good_fraction(7), 1.0);
        assert_eq!(good.good_count(7), 0);
    }
}
