//! Link classes: the paper's partition of active nodes.

use fading_channel::NodeId;
use fading_geom::{GridIndex, Point};

/// The paper's link-class partition for one round.
///
/// For a set of *active* nodes, node `u` belongs to class `d_i` iff the
/// distance to its nearest **active** neighbor lies in
/// `[unit·2^i, unit·2^{i+1})`, where `unit` is the normalization reference
/// (the deployment's shortest link; the paper normalizes it to 1). A round
/// with a single active node has no classes — which is exactly when the
/// problem is solved by that node's next broadcast.
///
/// Because knockouts remove nodes, a node's nearest active neighbor — and
/// hence its class — changes over an execution; the analysis in §3.3 of the
/// paper is precisely about controlling this migration. Re-partition after
/// every round of interest.
///
/// See the [crate-level example](crate) for usage.
#[derive(Debug, Clone)]
pub struct LinkClasses {
    unit: f64,
    /// Class index per node id (`None`: inactive, out of range, or the only
    /// active node).
    class_of: Vec<Option<u32>>,
    /// Nearest active neighbor and its distance, per node id.
    nearest: Vec<Option<(NodeId, f64)>>,
    /// Members per class index.
    members: Vec<Vec<NodeId>>,
}

impl LinkClasses {
    /// Partitions the given active nodes.
    ///
    /// `positions` is indexed by node id; `active` lists the ids of
    /// currently active nodes; `unit` is the global normalization unit (the
    /// deployment's shortest link length).
    ///
    /// # Panics
    ///
    /// Panics if `unit` is not strictly positive, if an id in `active` is
    /// out of bounds, or if two active nodes are closer than `unit`
    /// (which would make the class index negative — impossible when `unit`
    /// is the deployment's true shortest link).
    #[must_use]
    pub fn partition(positions: &[Point], active: &[NodeId], unit: f64) -> Self {
        assert!(unit > 0.0, "normalization unit must be positive");
        let n = positions.len();
        let mut class_of = vec![None; n];
        let mut nearest: Vec<Option<(NodeId, f64)>> = vec![None; n];
        let mut members: Vec<Vec<NodeId>> = Vec::new();
        if active.len() >= 2 {
            let active_points: Vec<Point> = active.iter().map(|&id| positions[id]).collect();
            let index = GridIndex::build(&active_points);
            for (k, &id) in active.iter().enumerate() {
                assert!(id < n, "active id {id} out of bounds");
                let Some(j) = index.nearest(active_points[k], Some(k)) else {
                    unreachable!("at least two active nodes")
                };
                let d = active_points[k].distance(active_points[j]);
                let ratio = d / unit;
                assert!(
                    ratio >= 1.0 - 1e-9,
                    "active pair closer ({d}) than the unit ({unit})"
                );
                let class = ratio.max(1.0).log2().floor() as u32;
                nearest[id] = Some((active[j], d));
                class_of[id] = Some(class);
                let ci = class as usize;
                if members.len() <= ci {
                    members.resize_with(ci + 1, Vec::new);
                }
                members[ci].push(id);
            }
        }
        LinkClasses {
            unit,
            class_of,
            nearest,
            members,
        }
    }

    /// The normalization unit used for the partition.
    #[must_use]
    pub fn unit(&self) -> f64 {
        self.unit
    }

    /// Class index of node `u`, if it has one.
    #[must_use]
    pub fn class_of(&self, u: NodeId) -> Option<usize> {
        self.class_of.get(u).copied().flatten().map(|c| c as usize)
    }

    /// Nearest active neighbor of `u` (its "partner" candidate) and the
    /// distance, if `u` is active and not alone.
    #[must_use]
    pub fn nearest_active(&self, u: NodeId) -> Option<(NodeId, f64)> {
        self.nearest.get(u).copied().flatten()
    }

    /// Members of class `d_i` (empty slice for empty or out-of-range `i`).
    #[must_use]
    pub fn members(&self, i: usize) -> &[NodeId] {
        self.members.get(i).map_or(&[], Vec::as_slice)
    }

    /// `n_i`: number of active nodes in class `d_i`.
    #[must_use]
    pub fn count(&self, i: usize) -> usize {
        self.members(i).len()
    }

    /// `n_{<i}`: total active nodes in classes strictly smaller than `i`.
    #[must_use]
    pub fn count_below(&self, i: usize) -> usize {
        (0..i.min(self.members.len()))
            .map(|j| self.members[j].len())
            .sum()
    }

    /// `n_{≥i}`: total active nodes in class `i` and larger.
    #[must_use]
    pub fn count_at_least(&self, i: usize) -> usize {
        (i..self.members.len()).map(|j| self.members[j].len()).sum()
    }

    /// Number of class slots (largest occupied index + 1; 0 if no classes).
    #[must_use]
    pub fn num_classes(&self) -> usize {
        self.members.len()
    }

    /// Number of **nonempty** classes (the paper's "network with `l` link
    /// classes" counts occupied classes).
    #[must_use]
    pub fn num_nonempty(&self) -> usize {
        self.members.iter().filter(|m| !m.is_empty()).count()
    }

    /// The smallest nonempty class index, if any class is occupied.
    #[must_use]
    pub fn smallest_nonempty(&self) -> Option<usize> {
        self.members.iter().position(|m| !m.is_empty())
    }

    /// Per-class sizes `(n_0, n_1, …)` up to the largest occupied index.
    #[must_use]
    pub fn sizes(&self) -> Vec<usize> {
        self.members.iter().map(Vec::len).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(coords: &[(f64, f64)]) -> Vec<Point> {
        coords.iter().map(|&(x, y)| Point::new(x, y)).collect()
    }

    #[test]
    fn two_pairs_in_distinct_classes() {
        // Pair at distance 1 (class 0) and pair at distance 5 (class 2).
        let positions = pts(&[(0.0, 0.0), (1.0, 0.0), (100.0, 0.0), (105.0, 0.0)]);
        let active = vec![0, 1, 2, 3];
        let lc = LinkClasses::partition(&positions, &active, 1.0);
        assert_eq!(lc.class_of(0), Some(0));
        assert_eq!(lc.class_of(1), Some(0));
        assert_eq!(lc.class_of(2), Some(2));
        assert_eq!(lc.class_of(3), Some(2));
        assert_eq!(lc.sizes(), vec![2, 0, 2]);
        assert_eq!(lc.count_below(2), 2);
        assert_eq!(lc.count_at_least(1), 2);
        assert_eq!(lc.num_nonempty(), 2);
        assert_eq!(lc.smallest_nonempty(), Some(0));
    }

    #[test]
    fn class_boundaries_are_half_open() {
        // Distances exactly 1, 2, 4 land in classes 0, 1, 2.
        for (d, want) in [(1.0, 0), (1.99, 0), (2.0, 1), (3.99, 1), (4.0, 2)] {
            let positions = pts(&[(0.0, 0.0), (d, 0.0)]);
            let lc = LinkClasses::partition(&positions, &[0, 1], 1.0);
            assert_eq!(lc.class_of(0), Some(want), "distance {d}");
        }
    }

    #[test]
    fn single_active_node_has_no_class() {
        let positions = pts(&[(0.0, 0.0), (1.0, 0.0)]);
        let lc = LinkClasses::partition(&positions, &[0], 1.0);
        assert_eq!(lc.class_of(0), None);
        assert_eq!(lc.num_classes(), 0);
        assert_eq!(lc.smallest_nonempty(), None);
        assert_eq!(lc.nearest_active(0), None);
    }

    #[test]
    fn inactive_nodes_are_excluded() {
        // Node 1 (the close neighbor) is inactive: node 0's nearest active
        // neighbor is now node 2, far away — it migrates to a larger class.
        let positions = pts(&[(0.0, 0.0), (1.0, 0.0), (8.0, 0.0)]);
        let all = LinkClasses::partition(&positions, &[0, 1, 2], 1.0);
        assert_eq!(all.class_of(0), Some(0));
        let partial = LinkClasses::partition(&positions, &[0, 2], 1.0);
        assert_eq!(partial.class_of(0), Some(3)); // d=8 → class 3
        assert_eq!(partial.class_of(1), None);
        assert_eq!(partial.nearest_active(0), Some((2, 8.0)));
    }

    #[test]
    fn unit_scales_class_indices() {
        // Same geometry, unit 2: distance 4 becomes ratio 2 → class 1.
        let positions = pts(&[(0.0, 0.0), (4.0, 0.0)]);
        let lc = LinkClasses::partition(&positions, &[0, 1], 2.0);
        assert_eq!(lc.class_of(0), Some(1));
        assert_eq!(lc.unit(), 2.0);
    }

    #[test]
    fn members_lists_match_counts() {
        let positions = pts(&[
            (0.0, 0.0),
            (1.0, 0.0),
            (50.0, 0.0),
            (53.0, 0.0),
            (100.0, 100.0),
        ]);
        let active = vec![0, 1, 2, 3, 4];
        let lc = LinkClasses::partition(&positions, &active, 1.0);
        for i in 0..lc.num_classes() {
            assert_eq!(lc.members(i).len(), lc.count(i));
            for &u in lc.members(i) {
                assert_eq!(lc.class_of(u), Some(i));
            }
        }
        let total: usize = lc.sizes().iter().sum();
        assert_eq!(total, 5);
    }

    #[test]
    #[should_panic(expected = "closer")]
    fn active_pair_below_unit_panics() {
        let positions = pts(&[(0.0, 0.0), (0.25, 0.0)]);
        let _ = LinkClasses::partition(&positions, &[0, 1], 1.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_unit_panics() {
        let positions = pts(&[(0.0, 0.0), (1.0, 0.0)]);
        let _ = LinkClasses::partition(&positions, &[0, 1], 0.0);
    }

    #[test]
    fn out_of_range_queries_are_none_or_empty() {
        let positions = pts(&[(0.0, 0.0), (1.0, 0.0)]);
        let lc = LinkClasses::partition(&positions, &[0, 1], 1.0);
        assert_eq!(lc.class_of(99), None);
        assert!(lc.members(99).is_empty());
        assert_eq!(lc.count(99), 0);
    }
}
