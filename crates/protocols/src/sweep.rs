//! Probability-sweep protocol with a known size bound (the `O(log N)`
//! expected-time strategy the paper attributes to Willard-style adaptation).

use rand::rngs::SmallRng;
use rand::Rng;

use fading_sim::{Action, Protocol, ProtocolStateError, Reception};

/// Cyclic probability sweep with a known upper bound `N ≥ n`: round `r`
/// uses transmit probability `2^{-(1 + (r−1) mod ⌈log₂ N⌉)}`.
///
/// One sweep of `⌈log₂ N⌉` rounds passes within a factor of 2 of the ideal
/// probability `1/n`; in that round a solo transmission occurs with constant
/// probability, so the strategy resolves contention in `O(log N)` *expected*
/// rounds (the paper's related-work adaptation of Bar-Yehuda–Goldreich–Itai
/// given an upper bound `N`). Achieving high-probability guarantees still
/// costs a `log` factor more — which is precisely the gap the paper's FKN
/// algorithm closes without knowing `n` at all.
///
/// # Example
///
/// ```
/// use fading_protocols::CyclicSweep;
/// use fading_sim::Protocol;
///
/// let s = CyclicSweep::new(1000);
/// assert_eq!(s.name(), "cyclic-sweep");
/// assert_eq!(s.ladder_len(), 10); // ceil(log2 1000)
/// ```
#[derive(Debug, Clone)]
pub struct CyclicSweep {
    ladder_len: u32,
    step: u32,
    active: bool,
}

impl CyclicSweep {
    /// Creates a sweep for a known size bound `N ≥ 2`.
    ///
    /// # Panics
    ///
    /// Panics if `n_bound < 2`.
    #[must_use]
    pub fn new(n_bound: usize) -> Self {
        assert!(n_bound >= 2, "size bound must be at least 2");
        let ladder_len = (usize::BITS - (n_bound - 1).leading_zeros()).max(1);
        CyclicSweep {
            ladder_len,
            step: 0,
            active: true,
        }
    }

    /// Number of rungs in one sweep (`⌈log₂ N⌉`).
    #[must_use]
    pub fn ladder_len(&self) -> u32 {
        self.ladder_len
    }

    /// The probability the next `act` call will use.
    #[must_use]
    pub fn current_probability(&self) -> f64 {
        0.5f64.powi(self.step as i32 + 1)
    }
}

impl Protocol for CyclicSweep {
    fn act(&mut self, _round: u64, rng: &mut SmallRng) -> Action {
        let p = self.current_probability();
        self.step = (self.step + 1) % self.ladder_len;
        if rng.gen_bool(p) {
            Action::Transmit
        } else {
            Action::Listen
        }
    }

    fn feedback(&mut self, _round: u64, reception: &Reception) {
        if reception.is_message() {
            self.active = false;
        }
    }

    fn is_active(&self) -> bool {
        self.active
    }

    fn save_state(&self) -> Vec<u64> {
        vec![u64::from(self.step), u64::from(self.active)]
    }

    fn load_state(&mut self, state: &[u64]) -> Result<(), ProtocolStateError> {
        let err = || ProtocolStateError {
            protocol: "cyclic-sweep",
            expected: 2,
            got: state.len(),
        };
        match state {
            [step, active] => {
                self.step = u32::try_from(*step).map_err(|_| err())?;
                self.active = *active != 0;
                Ok(())
            }
            _ => Err(err()),
        }
    }

    fn name(&self) -> &'static str {
        "cyclic-sweep"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn ladder_length_is_ceil_log2() {
        assert_eq!(CyclicSweep::new(2).ladder_len(), 1);
        assert_eq!(CyclicSweep::new(3).ladder_len(), 2);
        assert_eq!(CyclicSweep::new(4).ladder_len(), 2);
        assert_eq!(CyclicSweep::new(1024).ladder_len(), 10);
        assert_eq!(CyclicSweep::new(1025).ladder_len(), 11);
    }

    #[test]
    fn sweep_cycles_through_probabilities() {
        let mut s = CyclicSweep::new(8); // ladder 1/2, 1/4, 1/8
        let mut rng = SmallRng::seed_from_u64(0);
        let mut probs = Vec::new();
        for r in 0..6 {
            probs.push(s.current_probability());
            let _ = s.act(r, &mut rng);
        }
        assert_eq!(probs, vec![0.5, 0.25, 0.125, 0.5, 0.25, 0.125]);
    }

    #[test]
    fn message_knocks_out() {
        let mut s = CyclicSweep::new(16);
        s.feedback(1, &Reception::Message { from: 2 });
        assert!(!s.is_active());
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn rejects_tiny_bound() {
        let _ = CyclicSweep::new(1);
    }
}
