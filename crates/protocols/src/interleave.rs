//! Round-robin interleaving of two protocols.

use rand::rngs::SmallRng;

use fading_sim::{Action, Protocol, ProtocolStateError, Reception};

/// Runs two protocols in alternating rounds: odd rounds drive `A`, even
/// rounds drive `B`, each seeing its own contiguous virtual round counter.
///
/// This implements the paper's remark for the case where `R` is unknown and
/// possibly super-polynomial: *"If R is unknown, then our algorithm can be
/// interleaved with an existing algorithm"* — e.g.
/// `Interleave::new(Fkn::new(), JurdzinskiStachowiak::new(n_bound))` is
/// within a factor 2 of the better of `O(log n + log R)` and
/// `O(log² n / log log n)`, whichever wins on the instance.
///
/// The node stands down as soon as **either** component deactivates (a
/// received message is a knockout signal regardless of which sub-protocol
/// was listening).
///
/// # Example
///
/// ```
/// use fading_protocols::{Decay, Fkn, Interleave};
/// use fading_sim::Protocol;
///
/// let combo = Interleave::new(Fkn::new(), Decay::new());
/// assert_eq!(combo.name(), "interleave");
/// ```
#[derive(Debug)]
pub struct Interleave<A, B> {
    a: A,
    b: B,
    a_rounds: u64,
    b_rounds: u64,
    /// Which component acted in the most recent round (feedback routing).
    last_was_a: bool,
}

impl<A: Protocol, B: Protocol> Interleave<A, B> {
    /// Combines two protocols.
    #[must_use]
    pub fn new(a: A, b: B) -> Self {
        Interleave {
            a,
            b,
            a_rounds: 0,
            b_rounds: 0,
            last_was_a: false,
        }
    }

    /// The first component.
    #[must_use]
    pub fn first(&self) -> &A {
        &self.a
    }

    /// The second component.
    #[must_use]
    pub fn second(&self) -> &B {
        &self.b
    }
}

impl<A: Protocol, B: Protocol> Protocol for Interleave<A, B> {
    fn act(&mut self, round: u64, rng: &mut SmallRng) -> Action {
        if round % 2 == 1 {
            self.a_rounds += 1;
            self.last_was_a = true;
            self.a.act(self.a_rounds, rng)
        } else {
            self.b_rounds += 1;
            self.last_was_a = false;
            self.b.act(self.b_rounds, rng)
        }
    }

    fn feedback(&mut self, _round: u64, reception: &Reception) {
        if self.last_was_a {
            self.a.feedback(self.a_rounds, reception);
        } else {
            self.b.feedback(self.b_rounds, reception);
        }
    }

    fn is_active(&self) -> bool {
        self.a.is_active() && self.b.is_active()
    }

    fn save_state(&self) -> Vec<u64> {
        // Layout: [a_rounds, b_rounds, last_was_a, |A|, A…, |B|, B…] — the
        // length prefixes let load_state split the flat word stream back
        // into the two components' own encodings.
        let a = self.a.save_state();
        let b = self.b.save_state();
        let mut out = Vec::with_capacity(5 + a.len() + b.len());
        out.push(self.a_rounds);
        out.push(self.b_rounds);
        out.push(u64::from(self.last_was_a));
        out.push(a.len() as u64);
        out.extend_from_slice(&a);
        out.push(b.len() as u64);
        out.extend_from_slice(&b);
        out
    }

    fn load_state(&mut self, state: &[u64]) -> Result<(), ProtocolStateError> {
        let err = |expected: usize| ProtocolStateError {
            protocol: "interleave",
            expected,
            got: state.len(),
        };
        let [a_rounds, b_rounds, last_was_a, rest @ ..] = state else {
            return Err(err(5));
        };
        let a_len = *rest.first().ok_or_else(|| err(5))? as usize;
        let rest = &rest[1..];
        if rest.len() < a_len + 1 {
            return Err(err(5 + a_len));
        }
        let (a_state, rest) = rest.split_at(a_len);
        let b_len = rest[0] as usize;
        let rest = &rest[1..];
        if rest.len() != b_len {
            return Err(err(5 + a_len + b_len));
        }
        self.a.load_state(a_state)?;
        self.b.load_state(rest)?;
        self.a_rounds = *a_rounds;
        self.b_rounds = *b_rounds;
        self.last_was_a = *last_was_a != 0;
        Ok(())
    }

    fn name(&self) -> &'static str {
        "interleave"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Decay, Fkn};
    use rand::SeedableRng;

    /// Records which virtual rounds it saw.
    #[derive(Debug, Default)]
    struct Recorder {
        rounds_seen: Vec<u64>,
        feedback_seen: Vec<u64>,
        active: bool,
    }

    impl Recorder {
        fn new() -> Self {
            Recorder {
                active: true,
                ..Default::default()
            }
        }
    }

    impl Protocol for Recorder {
        fn act(&mut self, round: u64, _rng: &mut SmallRng) -> Action {
            self.rounds_seen.push(round);
            Action::Listen
        }
        fn feedback(&mut self, round: u64, reception: &Reception) {
            self.feedback_seen.push(round);
            if reception.is_message() {
                self.active = false;
            }
        }
        fn is_active(&self) -> bool {
            self.active
        }
        fn name(&self) -> &'static str {
            "recorder"
        }
    }

    #[test]
    fn components_see_contiguous_virtual_rounds() {
        let mut combo = Interleave::new(Recorder::new(), Recorder::new());
        let mut rng = SmallRng::seed_from_u64(0);
        for round in 1..=8 {
            let _ = combo.act(round, &mut rng);
            combo.feedback(round, &Reception::Silence);
        }
        assert_eq!(combo.first().rounds_seen, vec![1, 2, 3, 4]);
        assert_eq!(combo.second().rounds_seen, vec![1, 2, 3, 4]);
        assert_eq!(combo.first().feedback_seen, vec![1, 2, 3, 4]);
    }

    #[test]
    fn feedback_routes_to_last_actor() {
        let mut combo = Interleave::new(Recorder::new(), Recorder::new());
        let mut rng = SmallRng::seed_from_u64(0);
        // Round 1 drives A; a message arrives: only A is knocked out…
        let _ = combo.act(1, &mut rng);
        combo.feedback(1, &Reception::Message { from: 5 });
        assert!(!combo.first().is_active());
        assert!(combo.second().is_active());
        // …but the combined node is now inactive.
        assert!(!combo.is_active());
    }

    #[test]
    fn state_round_trips_through_length_prefixed_layout() {
        let mut combo = Interleave::new(Fkn::new(), Decay::new());
        let mut rng = SmallRng::seed_from_u64(11);
        for round in 1..=9 {
            let _ = combo.act(round, &mut rng);
        }
        combo.feedback(9, &Reception::Message { from: 2 });
        let saved = combo.save_state();
        let mut fresh = Interleave::new(Fkn::new(), Decay::new());
        fresh.load_state(&saved).unwrap();
        assert_eq!(fresh.save_state(), saved);
        assert_eq!(fresh.is_active(), combo.is_active());
    }

    #[test]
    fn load_state_rejects_truncated_stream() {
        let combo = Interleave::new(Fkn::new(), Decay::new());
        let mut saved = combo.save_state();
        saved.pop();
        let mut fresh = Interleave::new(Fkn::new(), Decay::new());
        let err = fresh.load_state(&saved).unwrap_err();
        assert_eq!(err.protocol, "interleave");
    }

    #[test]
    fn works_with_real_protocols() {
        let mut combo = Interleave::new(Fkn::new(), Decay::new());
        let mut rng = SmallRng::seed_from_u64(3);
        for round in 1..=20 {
            let _ = combo.act(round, &mut rng);
        }
        assert!(combo.is_active());
        combo.feedback(21, &Reception::Message { from: 0 });
        assert!(!combo.is_active());
    }
}
