//! The paper's algorithm (Fineman–Kuhn–Newport–Gilbert, PODC 2016).

use rand::rngs::SmallRng;
use rand::Rng;

use fading_sim::{Action, Protocol, ProtocolStateError, Reception};

/// The default broadcast probability.
///
/// The analysis (Lemma 3 / Corollary 5) fixes `p = c/(4·c_max)` for
/// model-dependent constants — a *small* constant (the Lemma 3 recipe with
/// `α = 3`, `β = 2` evaluates to well below `10^{-3}`). Empirically
/// (experiments E1 and E5) small constants are both the fastest and the
/// regime in which the measured round count exhibits the theorem's clean
/// `Θ(log n)` shape; aggressive constants like `1/4` still resolve but the
/// survivor set concentrates in mutually-jammed regions and the finite-size
/// curve steepens. `1/20` sits comfortably in the analyzed regime.
pub const DEFAULT_BROADCAST_PROBABILITY: f64 = 0.05;

/// The paper's contention-resolution algorithm, verbatim from its
/// introduction:
///
/// > Each participating node starts in an active state; at the beginning of
/// > each round, each node that is still active broadcasts with a constant
/// > probability `p`; if an active node receives a message, it becomes
/// > inactive.
///
/// No knowledge of `n`, `R`, or the channel parameters is required. On a
/// SINR channel this resolves contention in `O(log n + log R)` rounds with
/// high probability (Theorem 1), beating the `Ω(log² n)` lower bound of the
/// non-fading radio network model.
///
/// # Example
///
/// ```
/// use fading_protocols::Fkn;
/// use fading_sim::Protocol;
///
/// let p = Fkn::with_probability(0.3)?;
/// assert!(p.is_active());
/// assert_eq!(p.name(), "fkn");
/// # Ok::<(), fading_protocols::ProbabilityError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Fkn {
    p: f64,
    active: bool,
}

/// Error returned when a broadcast probability is outside `(0, 1)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbabilityError;

impl std::fmt::Display for ProbabilityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "broadcast probability must lie strictly between 0 and 1")
    }
}

impl std::error::Error for ProbabilityError {}

impl Fkn {
    /// Creates the algorithm with the default broadcast probability
    /// ([`DEFAULT_BROADCAST_PROBABILITY`]).
    #[must_use]
    pub fn new() -> Self {
        Fkn {
            p: DEFAULT_BROADCAST_PROBABILITY,
            active: true,
        }
    }

    /// Creates the algorithm with an explicit broadcast probability.
    ///
    /// # Errors
    ///
    /// Returns [`ProbabilityError`] unless `0 < p < 1`.
    pub fn with_probability(p: f64) -> Result<Self, ProbabilityError> {
        if p > 0.0 && p < 1.0 {
            Ok(Fkn { p, active: true })
        } else {
            Err(ProbabilityError)
        }
    }

    /// The broadcast probability in use.
    #[must_use]
    pub fn probability(&self) -> f64 {
        self.p
    }
}

impl Default for Fkn {
    fn default() -> Self {
        Self::new()
    }
}

impl Protocol for Fkn {
    fn act(&mut self, _round: u64, rng: &mut SmallRng) -> Action {
        debug_assert!(self.active, "inactive nodes are never scheduled");
        if rng.gen_bool(self.p) {
            Action::Transmit
        } else {
            Action::Listen
        }
    }

    fn feedback(&mut self, _round: u64, reception: &Reception) {
        if reception.is_message() {
            self.active = false;
        }
    }

    fn is_active(&self) -> bool {
        self.active
    }

    fn save_state(&self) -> Vec<u64> {
        vec![u64::from(self.active)]
    }

    fn load_state(&mut self, state: &[u64]) -> Result<(), ProtocolStateError> {
        match state {
            [active] => {
                self.active = *active != 0;
                Ok(())
            }
            _ => Err(ProtocolStateError {
                protocol: self.name(),
                expected: 1,
                got: state.len(),
            }),
        }
    }

    fn name(&self) -> &'static str {
        "fkn"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn default_probability() {
        let p = Fkn::new();
        assert_eq!(p.probability(), 0.05);
        assert_eq!(Fkn::default().probability(), p.probability());
    }

    #[test]
    fn with_probability_validates() {
        assert!(Fkn::with_probability(0.5).is_ok());
        assert!(Fkn::with_probability(0.0).is_err());
        assert!(Fkn::with_probability(1.0).is_err());
        assert!(Fkn::with_probability(-0.1).is_err());
        assert!(Fkn::with_probability(f64::NAN).is_err());
    }

    #[test]
    fn transmit_frequency_tracks_p() {
        let mut proto = Fkn::with_probability(0.25).unwrap();
        let mut rng = SmallRng::seed_from_u64(1);
        let rounds = 10_000;
        let transmits = (0..rounds)
            .filter(|&r| proto.act(r, &mut rng).is_transmit())
            .count();
        let rate = transmits as f64 / rounds as f64;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn message_knocks_out() {
        let mut proto = Fkn::new();
        proto.feedback(1, &Reception::Silence);
        assert!(proto.is_active());
        proto.feedback(2, &Reception::Message { from: 3 });
        assert!(!proto.is_active());
    }

    #[test]
    fn collision_does_not_knock_out() {
        // The SINR channel never emits Collision, but the protocol must not
        // misinterpret it on CD channels either.
        let mut proto = Fkn::new();
        proto.feedback(1, &Reception::Collision);
        assert!(proto.is_active());
    }

    #[test]
    fn error_display() {
        assert!(ProbabilityError.to_string().contains("between 0 and 1"));
    }
}
