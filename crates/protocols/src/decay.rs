//! The Decay / wake-up strategy of the classical radio network model.

use rand::rngs::SmallRng;
use rand::Rng;

use fading_sim::{Action, Protocol, ProtocolStateError, Reception};

/// The classical *Decay* strategy (Bar-Yehuda, Goldreich, Itai), in the
/// uniform-knowledge-free form used for the wake-up problem: the execution
/// is divided into blocks `b = 1, 2, 3, …`; within block `b` the node
/// transmits with probability `2^{-j}` in the block's `j`-th round
/// (`j = 1..b`).
///
/// Each block sweeps the probability ladder one rung deeper, so by block
/// `b ≈ log₂ n` the sweep passes through the "right" probability
/// `≈ 1/n`, where a solo transmission happens with constant probability.
/// Achieving success with high probability requires `Θ(log n)` such passes,
/// for `Θ(log² n)` rounds in total — the radio-network speed limit that the
/// paper's SINR algorithm beats.
///
/// The protocol needs no knowledge of `n`. By default nodes also deactivate
/// when they receive a message ([`Decay::new`]); construct with
/// [`Decay::without_knockout`] for the classical non-deactivating variant
/// (on the radio channel the two are equivalent until resolution, because a
/// message is received only when contention is already resolved).
///
/// # Example
///
/// ```
/// use fading_protocols::Decay;
/// use fading_sim::Protocol;
///
/// let d = Decay::new();
/// assert_eq!(d.name(), "decay");
/// ```
#[derive(Debug, Clone)]
pub struct Decay {
    block: u64,
    pos: u64,
    knockout: bool,
    active: bool,
}

impl Decay {
    /// Decay with knockout-on-reception (sensible on SINR channels, where
    /// receptions happen before global resolution).
    #[must_use]
    pub fn new() -> Self {
        Decay {
            block: 1,
            pos: 1,
            knockout: true,
            active: true,
        }
    }

    /// The classical variant: nodes never deactivate.
    #[must_use]
    pub fn without_knockout() -> Self {
        Decay {
            knockout: false,
            ..Decay::new()
        }
    }

    /// The broadcast probability the *next* call to `act` will use.
    #[must_use]
    pub fn current_probability(&self) -> f64 {
        0.5f64.powi(self.pos.min(1023) as i32)
    }

    fn advance(&mut self) {
        if self.pos < self.block {
            self.pos += 1;
        } else {
            self.block += 1;
            self.pos = 1;
        }
    }
}

impl Default for Decay {
    fn default() -> Self {
        Self::new()
    }
}

impl Protocol for Decay {
    fn act(&mut self, _round: u64, rng: &mut SmallRng) -> Action {
        let p = self.current_probability();
        self.advance();
        if rng.gen_bool(p) {
            Action::Transmit
        } else {
            Action::Listen
        }
    }

    fn feedback(&mut self, _round: u64, reception: &Reception) {
        if self.knockout && reception.is_message() {
            self.active = false;
        }
    }

    fn is_active(&self) -> bool {
        self.active
    }

    fn save_state(&self) -> Vec<u64> {
        vec![self.block, self.pos, u64::from(self.active)]
    }

    fn load_state(&mut self, state: &[u64]) -> Result<(), ProtocolStateError> {
        match state {
            [block, pos, active] => {
                self.block = *block;
                self.pos = *pos;
                self.active = *active != 0;
                Ok(())
            }
            _ => Err(ProtocolStateError {
                protocol: self.name(),
                expected: 3,
                got: state.len(),
            }),
        }
    }

    fn name(&self) -> &'static str {
        "decay"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn probability_ladder_shape() {
        // Blocks: (1/2), (1/2, 1/4), (1/2, 1/4, 1/8), ...
        let mut d = Decay::new();
        let mut rng = SmallRng::seed_from_u64(0);
        let mut seen = Vec::new();
        for r in 0..10 {
            seen.push(d.current_probability());
            let _ = d.act(r, &mut rng);
        }
        let expected = [
            0.5, // block 1
            0.5, 0.25, // block 2
            0.5, 0.25, 0.125, // block 3
            0.5, 0.25, 0.125, 0.0625, // block 4
        ];
        assert_eq!(seen, expected);
    }

    #[test]
    fn knockout_variants() {
        let mut with = Decay::new();
        with.feedback(1, &Reception::Message { from: 0 });
        assert!(!with.is_active());

        let mut without = Decay::without_knockout();
        without.feedback(1, &Reception::Message { from: 0 });
        assert!(without.is_active());
    }

    #[test]
    fn silence_never_deactivates() {
        let mut d = Decay::new();
        for r in 0..100 {
            d.feedback(r, &Reception::Silence);
        }
        assert!(d.is_active());
    }

    #[test]
    fn state_round_trips_mid_sweep() {
        let mut d = Decay::new();
        let mut rng = SmallRng::seed_from_u64(7);
        for r in 0..13 {
            let _ = d.act(r, &mut rng);
        }
        let saved = d.save_state();
        let mut fresh = Decay::new();
        fresh.load_state(&saved).unwrap();
        assert_eq!(fresh.current_probability(), d.current_probability());
        assert_eq!(fresh.save_state(), saved);
    }

    #[test]
    fn load_state_rejects_wrong_length() {
        let mut d = Decay::new();
        let err = d.load_state(&[1, 2]).unwrap_err();
        assert_eq!(err.expected, 3);
        assert_eq!(err.got, 2);
        assert_eq!(err.protocol, "decay");
    }

    #[test]
    fn deep_rungs_do_not_underflow() {
        let mut d = Decay::new();
        let mut rng = SmallRng::seed_from_u64(0);
        // Run enough rounds to reach deep probability rungs.
        for r in 0..5_000 {
            let _ = d.act(r, &mut rng);
        }
        let p = d.current_probability();
        assert!(p > 0.0 && p <= 0.5);
    }
}
