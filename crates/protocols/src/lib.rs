//! # fading-protocols
//!
//! Contention-resolution protocols for the reproduction of *Contention
//! Resolution on a Fading Channel* (Fineman, Gilbert, Kuhn, Newport —
//! PODC 2016).
//!
//! The headline algorithm is [`Fkn`] — the paper's maximally simple strategy:
//! every active node transmits with a constant probability each round, and
//! deactivates the moment it receives any message. On a SINR channel this
//! resolves contention in `O(log n + log R)` rounds w.h.p. (Theorem 1).
//!
//! Every baseline the paper compares against is implemented too:
//!
//! | Protocol | Channel | Bound | Needs `n`? |
//! |---|---|---|---|
//! | [`Fkn`] | SINR | `O(log n + log R)` w.h.p. | no |
//! | [`Decay`] | radio | `Θ(log² n)` w.h.p. | no |
//! | [`CyclicSweep`] | radio | `O(log N)` expected | upper bound `N` |
//! | [`CdElection`] | radio + CD | `Θ(log n)` w.h.p. | no |
//! | [`JurdzinskiStachowiak`] | SINR | `O(log² n / log log n)` w.h.p. | poly bound `N` |
//! | [`Aloha`] | any | `O(log n)` w.h.p. | exact `n` |
//! | [`FixedProbability`] | any | — (ablation: FKN without knockout) | no |
//! | [`Interleave`] | any | best of both components × 2 | per component |
//!
//! All protocols implement the [`fading_sim::Protocol`] trait; [`ProtocolKind`]
//! is a serializable factory used by experiment configuration.
//!
//! # Example
//!
//! ```
//! use fading_channel::{SinrChannel, SinrParams};
//! use fading_geom::Deployment;
//! use fading_protocols::Fkn;
//! use fading_sim::Simulation;
//!
//! let deployment = Deployment::uniform_square(64, 30.0, 11);
//! let channel = SinrChannel::new(SinrParams::default_single_hop());
//! let mut sim = Simulation::new(deployment, Box::new(channel), 42, |_| {
//!     Box::new(Fkn::new())
//! });
//! let result = sim.run_until_resolved(100_000);
//! assert!(result.resolved());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

mod aloha;
mod cd;
mod decay;
mod fkn;
mod interleave;
mod js;
mod kind;
mod sweep;

pub use aloha::{Aloha, FixedProbability};
pub use cd::CdElection;
pub use decay::Decay;
pub use fkn::{Fkn, ProbabilityError, DEFAULT_BROADCAST_PROBABILITY};
pub use interleave::Interleave;
pub use js::JurdzinskiStachowiak;
pub use kind::ProtocolKind;
pub use sweep::CyclicSweep;
