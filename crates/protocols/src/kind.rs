//! Serializable protocol factory.

use serde::{Deserialize, Serialize};

use fading_sim::{NodeId, Protocol};

use crate::{
    Aloha, CdElection, CyclicSweep, Decay, FixedProbability, Fkn, Interleave, JurdzinskiStachowiak,
};

/// A serializable description of a protocol configuration, used by scenario
/// builders and experiment configs to instantiate one protocol per node.
///
/// # Example
///
/// ```
/// use fading_protocols::ProtocolKind;
///
/// let kind = ProtocolKind::Fkn { p: 0.25 };
/// let instance = kind.build(0);
/// assert_eq!(instance.name(), "fkn");
/// assert_eq!(kind.label(), "fkn");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum ProtocolKind {
    /// The paper's algorithm with broadcast probability `p`.
    Fkn {
        /// Per-round broadcast probability, in `(0, 1)`.
        p: f64,
    },
    /// Classical Decay (knockout-on-reception enabled).
    Decay,
    /// Classical Decay without the knockout rule.
    DecayClassic,
    /// Slotted ALOHA with exact knowledge of `n`.
    Aloha {
        /// The exact network size.
        n: usize,
    },
    /// Probability sweep with a known upper bound `N ≥ n`.
    CyclicSweep {
        /// The size upper bound.
        n_bound: usize,
    },
    /// Collision-detection elimination (radio-CD channels).
    CdElection,
    /// Jurdziński–Stachowiak-style schedule with a known poly bound `N ≥ n`.
    JurdzinskiStachowiak {
        /// The size upper bound.
        n_bound: usize,
    },
    /// Constant probability without knockout (the FKN ablation).
    FixedProbability {
        /// Per-round transmit probability, in `(0, 1)`.
        p: f64,
    },
    /// The paper's unknown-`R` remedy: FKN interleaved with the JS baseline.
    FknInterleavedJs {
        /// FKN's broadcast probability.
        p: f64,
        /// JS's size upper bound.
        n_bound: usize,
    },
}

impl ProtocolKind {
    /// The paper's algorithm at its default probability.
    #[must_use]
    pub fn fkn_default() -> Self {
        ProtocolKind::Fkn {
            p: crate::fkn::DEFAULT_BROADCAST_PROBABILITY,
        }
    }

    /// Instantiates the protocol for the node with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (e.g. `p ∉ (0,1)`,
    /// `n == 0`) — configurations are expected to be validated at
    /// experiment-construction time.
    #[must_use]
    #[allow(clippy::expect_used)] // panic on invalid config is this method's documented contract
    pub fn build(&self, _node: NodeId) -> Box<dyn Protocol> {
        match *self {
            ProtocolKind::Fkn { p } => {
                Box::new(Fkn::with_probability(p).expect("validated fkn probability"))
            }
            ProtocolKind::Decay => Box::new(Decay::new()),
            ProtocolKind::DecayClassic => Box::new(Decay::without_knockout()),
            ProtocolKind::Aloha { n } => Box::new(Aloha::new(n)),
            ProtocolKind::CyclicSweep { n_bound } => Box::new(CyclicSweep::new(n_bound)),
            ProtocolKind::CdElection => Box::new(CdElection::new()),
            ProtocolKind::JurdzinskiStachowiak { n_bound } => {
                Box::new(JurdzinskiStachowiak::new(n_bound))
            }
            ProtocolKind::FixedProbability { p } => {
                Box::new(FixedProbability::new(p).expect("validated fixed probability"))
            }
            ProtocolKind::FknInterleavedJs { p, n_bound } => Box::new(Interleave::new(
                Fkn::with_probability(p).expect("validated fkn probability"),
                JurdzinskiStachowiak::new(n_bound),
            )),
        }
    }

    /// A short stable label for table columns.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            ProtocolKind::Fkn { .. } => "fkn",
            ProtocolKind::Decay => "decay",
            ProtocolKind::DecayClassic => "decay-classic",
            ProtocolKind::Aloha { .. } => "aloha",
            ProtocolKind::CyclicSweep { .. } => "cyclic-sweep",
            ProtocolKind::CdElection => "cd-election",
            ProtocolKind::JurdzinskiStachowiak { .. } => "js15",
            ProtocolKind::FixedProbability { .. } => "fixed-p",
            ProtocolKind::FknInterleavedJs { .. } => "fkn+js15",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_produces_matching_names() {
        let cases: Vec<(ProtocolKind, &str)> = vec![
            (ProtocolKind::fkn_default(), "fkn"),
            (ProtocolKind::Decay, "decay"),
            (ProtocolKind::DecayClassic, "decay"),
            (ProtocolKind::Aloha { n: 8 }, "aloha"),
            (ProtocolKind::CyclicSweep { n_bound: 64 }, "cyclic-sweep"),
            (ProtocolKind::CdElection, "cd-election"),
            (ProtocolKind::JurdzinskiStachowiak { n_bound: 64 }, "js15"),
            (ProtocolKind::FixedProbability { p: 0.25 }, "fixed-p"),
            (
                ProtocolKind::FknInterleavedJs {
                    p: 0.25,
                    n_bound: 64,
                },
                "interleave",
            ),
        ];
        for (kind, want) in cases {
            assert_eq!(kind.build(0).name(), want, "{kind:?}");
        }
    }

    #[test]
    fn labels_are_distinct() {
        let kinds = [
            ProtocolKind::fkn_default(),
            ProtocolKind::Decay,
            ProtocolKind::DecayClassic,
            ProtocolKind::Aloha { n: 8 },
            ProtocolKind::CyclicSweep { n_bound: 64 },
            ProtocolKind::CdElection,
            ProtocolKind::JurdzinskiStachowiak { n_bound: 64 },
            ProtocolKind::FixedProbability { p: 0.25 },
            ProtocolKind::FknInterleavedJs {
                p: 0.25,
                n_bound: 64,
            },
        ];
        let mut labels: Vec<&str> = kinds.iter().map(ProtocolKind::label).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), kinds.len());
    }

    #[test]
    #[should_panic(expected = "validated fkn probability")]
    fn invalid_fkn_probability_panics_at_build() {
        let _ = ProtocolKind::Fkn { p: 2.0 }.build(0);
    }
}
