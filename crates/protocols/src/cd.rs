//! Leader election with receiver collision detection.

use rand::rngs::SmallRng;
use rand::Rng;

use fading_sim::{Action, Protocol, ProtocolStateError, Reception};

/// The `Θ(log n)` elimination protocol for the radio network model **with
/// receiver collision detection** (the comparison point cited by the paper
/// via Willard / Nakano–Olariu).
///
/// Every active node flips a fair coin each round: heads → transmit,
/// tails → listen. A listening node that observes a **collision** knows at
/// least two nodes transmitted, so the transmitting group is nonempty and
/// the listener eliminates itself. A listener that observes **silence**
/// learns the transmitting group was empty and stays. A listener that
/// decodes a **message** has just witnessed the solo broadcast — the problem
/// is solved (and the listener deactivates).
///
/// Each round with at least two active nodes halves the active set in
/// expectation (the survivors are the heads-flippers, unless nobody flipped
/// heads), giving `O(log n)` rounds w.h.p. — but only thanks to the CD bit,
/// which neither the SINR channel nor the plain radio channel provides.
///
/// # Example
///
/// ```
/// use fading_protocols::CdElection;
/// use fading_sim::Protocol;
///
/// let c = CdElection::new();
/// assert_eq!(c.name(), "cd-election");
/// ```
#[derive(Debug, Clone, Default)]
pub struct CdElection {
    eliminated: bool,
}

impl CdElection {
    /// Creates a fresh (active) instance.
    #[must_use]
    pub fn new() -> Self {
        CdElection { eliminated: false }
    }
}

impl Protocol for CdElection {
    fn act(&mut self, _round: u64, rng: &mut SmallRng) -> Action {
        if rng.gen_bool(0.5) {
            Action::Transmit
        } else {
            Action::Listen
        }
    }

    fn feedback(&mut self, _round: u64, reception: &Reception) {
        match reception {
            // Collision: the transmitting group is nonempty, defer to it.
            Reception::Collision => self.eliminated = true,
            // Solo broadcast observed: contention resolved; stand down.
            Reception::Message { .. } => self.eliminated = true,
            // Nobody transmitted: stay in the race.
            Reception::Silence => {}
        }
    }

    fn is_active(&self) -> bool {
        !self.eliminated
    }

    fn save_state(&self) -> Vec<u64> {
        vec![u64::from(self.eliminated)]
    }

    fn load_state(&mut self, state: &[u64]) -> Result<(), ProtocolStateError> {
        match state {
            [eliminated] => {
                self.eliminated = *eliminated != 0;
                Ok(())
            }
            _ => Err(ProtocolStateError {
                protocol: self.name(),
                expected: 1,
                got: state.len(),
            }),
        }
    }

    fn name(&self) -> &'static str {
        "cd-election"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn collision_eliminates() {
        let mut c = CdElection::new();
        c.feedback(1, &Reception::Collision);
        assert!(!c.is_active());
    }

    #[test]
    fn silence_keeps_active() {
        let mut c = CdElection::new();
        for r in 0..50 {
            c.feedback(r, &Reception::Silence);
        }
        assert!(c.is_active());
    }

    #[test]
    fn message_stands_down() {
        let mut c = CdElection::new();
        c.feedback(1, &Reception::Message { from: 9 });
        assert!(!c.is_active());
    }

    #[test]
    fn coin_is_fair() {
        let mut c = CdElection::new();
        let mut rng = SmallRng::seed_from_u64(2);
        let heads = (0..10_000)
            .filter(|&r| c.act(r, &mut rng).is_transmit())
            .count();
        let rate = heads as f64 / 10_000.0;
        assert!((rate - 0.5).abs() < 0.02, "rate {rate}");
    }
}
