//! A Jurdziński–Stachowiak-style `O(log² n / log log n)` baseline.

use rand::rngs::SmallRng;
use rand::Rng;

use fading_sim::{Action, Protocol, ProtocolStateError, Reception};

/// A faithful-in-spirit implementation of the schedule of Jurdziński &
/// Stachowiak (PODC 2015) — the best previous bound for contention
/// resolution on a fading channel, `O(log² n / log log n)` rounds, requiring
/// an advance **polynomial upper bound `N ≥ n`** on the network size.
///
/// Their key idea: instead of Decay's factor-2 probability ladder of depth
/// `log₂ N`, descend a factor-`log N` ladder of depth only
/// `log N / log log N`, and linger `Θ(log N)` rounds per rung so the rung
/// nearest the ideal density still succeeds; a dampening mechanism exploits
/// the fading channel's spatial reuse to keep intermediate rungs from
/// overshooting. Our baseline reproduces exactly these structural
/// properties — the `(log N / log log N) × Θ(log N)` sweep schedule with a
/// base-`log N` ladder and deactivate-on-reception dampening — which are
/// what determine its round-complexity *shape*; we do not claim
/// constant-factor fidelity to the original's internals (see DESIGN.md,
/// "Substitutions").
///
/// Properties matched to the original: `O(log²N / log log N)` rounds,
/// requires `N`, insensitive to `R` (no dependence on link-length geometry
/// in the schedule).
///
/// # Example
///
/// ```
/// use fading_protocols::JurdzinskiStachowiak;
/// use fading_sim::Protocol;
///
/// let js = JurdzinskiStachowiak::new(10_000);
/// assert_eq!(js.name(), "js15");
/// assert!(js.rounds_per_rung() >= 1);
/// ```
#[derive(Debug, Clone)]
pub struct JurdzinskiStachowiak {
    /// Probability ladder: rung `j` has probability `0.5 · base^{-j}`.
    base: f64,
    rungs: u32,
    rounds_per_rung: u32,
    /// Position within the sweep: (rung, round-within-rung).
    rung: u32,
    tick: u32,
    active: bool,
}

impl JurdzinskiStachowiak {
    /// Creates the protocol for a known polynomial size bound `N ≥ 4`.
    ///
    /// # Panics
    ///
    /// Panics if `n_bound < 4` (the schedule needs `log log N ≥ 1`).
    #[must_use]
    pub fn new(n_bound: usize) -> Self {
        assert!(n_bound >= 4, "size bound must be at least 4");
        let log_n = (n_bound as f64).log2().max(2.0);
        let log_log_n = log_n.log2().max(1.0);
        // Ladder base log N, depth ceil(log N / log log N) + 1, so the
        // deepest rung is below 1/N; linger Θ(log N) rounds per rung.
        let base = log_n;
        let rungs = (log_n / log_log_n).ceil() as u32 + 1;
        let rounds_per_rung = log_n.ceil() as u32;
        JurdzinskiStachowiak {
            base,
            rungs,
            rounds_per_rung,
            rung: 0,
            tick: 0,
            active: true,
        }
    }

    /// Rounds spent on each rung of the ladder (`Θ(log N)`).
    #[must_use]
    pub fn rounds_per_rung(&self) -> u32 {
        self.rounds_per_rung
    }

    /// Number of rungs per sweep (`⌈log N / log log N⌉ + 1`).
    #[must_use]
    pub fn rungs(&self) -> u32 {
        self.rungs
    }

    /// Total rounds in one full sweep.
    #[must_use]
    pub fn sweep_len(&self) -> u64 {
        u64::from(self.rungs) * u64::from(self.rounds_per_rung)
    }

    /// The probability the next `act` call will use.
    #[must_use]
    pub fn current_probability(&self) -> f64 {
        0.5 * self.base.powi(-(self.rung as i32))
    }

    fn advance(&mut self) {
        self.tick += 1;
        if self.tick >= self.rounds_per_rung {
            self.tick = 0;
            self.rung = (self.rung + 1) % self.rungs;
        }
    }
}

impl Protocol for JurdzinskiStachowiak {
    fn act(&mut self, _round: u64, rng: &mut SmallRng) -> Action {
        let p = self.current_probability();
        self.advance();
        if rng.gen_bool(p.clamp(0.0, 1.0)) {
            Action::Transmit
        } else {
            Action::Listen
        }
    }

    fn feedback(&mut self, _round: u64, reception: &Reception) {
        // Dampening: a node that hears a neighbor's broadcast leaves the
        // race, thinning local density exactly as the fading channel allows.
        if reception.is_message() {
            self.active = false;
        }
    }

    fn is_active(&self) -> bool {
        self.active
    }

    fn save_state(&self) -> Vec<u64> {
        vec![u64::from(self.rung), u64::from(self.tick), u64::from(self.active)]
    }

    fn load_state(&mut self, state: &[u64]) -> Result<(), ProtocolStateError> {
        let err = || ProtocolStateError {
            protocol: "js15",
            expected: 3,
            got: state.len(),
        };
        match state {
            [rung, tick, active] => {
                self.rung = u32::try_from(*rung).map_err(|_| err())?;
                self.tick = u32::try_from(*tick).map_err(|_| err())?;
                self.active = *active != 0;
                Ok(())
            }
            _ => Err(err()),
        }
    }

    fn name(&self) -> &'static str {
        "js15"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn schedule_dimensions() {
        let js = JurdzinskiStachowiak::new(1 << 16); // log N = 16, loglog = 4
        assert_eq!(js.rounds_per_rung(), 16);
        assert_eq!(js.rungs(), 5); // ceil(16/4) + 1
        assert_eq!(js.sweep_len(), 80);
    }

    #[test]
    fn ladder_descends_by_factor_log_n() {
        let mut js = JurdzinskiStachowiak::new(1 << 16);
        let mut rng = SmallRng::seed_from_u64(0);
        let p0 = js.current_probability();
        for r in 0..16 {
            let _ = js.act(r, &mut rng);
        }
        let p1 = js.current_probability();
        assert!((p0 / p1 - 16.0).abs() < 1e-9, "ratio {}", p0 / p1);
    }

    #[test]
    fn sweep_wraps_around() {
        let mut js = JurdzinskiStachowiak::new(16); // log N = 4
        let sweep = js.sweep_len();
        let mut rng = SmallRng::seed_from_u64(0);
        let p_start = js.current_probability();
        for r in 0..sweep {
            let _ = js.act(r, &mut rng);
        }
        assert_eq!(js.current_probability(), p_start);
    }

    #[test]
    fn deepest_rung_is_below_one_over_n() {
        for &n in &[16usize, 256, 4096, 1 << 20] {
            let js = JurdzinskiStachowiak::new(n);
            let log_n = (n as f64).log2();
            let deepest = 0.5 * js.base.powi(-(js.rungs as i32 - 1));
            assert!(
                deepest <= 1.0 / n as f64 * log_n,
                "n={n}: deepest rung {deepest} too shallow"
            );
        }
    }

    #[test]
    fn message_dampens() {
        let mut js = JurdzinskiStachowiak::new(64);
        js.feedback(1, &Reception::Message { from: 0 });
        assert!(!js.is_active());
    }

    #[test]
    #[should_panic(expected = "at least 4")]
    fn rejects_tiny_bound() {
        let _ = JurdzinskiStachowiak::new(3);
    }
}
