//! ALOHA-style fixed-rate protocols.

use rand::rngs::SmallRng;
use rand::Rng;

use fading_sim::{Action, Protocol, ProtocolStateError, Reception};

use crate::fkn::ProbabilityError;

/// Slotted ALOHA tuned to a **known exact network size** `n`: every node
/// transmits with probability `1/n` each round, forever.
///
/// A solo transmission occurs per round with probability
/// `n·(1/n)·(1−1/n)^{n−1} → 1/e`, so resolution takes `O(1)` expected rounds
/// and `O(log n)` rounds w.h.p. — but only because the protocol was handed
/// `n`, the very information the paper's setting withholds. It serves as the
/// "omniscient" comparison point in experiment E3.
///
/// # Example
///
/// ```
/// use fading_protocols::Aloha;
/// use fading_sim::Protocol;
///
/// let a = Aloha::new(128);
/// assert_eq!(a.name(), "aloha");
/// ```
#[derive(Debug, Clone)]
pub struct Aloha {
    p: f64,
    active: bool,
}

impl Aloha {
    /// Creates slotted ALOHA for a network of exactly `n ≥ 1` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "network size must be at least 1");
        Aloha {
            p: 1.0 / n as f64,
            active: true,
        }
    }

    /// The per-round transmit probability (`1/n`).
    #[must_use]
    pub fn probability(&self) -> f64 {
        self.p
    }
}

impl Protocol for Aloha {
    fn act(&mut self, _round: u64, rng: &mut SmallRng) -> Action {
        if rng.gen_bool(self.p) {
            Action::Transmit
        } else {
            Action::Listen
        }
    }

    fn feedback(&mut self, _round: u64, reception: &Reception) {
        // Classical ALOHA nodes keep contending; on a fading channel a
        // received message still signals that someone else won locally, so
        // deactivate for parity with the other SINR protocols.
        if reception.is_message() {
            self.active = false;
        }
    }

    fn is_active(&self) -> bool {
        self.active
    }

    fn save_state(&self) -> Vec<u64> {
        vec![u64::from(self.active)]
    }

    fn load_state(&mut self, state: &[u64]) -> Result<(), ProtocolStateError> {
        match state {
            [active] => {
                self.active = *active != 0;
                Ok(())
            }
            _ => Err(ProtocolStateError {
                protocol: self.name(),
                expected: 1,
                got: state.len(),
            }),
        }
    }

    fn name(&self) -> &'static str {
        "aloha"
    }
}

/// A fixed constant transmit probability with **no knockout rule**: the
/// ablation of [`Fkn`](crate::Fkn) used by experiment E12 to show that the
/// deactivate-on-reception rule — not the constant probability alone — is
/// what resolves contention quickly.
///
/// Without knockouts, contention only resolves if, by luck, exactly one of
/// the `n` nodes transmits in some round: probability
/// `n·p·(1−p)^{n−1}`, exponentially small in `n` for constant `p`.
///
/// # Example
///
/// ```
/// use fading_protocols::FixedProbability;
/// use fading_sim::Protocol;
///
/// let f = FixedProbability::new(0.25)?;
/// assert_eq!(f.name(), "fixed-p");
/// # Ok::<(), fading_protocols::ProbabilityError>(())
/// ```
#[derive(Debug, Clone)]
pub struct FixedProbability {
    p: f64,
}

impl FixedProbability {
    /// Creates the protocol with transmit probability `p`.
    ///
    /// # Errors
    ///
    /// Returns [`ProbabilityError`] unless `0 < p < 1`.
    pub fn new(p: f64) -> Result<Self, ProbabilityError> {
        if p > 0.0 && p < 1.0 {
            Ok(FixedProbability { p })
        } else {
            Err(ProbabilityError)
        }
    }

    /// The per-round transmit probability.
    #[must_use]
    pub fn probability(&self) -> f64 {
        self.p
    }
}

impl Protocol for FixedProbability {
    fn act(&mut self, _round: u64, rng: &mut SmallRng) -> Action {
        if rng.gen_bool(self.p) {
            Action::Transmit
        } else {
            Action::Listen
        }
    }

    fn feedback(&mut self, _round: u64, _reception: &Reception) {}

    fn is_active(&self) -> bool {
        true
    }

    fn name(&self) -> &'static str {
        "fixed-p"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn aloha_probability_is_one_over_n() {
        assert_eq!(Aloha::new(4).probability(), 0.25);
        assert_eq!(Aloha::new(1).probability(), 1.0);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn aloha_rejects_zero() {
        let _ = Aloha::new(0);
    }

    #[test]
    fn aloha_knocks_out_on_message() {
        let mut a = Aloha::new(8);
        a.feedback(1, &Reception::Silence);
        assert!(a.is_active());
        a.feedback(2, &Reception::Message { from: 1 });
        assert!(!a.is_active());
    }

    #[test]
    fn fixed_probability_never_deactivates() {
        let mut f = FixedProbability::new(0.5).unwrap();
        f.feedback(1, &Reception::Message { from: 0 });
        assert!(f.is_active());
    }

    #[test]
    fn fixed_probability_validates() {
        assert!(FixedProbability::new(0.0).is_err());
        assert!(FixedProbability::new(1.0).is_err());
        assert!(FixedProbability::new(0.999).is_ok());
    }

    #[test]
    fn aloha_transmit_rate() {
        let mut a = Aloha::new(10);
        let mut rng = SmallRng::seed_from_u64(5);
        let transmits = (0..20_000)
            .filter(|&r| a.act(r, &mut rng).is_transmit())
            .count();
        let rate = transmits as f64 / 20_000.0;
        assert!((rate - 0.1).abs() < 0.01, "rate {rate}");
    }
}
