//! End-to-end: every protocol must actually resolve contention on its
//! natural channel, and the relative round counts must have the shape the
//! theory predicts.

use fading_channel::{Channel, RadioCdChannel, RadioChannel, SinrChannel, SinrParams};
use fading_geom::Deployment;
use fading_protocols::ProtocolKind;
use fading_sim::{montecarlo, Simulation};

fn run_on(
    kind: ProtocolKind,
    channel: impl Fn() -> Box<dyn Channel> + Sync,
    n: usize,
    trials: usize,
    max_rounds: u64,
) -> montecarlo::Summary {
    let results = montecarlo::run_trials(trials, 4, 1000, |seed| {
        let deployment = Deployment::uniform_square(n, (n as f64).sqrt() * 4.0, seed);
        let mut sim = Simulation::new(deployment, channel(), seed, |id| kind.build(id));
        sim.run_until_resolved(max_rounds)
    });
    montecarlo::Summary::from_results(&results)
}

fn sinr() -> Box<dyn Channel> {
    Box::new(SinrChannel::new(SinrParams::default_single_hop()))
}

#[test]
fn fkn_resolves_on_sinr() {
    let s = run_on(ProtocolKind::fkn_default(), sinr, 128, 20, 50_000);
    assert_eq!(s.success_rate, 1.0, "{s:?}");
    assert!(s.mean_rounds < 500.0, "{s:?}");
}

#[test]
fn decay_resolves_on_radio() {
    let s = run_on(
        ProtocolKind::DecayClassic,
        || Box::new(RadioChannel::new()),
        128,
        20,
        100_000,
    );
    assert_eq!(s.success_rate, 1.0, "{s:?}");
}

#[test]
fn cd_election_resolves_on_radio_cd() {
    let s = run_on(
        ProtocolKind::CdElection,
        || Box::new(RadioCdChannel::new()),
        128,
        20,
        10_000,
    );
    assert_eq!(s.success_rate, 1.0, "{s:?}");
    // Θ(log n): should be well under 100 rounds for n = 128.
    assert!(s.mean_rounds < 100.0, "{s:?}");
}

#[test]
fn aloha_with_exact_n_resolves_fast() {
    let s = run_on(
        ProtocolKind::Aloha { n: 128 },
        || Box::new(RadioChannel::new()),
        128,
        20,
        10_000,
    );
    assert_eq!(s.success_rate, 1.0, "{s:?}");
    // Expected ~e rounds; allow generous slack.
    assert!(s.mean_rounds < 40.0, "{s:?}");
}

#[test]
fn cyclic_sweep_resolves_on_radio() {
    let s = run_on(
        ProtocolKind::CyclicSweep { n_bound: 256 },
        || Box::new(RadioChannel::new()),
        128,
        20,
        10_000,
    );
    assert_eq!(s.success_rate, 1.0, "{s:?}");
}

#[test]
fn js_baseline_resolves_on_sinr() {
    let s = run_on(
        ProtocolKind::JurdzinskiStachowiak { n_bound: 256 },
        sinr,
        128,
        20,
        100_000,
    );
    assert_eq!(s.success_rate, 1.0, "{s:?}");
}

#[test]
fn interleaved_fkn_js_resolves_on_sinr() {
    let s = run_on(
        ProtocolKind::FknInterleavedJs {
            p: 0.25,
            n_bound: 256,
        },
        sinr,
        128,
        20,
        100_000,
    );
    assert_eq!(s.success_rate, 1.0, "{s:?}");
}

#[test]
fn fixed_probability_rarely_resolves() {
    // The ablation: without knockout, constant p = 1/4 on n = 64 nodes needs
    // a round where exactly one of 64 transmits: prob 64·(1/4)·(3/4)^63 ≈
    // 2e-7. Within 2000 rounds resolution is essentially impossible.
    let s = run_on(
        ProtocolKind::FixedProbability { p: 0.25 },
        sinr,
        64,
        10,
        2_000,
    );
    assert!(
        s.success_rate < 0.2,
        "knockout-free fixed-p should not resolve: {s:?}"
    );
}

#[test]
fn fkn_beats_classic_decay_on_sinr_at_scale() {
    // The headline comparison (experiment E3 in miniature): on a fading
    // channel FKN (log n) clearly beats the classical non-deactivating
    // Decay schedule (log²-style), which ignores the extra receptions the
    // fading channel delivers. (Decay *with* the knockout rule bolted on
    // behaves like FKN — that ablation is experiment E12.)
    let fkn = run_on(ProtocolKind::fkn_default(), sinr, 256, 10, 200_000);
    let decay = run_on(ProtocolKind::DecayClassic, sinr, 256, 10, 200_000);
    assert_eq!(fkn.success_rate, 1.0);
    assert_eq!(decay.success_rate, 1.0);
    assert!(
        fkn.mean_rounds * 2.0 < decay.mean_rounds,
        "fkn {} vs decay-classic {}",
        fkn.mean_rounds,
        decay.mean_rounds
    );
}

#[test]
fn fkn_round_count_grows_slowly_with_n() {
    // O(log n): quadrupling n should far less than quadruple the rounds.
    let small = run_on(ProtocolKind::fkn_default(), sinr, 64, 15, 50_000);
    let large = run_on(ProtocolKind::fkn_default(), sinr, 256, 15, 50_000);
    assert_eq!(small.success_rate, 1.0);
    assert_eq!(large.success_rate, 1.0);
    assert!(
        large.mean_rounds < small.mean_rounds * 3.0,
        "small {} large {}",
        small.mean_rounds,
        large.mean_rounds
    );
}

#[test]
fn aloha_degrades_gracefully_with_wrong_estimates() {
    // ALOHA's advantage is its exact knowledge of n; feeding it a bad
    // estimate costs real rounds, while FKN (which knows nothing) is
    // unaffected — the knowledge-sensitivity story behind E3.
    let exact = run_on(ProtocolKind::Aloha { n: 128 }, sinr, 128, 15, 200_000);
    let over = run_on(ProtocolKind::Aloha { n: 128 * 16 }, sinr, 128, 15, 200_000);
    assert_eq!(exact.success_rate, 1.0, "{exact:?}");
    assert_eq!(over.success_rate, 1.0, "{over:?}");
    assert!(
        over.mean_rounds > 1.5 * exact.mean_rounds,
        "16x overestimate should hurt: exact {} vs over {}",
        exact.mean_rounds,
        over.mean_rounds
    );
}
