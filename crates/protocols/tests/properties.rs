//! Property tests on protocol state machines: knockout permanence,
//! probability-ladder ranges, and interleaving invariants under arbitrary
//! feedback sequences.

use fading_protocols::{CyclicSweep, Decay, Fkn, Interleave, JurdzinskiStachowiak, ProtocolKind};
use fading_sim::{Protocol, Reception};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn arb_reception() -> impl Strategy<Value = Reception> {
    prop_oneof![
        Just(Reception::Silence),
        Just(Reception::Collision),
        (0usize..64).prop_map(|from| Reception::Message { from }),
    ]
}

fn arb_feedback_seq() -> impl Strategy<Value = Vec<Reception>> {
    prop::collection::vec(arb_reception(), 0..50)
}

proptest! {
    /// Once any knockout-style protocol hears a message it stays inactive
    /// through arbitrary subsequent feedback.
    #[test]
    fn knockout_is_permanent(seq in arb_feedback_seq()) {
        let mut protocols: Vec<Box<dyn Protocol>> = vec![
            Box::new(Fkn::new()),
            Box::new(Decay::new()),
            Box::new(CyclicSweep::new(64)),
            Box::new(JurdzinskiStachowiak::new(64)),
        ];
        for p in &mut protocols {
            let mut dead_since: Option<usize> = None;
            for (i, rx) in seq.iter().enumerate() {
                p.feedback(i as u64 + 1, rx);
                if !p.is_active() && dead_since.is_none() {
                    dead_since = Some(i);
                }
                if dead_since.is_some() {
                    prop_assert!(!p.is_active(), "{} reactivated", p.name());
                }
            }
            if seq.iter().any(Reception::is_message) {
                prop_assert!(!p.is_active(), "{} survived a message", p.name());
            }
        }
    }

    /// Ladder probabilities stay within their documented ranges no matter
    /// how many rounds pass.
    #[test]
    fn ladder_probabilities_stay_in_range(rounds in 1u64..3000) {
        let mut rng = SmallRng::seed_from_u64(0);
        let mut decay = Decay::new();
        let mut sweep = CyclicSweep::new(1024);
        let mut js = JurdzinskiStachowiak::new(1024);
        for r in 1..=rounds {
            let dp = decay.current_probability();
            prop_assert!(dp > 0.0 && dp <= 0.5, "decay p {dp}");
            let sp = sweep.current_probability();
            prop_assert!((0.5f64.powi(10)..=0.5).contains(&sp), "sweep p {sp}");
            let jp = js.current_probability();
            prop_assert!(jp > 0.0 && jp <= 0.5, "js p {jp}");
            let _ = decay.act(r, &mut rng);
            let _ = sweep.act(r, &mut rng);
            let _ = js.act(r, &mut rng);
        }
    }

    /// Interleave's activity is the conjunction of its components under any
    /// action/feedback interleaving.
    #[test]
    fn interleave_activity_is_conjunction(
        seq in prop::collection::vec((any::<bool>(), arb_reception()), 1..60),
    ) {
        let mut combo = Interleave::new(Fkn::new(), Decay::new());
        let mut rng = SmallRng::seed_from_u64(3);
        let mut round = 0u64;
        for (do_feedback, rx) in seq {
            round += 1;
            if combo.is_active() {
                let _ = combo.act(round, &mut rng);
                if do_feedback {
                    combo.feedback(round, &rx);
                }
            }
            prop_assert_eq!(
                combo.is_active(),
                combo.first().is_active() && combo.second().is_active()
            );
        }
    }

    /// Every valid ProtocolKind configuration instantiates without panicking
    /// and starts active.
    #[test]
    fn protocol_kind_builds_for_valid_configs(
        p in 0.01..0.99f64,
        n in 4usize..10_000,
        node in 0usize..64,
    ) {
        let kinds = [
            ProtocolKind::Fkn { p },
            ProtocolKind::Decay,
            ProtocolKind::DecayClassic,
            ProtocolKind::Aloha { n },
            ProtocolKind::CyclicSweep { n_bound: n },
            ProtocolKind::CdElection,
            ProtocolKind::JurdzinskiStachowiak { n_bound: n },
            ProtocolKind::FixedProbability { p },
            ProtocolKind::FknInterleavedJs { p, n_bound: n },
        ];
        for kind in kinds {
            let built = kind.build(node);
            prop_assert!(built.is_active(), "{kind:?} starts inactive");
        }
    }

    /// FKN's transmit frequency converges to its configured probability.
    #[test]
    fn fkn_transmit_rate_matches_p(p in 0.05..0.95f64, seed in any::<u64>()) {
        let mut proto = Fkn::with_probability(p).expect("p in range");
        let mut rng = SmallRng::seed_from_u64(seed);
        let rounds = 4_000;
        let transmits = (1..=rounds)
            .filter(|&r| proto.act(r, &mut rng).is_transmit())
            .count();
        let rate = transmits as f64 / rounds as f64;
        // 4000 samples: ~3.5 sigma tolerance.
        let tol = 3.5 * (p * (1.0 - p) / rounds as f64).sqrt();
        prop_assert!((rate - p).abs() < tol + 0.01, "p={p} rate={rate}");
    }
}
