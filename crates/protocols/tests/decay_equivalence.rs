//! Validates the `Decay::without_knockout` doc claim: on the **radio
//! channel** the knockout and non-knockout variants are equivalent until
//! resolution, because a radio listener receives a message only in a round
//! with exactly one transmitter — which is precisely the resolving round.
//! Knockouts therefore cannot fire before resolution, so matched-seed runs
//! must agree on every pre-resolution round and on the resolution itself.

use fading_channel::RadioChannel;
use fading_geom::Deployment;
use fading_protocols::Decay;
use fading_sim::{Protocol, RunResult, Simulation, TraceLevel};

fn run(seed: u64, n: usize, knockout: bool) -> RunResult {
    let deployment = Deployment::uniform_square(n, 20.0, seed);
    let mut sim = Simulation::new(deployment, Box::new(RadioChannel::new()), seed, |_| {
        let p: Box<dyn Protocol> = if knockout {
            Box::new(Decay::new())
        } else {
            Box::new(Decay::without_knockout())
        };
        p
    });
    sim.set_trace_level(TraceLevel::Full);
    sim.run_until_resolved(200_000)
}

#[test]
fn decay_variants_match_until_resolution_on_radio() {
    for seed in [0u64, 1, 2, 7, 42] {
        for n in [8usize, 24, 48] {
            let with = run(seed, n, true);
            let without = run(seed, n, false);

            assert!(with.resolved(), "seed {seed} n {n}: knockout run must resolve");
            assert_eq!(
                with.resolved_at(),
                without.resolved_at(),
                "seed {seed} n {n}: resolution round must match"
            );
            assert_eq!(with.winner(), without.winner(), "seed {seed} n {n}");
            assert_eq!(
                with.total_transmissions(),
                without.total_transmissions(),
                "seed {seed} n {n}: identical rounds imply identical energy"
            );

            let a = with.trace().rounds();
            let b = without.trace().rounds();
            assert_eq!(a.len(), b.len(), "seed {seed} n {n}");
            let last = a.len() - 1;
            for (k, (ra, rb)) in a.iter().zip(b).enumerate() {
                assert_eq!(ra.round, rb.round);
                assert_eq!(
                    ra.active_before, rb.active_before,
                    "seed {seed} n {n} round {}: participant counts must match",
                    ra.round
                );
                assert_eq!(
                    ra.transmitter_ids, rb.transmitter_ids,
                    "seed {seed} n {n} round {}: transmitter sets must match",
                    ra.round
                );
                assert_eq!(
                    rb.knocked_out, 0,
                    "without_knockout must never deactivate anyone"
                );
                if k < last {
                    // The doc claim, sharpened: on the radio channel no
                    // message is received before the resolving round, so
                    // even the knockout variant records zero knockouts.
                    assert_eq!(
                        ra.knocked_out, 0,
                        "seed {seed} n {n} round {}: a knockout before \
                         resolution contradicts the radio reception rule",
                        ra.round
                    );
                }
            }
        }
    }
}

#[test]
fn knockout_fires_only_in_the_resolving_round() {
    // Direct check of the mechanism: in the resolving round every listener
    // of the knockout variant receives the winner's message and knocks out,
    // while the non-knockout variant keeps everyone active.
    let seed = 3;
    let with = run(seed, 16, true);
    let without = run(seed, 16, false);
    assert!(with.resolved());
    let last_with = with.trace().rounds().last().unwrap();
    let last_without = without.trace().rounds().last().unwrap();
    // Radio broadcast reaches every listener, so the knockout count is
    // exactly the listener count of the resolving round.
    assert_eq!(last_with.knocked_out, last_with.active_before - 1);
    assert_eq!(last_without.knocked_out, 0);
    assert_eq!(without.final_active(), without.initial_nodes());
    assert_eq!(
        with.final_active(),
        with.initial_nodes() - last_with.knocked_out
    );
}
