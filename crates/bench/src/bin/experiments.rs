//! Regenerates the experiment tables (E1–E15) recorded in `EXPERIMENTS.md`.
//!
//! Usage:
//!
//! ```text
//! experiments [e1 e2 …] [--smoke|--quick|--full] [--out <dir>] [--telemetry <dir>]
//! ```
//!
//! With no ids, runs all sixteen experiments. `--out <dir>` additionally
//! writes one CSV per table. `--telemetry <dir>` makes the
//! telemetry-recording experiments (E8, E9) export their JSONL round-event
//! streams into `<dir>` (seed-tagged trial blocks; tables are unchanged).
//!
//! The binary is interrupt-safe: on SIGINT/SIGTERM it finishes the
//! experiment in flight, flushes the tables completed so far (including a
//! partial `report.md` when `--out` is set), and exits with status 130.
//! Experiments that persist per-trial manifests (E16) can then be resumed.

use std::io::Write as _;
use std::time::Instant;

use fading_bench::interrupt;
use fading_bench::{config_from_args, ids_from_args, out_dir_from_args, telemetry_dir_from_args};
use fading_cr::experiments::{run_by_id_with, ALL_IDS};
use fading_cr::report::Report;

fn main() {
    interrupt::install();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = config_from_args(&args);
    let mut ids = ids_from_args(&args);
    if ids.is_empty() {
        ids = ALL_IDS.iter().map(|s| (*s).to_string()).collect();
    }
    let out_dir = out_dir_from_args(&args);
    if let Some(dir) = &out_dir {
        std::fs::create_dir_all(dir).expect("create output directory");
    }
    let telemetry_dir = telemetry_dir_from_args(&args);
    if let Some(dir) = &telemetry_dir {
        std::fs::create_dir_all(dir).expect("create telemetry directory");
    }

    println!(
        "# fading-cr experiment harness — trials={} threads={} max_n=2^{} seed={}\n",
        cfg.trials, cfg.threads, cfg.max_n_pow2, cfg.seed
    );
    let mut report = Report::new("fading-cr experiment run").preamble(format!(
        "Configuration: trials={} threads={} max_n=2^{} max_rounds={} seed={}.",
        cfg.trials, cfg.threads, cfg.max_n_pow2, cfg.max_rounds, cfg.seed
    ));

    let mut stopped_early = false;
    for id in &ids {
        if interrupt::interrupted() {
            stopped_early = true;
            break;
        }
        let start = Instant::now();
        match run_by_id_with(id, &cfg, telemetry_dir.as_deref()) {
            Some(table) => {
                println!("{}", table.render());
                println!("  [{} completed in {:.1?}]\n", id, start.elapsed());
                if let Some(dir) = &out_dir {
                    let path = format!("{dir}/{id}.csv");
                    let mut f = std::fs::File::create(&path).expect("create CSV file");
                    f.write_all(table.to_csv().as_bytes()).expect("write CSV");
                }
                report = report.table(table);
            }
            None => {
                eprintln!(
                    "unknown experiment id: {id} (known: {})",
                    ALL_IDS.join(", ")
                );
                std::process::exit(2);
            }
        }
    }
    if stopped_early {
        report = report.preamble(
            "NOTE: interrupted by SIGINT/SIGTERM; this report is partial.".to_string(),
        );
    }
    if let Some(dir) = &out_dir {
        let path = format!("{dir}/report.md");
        std::fs::write(&path, report.render()).expect("write report.md");
        eprintln!("wrote {path}");
    }
    if stopped_early {
        eprintln!("interrupted: flushed completed tables, exiting");
        std::process::exit(interrupt::INTERRUPT_EXIT_CODE);
    }
}
