//! `loadgen` — replays a mixed job workload against an in-process
//! `fading-server` and snapshots throughput + latency percentiles.
//!
//! ```text
//! loadgen [--quick] [--workers N] [--out BENCH_service.json] [--root <dir>]
//!         [--monitor-ms MS] [--watch] [--dump-frames <path>]
//! ```
//!
//! The default (full) mix is a few hundred small-n jobs plus two
//! far-field-tier huge-n jobs — the committed `BENCH_service.json`
//! baseline that `bench-gate --service` diffs against. `--quick` runs a
//! seconds-scale mix for smoke checks. `--root` keeps the queue directory
//! around for inspection; by default a temp directory is used and
//! removed.
//!
//! The server monitor runs during the replay (default 100 ms tick; `0`
//! disables it) so the written baseline carries a `timeseries` section
//! recording what the obs ring saw. `--watch` additionally attaches a
//! live draining subscriber, making the measured numbers include the
//! full streaming cost — what `bench-gate --stream-overhead` compares.
//! `--dump-frames <path>` writes the captured frames as JSONL (one
//! `frame_to_json` line each) for offline narration — E19's tables come
//! from this.

use std::path::PathBuf;
use std::process::ExitCode;

use fading_bench::interrupt;
use fading_bench::service::{render_service_json, run_loadgen_observed, LoadgenObs, ServiceMix};

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() -> ExitCode {
    interrupt::install();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let mut mix = if quick {
        ServiceMix::quick()
    } else {
        ServiceMix::full()
    };
    if let Some(w) = flag_value(&args, "--workers") {
        mix.workers = w.parse().expect("--workers wants an integer");
    }
    let monitor_ms: u64 = flag_value(&args, "--monitor-ms")
        .map(|v| v.parse().expect("--monitor-ms wants an integer"))
        .unwrap_or(100);
    let obs = LoadgenObs {
        monitor_ms: (monitor_ms > 0).then_some(monitor_ms),
        subscriber: args.iter().any(|a| a == "--watch"),
    };
    let out = flag_value(&args, "--out");
    let (root, ephemeral) = match flag_value(&args, "--root") {
        Some(dir) => (PathBuf::from(dir), false),
        None => (
            std::env::temp_dir().join(format!("fading-loadgen-{}", std::process::id())),
            true,
        ),
    };

    eprintln!(
        "# loadgen: {} small (n {:?}, {} trials) + {} huge (n {}, {} rounds cap), {} workers",
        mix.small_jobs,
        mix.small_ns,
        mix.small_trials,
        mix.huge_jobs,
        mix.huge_n,
        mix.huge_max_rounds,
        mix.workers
    );
    let result = match run_loadgen_observed(&root, &mix, &obs) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("loadgen failed: {e}");
            if ephemeral {
                std::fs::remove_dir_all(&root).ok();
            }
            return ExitCode::FAILURE;
        }
    };
    if ephemeral {
        std::fs::remove_dir_all(&root).ok();
    }

    println!(
        "loadgen: {} jobs ({} failed) in {:.2}s = {:.3} jobs/sec",
        result.jobs, result.failed, result.elapsed_secs, result.jobs_per_sec
    );
    println!(
        "latency ms: p50 {:.1}  p95 {:.1}  p99 {:.1}  max {:.1}",
        result.p50_ms, result.p95_ms, result.p99_ms, result.max_ms
    );
    if result.ts_frames > 0 || result.watch_lines > 0 {
        println!(
            "obs: {} time-series frames ({} trials), {} lines streamed to the watcher",
            result.ts_frames, result.ts_trials, result.watch_lines
        );
    }
    if result.failed > 0 {
        eprintln!("loadgen: {} jobs failed — not writing a baseline", result.failed);
        return ExitCode::FAILURE;
    }
    if let Some(path) = flag_value(&args, "--dump-frames") {
        let mut body = result.frames_jsonl.join("\n");
        body.push('\n');
        if let Err(e) = std::fs::write(&path, body) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("# wrote {} frames to {path}", result.ts_frames);
    }
    if let Some(path) = out {
        let json = render_service_json(&mix, &result);
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("# wrote {path}");
    }
    ExitCode::SUCCESS
}
