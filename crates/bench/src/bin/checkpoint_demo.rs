//! Deterministic checkpoint/resume driver for the kill/resume integration
//! test (and for poking at the snapshot layer by hand).
//!
//! Usage:
//!
//! ```text
//! checkpoint_demo [--n <nodes>] [--seed <seed>] [--max-rounds <r>]
//!                 [--checkpoint <path>] [--resume] [--every <rounds>]
//!                 [--round-delay-ms <ms>]
//! ```
//!
//! Runs one faulted simulation (jamming, a noise burst, churn, and
//! Gilbert–Elliott loss — every fault cursor the snapshot must carry) to
//! resolution or the round cap. With `--checkpoint` a checksummed
//! [`SimSnapshot`] is atomically rewritten every `--every` rounds; with
//! `--resume` the run restores from that file first (a missing file starts
//! fresh; a corrupt one is a loud typed error, exit 3). `--round-delay-ms`
//! slows the loop down so a test can SIGKILL it mid-flight.
//!
//! The single stdout line `RESULT …` is the run's digest: a resumed run
//! must reproduce the uninterrupted run's line byte for byte.
//!
//! [`SimSnapshot`]: fading_cr::sim::recover::SimSnapshot

use std::path::PathBuf;
use std::time::Duration;

use fading_cr::prelude::*;
use fading_cr::sim::faults::{ChurnEvent, GilbertElliott, Jammer, NoiseBurst};
use fading_cr::sim::recover::SimSnapshot;

fn flag_value<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> T {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn build_sim(n: usize, seed: u64) -> Simulation {
    let d = Deployment::uniform_density(n, 0.25, seed);
    let params = SinrParams::default_single_hop().with_power_for(&d);
    let mut sim = Simulation::new(d, Box::new(SinrChannel::new(params)), seed, |_| {
        Box::new(Fkn::new())
    });
    let plan = FaultPlan::new()
        .with_jammer(
            Jammer::new(Point::new(1.0, 1.0), params.power() * 8.0, 3, 6, 2, Some(40))
                .expect("valid jammer"),
        )
        .with_noise_burst(NoiseBurst::new(4, 7, 2.5).expect("valid burst"))
        .with_churn(ChurnEvent::crash(5, 0).expect("valid crash"))
        .with_churn(ChurnEvent::revive(11, 0).expect("valid revive"))
        .with_churn(ChurnEvent::late_wake(3, 1).expect("valid late wake"))
        .with_loss(GilbertElliott::new(0.15, 0.4, 0.02, 0.6).expect("valid loss chain"));
    sim.set_fault_plan(plan).expect("valid fault plan");
    sim
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let n: usize = flag_value(&args, "--n", 48);
    let seed: u64 = flag_value(&args, "--seed", 11);
    let max_rounds: u64 = flag_value(&args, "--max-rounds", 5_000);
    let every: u64 = flag_value(&args, "--every", 1);
    let delay_ms: u64 = flag_value(&args, "--round-delay-ms", 0);
    let checkpoint: Option<PathBuf> = args
        .iter()
        .position(|a| a == "--checkpoint")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from);
    let resume = args.iter().any(|a| a == "--resume");

    let mut sim = build_sim(n, seed);

    if resume {
        match checkpoint.as_deref() {
            Some(path) if path.exists() => match SimSnapshot::read_from_path(path) {
                Ok(snap) => {
                    if let Err(e) = sim.restore(&snap) {
                        eprintln!("checkpoint at {} does not fit this run: {e}", path.display());
                        std::process::exit(3);
                    }
                    eprintln!("resumed at round {}", sim.round());
                }
                Err(e) => {
                    eprintln!("unreadable checkpoint {}: {e}", path.display());
                    std::process::exit(3);
                }
            },
            Some(path) => eprintln!("no checkpoint at {}, starting fresh", path.display()),
            None => eprintln!("--resume without --checkpoint, starting fresh"),
        }
    }

    while sim.resolved_at().is_none() && sim.round() < max_rounds {
        sim.step();
        if let Some(path) = &checkpoint {
            if sim.round().is_multiple_of(every.max(1)) {
                if let Err(e) = sim.snapshot().write_to_path(path) {
                    eprintln!("checkpoint write failed: {e}");
                    std::process::exit(4);
                }
            }
        }
        if delay_ms > 0 {
            std::thread::sleep(Duration::from_millis(delay_ms));
        }
    }

    // The budget is already consumed (or the run resolved), so this only
    // assembles the RunResult from the final state.
    let result = sim.run_until_resolved(max_rounds);
    println!(
        "RESULT resolved_at={:?} rounds={} winner={:?} transmissions={} final_active={}",
        result.resolved_at(),
        result.rounds_executed(),
        result.winner(),
        result.total_transmissions(),
        result.final_active(),
    );
}
