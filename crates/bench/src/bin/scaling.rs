//! Hand-timed tier-scaling snapshot: per-round resolve cost of the exact
//! scan, the gain cache, and the far-field engine at
//! `n ∈ {1024, 4096, 16384, 65536}`, written as `BENCH_scaling.json`.
//!
//! Usage:
//!
//! ```text
//! scaling [--out <path>]
//! ```
//!
//! This is the snapshot producer behind the repo's scaling claims; the
//! Criterion bench `resolve_scaling` tracks the same workload with proper
//! sampling for regression detection. Timing here is deliberately simple
//! (adaptive iteration counts against a wall-clock budget) so the binary
//! stays runnable at `n = 65536`, where one exact round costs seconds.

use std::fmt::Write as _;
use std::time::Instant;

use fading_cr::channel::ChannelPerturbation;
use fading_cr::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Deployment density (nodes per unit²) of the standard experiment sweep.
const DENSITY: f64 = 0.25;
/// Deployment seed: fixed so snapshots are comparable across runs.
const SEED: u64 = 7;

/// Times `f` with one warm-up call plus enough iterations to roughly fill
/// `budget_ms` (clamped to [3, 200]); returns `(iters, ms_per_call)`.
fn time_ms(mut f: impl FnMut(), budget_ms: f64) -> (u32, f64) {
    let start = Instant::now();
    f();
    let estimate = start.elapsed().as_secs_f64() * 1e3;
    let iters = ((budget_ms / estimate.max(1e-4)) as u32).clamp(3, 200);
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    (
        iters,
        start.elapsed().as_secs_f64() * 1e3 / f64::from(iters),
    )
}

struct TierSample {
    tier: &'static str,
    iters: u32,
    ms_per_round: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_scaling.json".to_string());

    let mut size_blocks = Vec::new();
    println!("# resolve-tier scaling (25% transmitters, density {DENSITY}, seed {SEED})");
    println!(
        "{:>7} {:>11} {:>6} {:>14}",
        "n", "tier", "iters", "ms/round"
    );
    for &n in &[1024usize, 4096, 16384, 65536] {
        let d = Deployment::uniform_density(n, DENSITY, SEED);
        let positions = d.points().to_vec();
        let tx: Vec<usize> = (0..n).step_by(4).collect();
        let rx: Vec<usize> = (0..n).filter(|i| i % 4 != 0).collect();
        let params = SinrParams::default_single_hop().with_power_for(&d);
        let sinr = SinrChannel::new(params);
        // The big sizes get a small budget on purpose: the adaptive clamp
        // still gives ≥ 3 honest iterations and one exact round at
        // n = 65536 already costs seconds.
        let budget_ms = if n >= 16384 { 3000.0 } else { 1000.0 };

        let mut samples = Vec::new();
        let mut rng = SmallRng::seed_from_u64(0);

        let exact_rx = sinr.resolve(&positions, &tx, &rx, &mut rng);
        let (iters, ms) = time_ms(
            || {
                sinr.resolve(&positions, &tx, &rx, &mut rng);
            },
            budget_ms,
        );
        samples.push(TierSample {
            tier: "exact",
            iters,
            ms_per_round: ms,
        });

        if let Some(cache) = sinr.build_gain_cache(&positions) {
            let cached_rx = sinr.resolve_cached(&positions, &tx, &rx, Some(&cache), &mut rng);
            assert_eq!(exact_rx, cached_rx, "gain cache broke exactness at n={n}");
            let (iters, ms) = time_ms(
                || {
                    sinr.resolve_cached(&positions, &tx, &rx, Some(&cache), &mut rng);
                },
                budget_ms,
            );
            samples.push(TierSample {
                tier: "gain-cache",
                iters,
                ms_per_round: ms,
            });
        }

        let mut engine = sinr.build_farfield_engine(&positions);
        let far_rx = sinr.resolve_farfield(
            &positions,
            &tx,
            &rx,
            engine.as_mut(),
            &ChannelPerturbation::neutral(),
            &mut rng,
        );
        assert_eq!(exact_rx, far_rx, "farfield broke exactness at n={n}");
        let (iters, ms) = time_ms(
            || {
                sinr.resolve_farfield(
                    &positions,
                    &tx,
                    &rx,
                    engine.as_mut(),
                    &ChannelPerturbation::neutral(),
                    &mut rng,
                );
            },
            budget_ms,
        );
        samples.push(TierSample {
            tier: "farfield",
            iters,
            ms_per_round: ms,
        });

        for s in &samples {
            println!(
                "{:>7} {:>11} {:>6} {:>14.4}",
                n, s.tier, s.iters, s.ms_per_round
            );
        }
        let exact_ms = samples[0].ms_per_round;
        let far_ms = samples.last().expect("farfield sample").ms_per_round;
        let speedup = exact_ms / far_ms;
        println!("{:>7} {:>11} {:>6} {:>13.2}x", n, "speedup", "", speedup);

        let stats = engine
            .as_ref()
            .map(FarFieldEngine::stats)
            .unwrap_or_default();
        let served = stats.fast_decisions + stats.noise_floor_silences + stats.exact_fallbacks;
        let fallback_frac = if served > 0 {
            stats.exact_fallbacks as f64 / served as f64
        } else {
            0.0
        };

        let mut tiers_json = String::new();
        for (i, s) in samples.iter().enumerate() {
            if i > 0 {
                tiers_json.push_str(", ");
            }
            write!(
                tiers_json,
                "{{\"tier\": \"{}\", \"iters\": {}, \"ms_per_round\": {:.6}}}",
                s.tier, s.iters, s.ms_per_round
            )
            .expect("write to String cannot fail");
        }
        size_blocks.push(format!(
            "    {{\n      \"n\": {n},\n      \"tiers\": [{tiers_json}],\n      \
             \"speedup_farfield_vs_exact\": {speedup:.2},\n      \
             \"farfield_fallback_fraction\": {fallback_frac:.6}\n    }}"
        ));
    }

    let json = format!(
        "{{\n  \"bench\": \"resolve_scaling\",\n  \"workload\": {{\n    \
         \"tx_fraction\": 0.25,\n    \"density\": {DENSITY},\n    \"seed\": {SEED},\n    \
         \"channel\": \"sinr-single-hop\"\n  }},\n  \"sizes\": [\n{}\n  ]\n}}\n",
        size_blocks.join(",\n")
    );
    std::fs::write(&out_path, json).expect("write snapshot JSON");
    println!("\nwrote {out_path}");
}
