//! Hand-timed tier-scaling snapshot: per-round resolve cost of the exact
//! scan, the gain cache, the flat far-field engine, and the hierarchical
//! (tile-tree) engine at
//! `n ∈ {1024, 4096, 16384, 65536, 262144, 1048576}` (quadratic tiers are
//! skipped above their ceilings), written as `BENCH_scaling.json`.
//!
//! Usage:
//!
//! ```text
//! scaling [--out <path>]
//! ```
//!
//! This is the snapshot producer behind the repo's scaling claims; the
//! `bench-gate` binary re-runs the same probe (shared via
//! `fading_bench::probe`) and diffs against the committed snapshot, and
//! the Criterion bench `resolve_scaling` tracks the workload with proper
//! sampling.

use fading_bench::interrupt;
use fading_bench::probe::{
    default_budget_ms, render_snapshot_json, run_kernel_probe, run_probe, DEFAULT_SIZES, DENSITY,
    SEED,
};

fn main() {
    interrupt::install();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_scaling.json".to_string());

    println!("# resolve-tier scaling (25% transmitters, density {DENSITY}, seed {SEED})");
    println!("# per-α kernel micro-probe (fused gain_batch + fold, ms per million points)");
    let kernels = run_kernel_probe(200.0);
    for k in &kernels {
        println!("{:>9} (α = {:<4}) {:>10.4} ms/Mpoint", k.class, k.alpha, k.ms_per_mpoint);
    }
    println!(
        "{:>7} {:>11} {:>6} {:>14}",
        "n", "tier", "iters", "ms/round"
    );
    let samples = run_probe(&DEFAULT_SIZES, default_budget_ms, |s| {
        for t in &s.tiers {
            println!(
                "{:>7} {:>11} {:>6} {:>14.4}",
                s.n, t.tier, t.iters, t.ms_per_round
            );
        }
        if s.speedup_farfield_vs_exact > 0.0 {
            println!(
                "{:>7} {:>11} {:>6} {:>13.2}x",
                s.n, "ff-speedup", "", s.speedup_farfield_vs_exact
            );
        }
        if s.speedup_hierarchical_vs_exact > 0.0 {
            println!(
                "{:>7} {:>11} {:>6} {:>13.2}x",
                s.n, "h-speedup", "", s.speedup_hierarchical_vs_exact
            );
        }
    });

    std::fs::write(&out_path, render_snapshot_json(&samples, &kernels))
        .expect("write snapshot JSON");
    println!("\nwrote {out_path}");
    if interrupt::interrupted() {
        eprintln!("interrupted: snapshot covers the sizes completed before the signal");
        std::process::exit(interrupt::INTERRUPT_EXIT_CODE);
    }
}
