//! `bench-gate` — the perf-regression gate: re-runs the resolve-tier
//! scaling probe (the same workload as the `scaling` snapshot binary) and
//! diffs the fresh timings against a committed `BENCH_scaling.json`
//! baseline, per (tier, n). When the baseline carries the per-α kernel
//! micro-probe (`"kernels"`), those cells are re-measured and diffed too
//! (shown as `kernel:<class>` rows). Exits nonzero when any cell slows
//! down beyond the relative threshold; speedups never fail.
//!
//! Usage:
//!
//! ```text
//! bench-gate [--baseline <path>] [--threshold <x>] [--check] [--quick]
//!            [--sizes a,b,c] [--budget-ms <x>]
//! ```
//!
//! * `--baseline <path>` — snapshot to diff against (default
//!   `BENCH_scaling.json`).
//! * `--threshold <x>` — fail beyond an `x`-fold slowdown (default 1.5).
//! * `--check` — informational mode: print the verdict table but always
//!   exit 0 (what CI runs, since absolute baselines are host-specific).
//! * `--quick` — probe only the sizes ≤ 4096 with a small budget, for a
//!   fast smoke signal.
//! * `--sizes a,b,c` — override the probed sizes (baseline cells for
//!   unprobed sizes are skipped).
//! * `--budget-ms <x>` — per-tier wall budget in milliseconds.
//! * `--inject-slowdown <f>` — multiply measured times by `f` (test hook
//!   proving the gate trips on a synthetic regression).
//!
//! With `--service` the gate switches to the service-throughput baseline
//! instead: it parses `BENCH_service.json` (or `--baseline <path>`),
//! replays the exact workload mix recorded in it through an in-process
//! `fading-server`, and fails when throughput drops — or the p95 latency
//! tail grows — beyond the threshold. `--check` and `--inject-slowdown`
//! behave the same in both modes.
//!
//! With `--stream-overhead` the gate replays the baseline's mix twice on
//! this host — bare, then with the monitor and a live watch subscriber
//! attached — and fails when streaming costs more than the threshold
//! (default 1.05, the "watchers are ≤5% overhead" contract). The paired
//! design makes it host-independent: both runs share the machine, so the
//! ratio isolates the observability cost. `--quick` swaps in the
//! seconds-scale mix.

use std::process::ExitCode;

use fading_bench::gate::{
    judge, judge_kernels, parse_baseline, parse_kernel_baseline, render_verdicts,
};
use fading_bench::probe::{default_budget_ms, run_kernel_probe, run_probe, DEFAULT_SIZES};
use fading_bench::service::{
    judge_service, judge_stream_overhead, parse_service_baseline, render_service_verdict,
    render_stream_overhead, run_loadgen, run_loadgen_observed, LoadgenObs, ServiceMix,
};

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// The `--service` mode: replay the baseline's recorded mix and gate on
/// throughput / latency-tail ratios.
fn service_gate(baseline_path: &str, threshold: f64, check_only: bool, inject: f64) -> ExitCode {
    let text = std::fs::read_to_string(baseline_path)
        .unwrap_or_else(|e| panic!("read baseline {baseline_path}: {e}"));
    let baseline = parse_service_baseline(&text).unwrap_or_else(|e| panic!("{baseline_path}: {e}"));

    eprintln!(
        "# bench-gate --service: replaying {} small + {} huge jobs against {baseline_path}",
        baseline.mix.small_jobs, baseline.mix.huge_jobs
    );
    let root = std::env::temp_dir().join(format!("fading-service-gate-{}", std::process::id()));
    std::fs::remove_dir_all(&root).ok();
    let mut measured = match run_loadgen(&root, &baseline.mix) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("bench-gate: loadgen replay failed: {e}");
            std::fs::remove_dir_all(&root).ok();
            return ExitCode::FAILURE;
        }
    };
    std::fs::remove_dir_all(&root).ok();
    if inject != 1.0 {
        eprintln!("# injecting synthetic {inject}x slowdown");
        measured.jobs_per_sec /= inject;
        measured.p50_ms *= inject;
        measured.p95_ms *= inject;
        measured.p99_ms *= inject;
        measured.max_ms *= inject;
    }

    let verdict = judge_service(&baseline, &measured, threshold);
    print!(
        "{}",
        render_service_verdict(&baseline, &measured, &verdict, threshold)
    );
    if measured.failed > 0 {
        println!("bench-gate: {} jobs failed during the replay", measured.failed);
        return ExitCode::FAILURE;
    }
    if verdict.regressed {
        println!(
            "bench-gate: service regressed beyond {threshold:.2}x{}",
            if check_only { " (check mode: not failing)" } else { "" }
        );
        if !check_only {
            return ExitCode::FAILURE;
        }
    } else {
        println!("bench-gate: service throughput and latency within {threshold:.2}x of baseline");
    }
    ExitCode::SUCCESS
}

/// The `--stream-overhead` mode: the same mix twice — bare vs watched —
/// gated on the paired throughput ratio.
fn stream_overhead_gate(
    baseline_path: &str,
    threshold: f64,
    check_only: bool,
    quick: bool,
    inject: f64,
) -> ExitCode {
    let mix = if quick {
        ServiceMix::quick()
    } else {
        let text = std::fs::read_to_string(baseline_path)
            .unwrap_or_else(|e| panic!("read baseline {baseline_path}: {e}"));
        parse_service_baseline(&text)
            .unwrap_or_else(|e| panic!("{baseline_path}: {e}"))
            .mix
    };
    eprintln!(
        "# bench-gate --stream-overhead: {} small + {} huge jobs, bare then watched",
        mix.small_jobs, mix.huge_jobs
    );
    let base = std::env::temp_dir().join(format!("fading-stream-gate-{}", std::process::id()));
    std::fs::remove_dir_all(&base).ok();
    let run = |name: &str, obs: &LoadgenObs| {
        let root = base.join(name);
        let result = run_loadgen_observed(&root, &mix, obs);
        std::fs::remove_dir_all(&root).ok();
        result
    };
    let plain = run("bare", &LoadgenObs::default());
    let watched = run("watched", &LoadgenObs::watched(100));
    std::fs::remove_dir_all(&base).ok();
    let (plain, mut watched) = match (plain, watched) {
        (Ok(p), Ok(w)) => (p, w),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("bench-gate: stream-overhead replay failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if inject != 1.0 {
        eprintln!("# injecting synthetic {inject}x slowdown on the watched run");
        watched.jobs_per_sec /= inject;
        watched.p95_ms *= inject;
    }
    if watched.watch_lines == 0 || watched.ts_frames == 0 {
        eprintln!(
            "bench-gate: watched replay streamed nothing ({} lines, {} frames) — the \
             comparison would be vacuous",
            watched.watch_lines, watched.ts_frames
        );
        return ExitCode::FAILURE;
    }

    let verdict = judge_stream_overhead(&plain, &watched, threshold);
    print!(
        "{}",
        render_stream_overhead(&plain, &watched, &verdict, threshold)
    );
    if plain.failed > 0 || watched.failed > 0 {
        println!(
            "bench-gate: {} jobs failed during the replays",
            plain.failed + watched.failed
        );
        return ExitCode::FAILURE;
    }
    if verdict.regressed {
        println!(
            "bench-gate: streaming overhead beyond {threshold:.2}x{}",
            if check_only { " (check mode: not failing)" } else { "" }
        );
        if !check_only {
            return ExitCode::FAILURE;
        }
    } else {
        println!("bench-gate: streaming overhead within {threshold:.2}x");
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let service = args.iter().any(|a| a == "--service");
    let stream_overhead = args.iter().any(|a| a == "--stream-overhead");
    let baseline_path = flag_value(&args, "--baseline").unwrap_or_else(|| {
        if service || stream_overhead {
            "BENCH_service.json".to_string()
        } else {
            "BENCH_scaling.json".to_string()
        }
    });
    let threshold: f64 = flag_value(&args, "--threshold")
        .map(|v| v.parse().expect("--threshold wants a number"))
        .unwrap_or(if stream_overhead { 1.05 } else { 1.5 });
    assert!(
        threshold.is_finite() && threshold > 0.0,
        "--threshold must be a positive number, got {threshold}"
    );
    let check_only = args.iter().any(|a| a == "--check");
    let quick = args.iter().any(|a| a == "--quick");
    let inject: f64 = flag_value(&args, "--inject-slowdown")
        .map(|v| v.parse().expect("--inject-slowdown wants a number"))
        .unwrap_or(1.0);
    if stream_overhead {
        return stream_overhead_gate(&baseline_path, threshold, check_only, quick, inject);
    }
    if service {
        return service_gate(&baseline_path, threshold, check_only, inject);
    }

    let sizes: Vec<usize> = match flag_value(&args, "--sizes") {
        Some(list) => list
            .split(',')
            .map(|s| s.trim().parse().expect("--sizes wants integers"))
            .collect(),
        None if quick => DEFAULT_SIZES.iter().copied().filter(|&n| n <= 4096).collect(),
        None => DEFAULT_SIZES.to_vec(),
    };
    let budget_ms = flag_value(&args, "--budget-ms")
        .map(|v| v.parse::<f64>().expect("--budget-ms wants a number"));

    let text = std::fs::read_to_string(&baseline_path)
        .unwrap_or_else(|e| panic!("read baseline {baseline_path}: {e}"));
    let baseline = parse_baseline(&text).unwrap_or_else(|e| panic!("{baseline_path}: {e}"));
    let kernel_baseline =
        parse_kernel_baseline(&text).unwrap_or_else(|e| panic!("{baseline_path}: {e}"));

    eprintln!("# bench-gate: probing n = {sizes:?} against {baseline_path}");
    let mut measured_kernels = if kernel_baseline.is_empty() {
        Vec::new()
    } else {
        run_kernel_probe(if quick { 20.0 } else { 200.0 })
    };
    let mut measured = run_probe(
        &sizes,
        |n| budget_ms.unwrap_or_else(|| if quick { 50.0 } else { default_budget_ms(n) }),
        |s| eprintln!("  probed n = {} ({} tiers)", s.n, s.tiers.len()),
    );
    if inject != 1.0 {
        eprintln!("# injecting synthetic {inject}x slowdown");
        for s in &mut measured {
            for t in &mut s.tiers {
                t.ms_per_round *= inject;
            }
        }
        for k in &mut measured_kernels {
            k.ms_per_mpoint *= inject;
        }
    }

    let scaling_verdicts = judge(&baseline, &measured, threshold);
    if scaling_verdicts.is_empty() {
        // Kernel cells alone don't rescue a size list that matched
        // nothing — the caller asked for sizes the baseline never saw.
        eprintln!("bench-gate: no baseline cells matched the probed sizes");
        return ExitCode::FAILURE;
    }
    let mut verdicts = judge_kernels(&kernel_baseline, &measured_kernels, threshold);
    verdicts.extend(scaling_verdicts);
    print!("{}", render_verdicts(&verdicts, threshold));
    let regressed = verdicts.iter().filter(|v| v.regressed).count();
    if regressed > 0 {
        println!(
            "bench-gate: {regressed}/{} cells regressed beyond {threshold:.2}x{}",
            verdicts.len(),
            if check_only { " (check mode: not failing)" } else { "" }
        );
        if !check_only {
            return ExitCode::FAILURE;
        }
    } else {
        println!(
            "bench-gate: all {} cells within {threshold:.2}x of baseline",
            verdicts.len()
        );
    }
    ExitCode::SUCCESS
}
