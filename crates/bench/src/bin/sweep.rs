//! Ad-hoc single-configuration runs for exploration.
//!
//! Usage:
//!
//! ```text
//! sweep [--n <n>] [--protocol <fkn|decay|decay-classic|aloha|js|sweep|fixed>]
//!       [--channel <sinr|radio|radio-cd|rayleigh>] [--p <prob>]
//!       [--alpha <a>] [--trials <t>] [--seed <s>] [--max-rounds <r>]
//! ```
//!
//! Prints a one-line distribution summary, e.g. to eyeball a configuration
//! before wiring it into an experiment.

use fading_cr::experiments::ExperimentConfig;
use fading_cr::prelude::*;

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let n: usize = flag(&args, "--n").map_or(256, |v| v.parse().expect("--n"));
    let trials: usize = flag(&args, "--trials").map_or(50, |v| v.parse().expect("--trials"));
    let seed: u64 = flag(&args, "--seed").map_or(1, |v| v.parse().expect("--seed"));
    let max_rounds: u64 =
        flag(&args, "--max-rounds").map_or(1_000_000, |v| v.parse().expect("--max-rounds"));
    let p: f64 = flag(&args, "--p").map_or(0.25, |v| v.parse().expect("--p"));
    let alpha: f64 = flag(&args, "--alpha").map_or(3.0, |v| v.parse().expect("--alpha"));

    let protocol = match flag(&args, "--protocol").as_deref().unwrap_or("fkn") {
        "fkn" => ProtocolKind::Fkn { p },
        "decay" => ProtocolKind::Decay,
        "decay-classic" => ProtocolKind::DecayClassic,
        "aloha" => ProtocolKind::Aloha { n },
        "js" => ProtocolKind::JurdzinskiStachowiak { n_bound: 2 * n },
        "sweep" => ProtocolKind::CyclicSweep { n_bound: 2 * n },
        "fixed" => ProtocolKind::FixedProbability { p },
        other => {
            eprintln!("unknown protocol: {other}");
            std::process::exit(2);
        }
    };

    let channel_name = flag(&args, "--channel").unwrap_or_else(|| "sinr".to_string());
    let cfg = ExperimentConfig {
        trials,
        seed,
        max_rounds,
        ..ExperimentConfig::quick()
    };

    let results = montecarlo::run_trials(cfg.trials, cfg.threads, cfg.seed, |s| {
        let d = Deployment::uniform_density(n, 0.25, s);
        let params = SinrParams::builder()
            .alpha(alpha)
            .build()
            .expect("valid alpha")
            .with_power_for(&d);
        let kind = match channel_name.as_str() {
            "sinr" => ChannelKind::Sinr(params),
            "radio" => ChannelKind::Radio,
            "radio-cd" => ChannelKind::RadioCd,
            "rayleigh" => ChannelKind::RayleighSinr(params),
            other => {
                eprintln!("unknown channel: {other}");
                std::process::exit(2);
            }
        };
        let mut sim = Simulation::new(d, kind.build(), s, |id| protocol.build(id));
        sim.run_until_resolved(cfg.max_rounds)
    });
    let s = montecarlo::Summary::from_results(&results);
    println!(
        "n={n} protocol={} channel={channel_name} trials={trials}: success={:.3} mean={:.1} median={:.1} p95={:.1} max={}",
        protocol.label(),
        s.success_rate,
        s.mean_rounds,
        s.median_rounds,
        s.p95_rounds,
        s.max_rounds
    );
}
