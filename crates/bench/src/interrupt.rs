//! Best-effort SIGINT/SIGTERM interception for the long-running binaries.
//!
//! The canonical implementation lives in [`fading_server::interrupt`]
//! (the one place in the workspace allowed a scoped `unsafe` for the raw
//! `signal(2)` declaration); this module re-exports it so the experiment
//! and scaling harnesses keep their `crate::interrupt::interrupted()`
//! polling loops unchanged. The server flavor also adds [`claim_flush`]
//! (a single-winner token for shutdown flushing) and escalation: a second
//! signal during a slow flush forces immediate `_exit(130)`.
//!
//! [`claim_flush`]: fading_server::interrupt::claim_flush

pub use fading_server::interrupt::*;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_starts_clear_and_install_is_idempotent() {
        install();
        install();
        assert!(!interrupted());
        assert_eq!(INTERRUPT_EXIT_CODE, 130);
    }
}
