//! Best-effort SIGINT/SIGTERM interception for the long-running binaries.
//!
//! The experiment and scaling harnesses can run for minutes at the `--full`
//! scale; a plain Ctrl-C would discard every table computed so far. This
//! module installs a minimal signal handler that only flips an atomic flag —
//! the binaries poll [`interrupted`] between experiments (never mid-trial,
//! so determinism is untouched), flush whatever partial output they hold,
//! and exit with the conventional `130` status.
//!
//! No external crates: the handler goes through the raw C `signal(2)` entry
//! point, declared here directly. The handler body is a single atomic store,
//! which is async-signal-safe. On non-unix targets installation is a no-op
//! and [`interrupted`] never fires.

use std::sync::atomic::{AtomicBool, Ordering};

static INTERRUPTED: AtomicBool = AtomicBool::new(false);

/// `true` once a SIGINT or SIGTERM has been received (always `false` on
/// non-unix targets or before [`install`]).
#[must_use]
pub fn interrupted() -> bool {
    INTERRUPTED.load(Ordering::SeqCst)
}

/// Exit status conventionally reported by processes stopped by SIGINT.
pub const INTERRUPT_EXIT_CODE: i32 = 130;

#[cfg(unix)]
mod imp {
    use super::{Ordering, INTERRUPTED};

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    // The only libc surface we need: `sighandler_t signal(int, sighandler_t)`.
    // A function pointer is passed as a machine word on every supported unix.
    #[allow(unsafe_code)]
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        INTERRUPTED.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        #[allow(unsafe_code)]
        // SAFETY: `on_signal` only performs an atomic store, which is
        // async-signal-safe; the handler pointer outlives the process.
        unsafe {
            let handler = on_signal as *const () as usize;
            signal(SIGINT, handler);
            signal(SIGTERM, handler);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() {}
}

/// Installs the SIGINT/SIGTERM handler (idempotent; no-op off unix).
pub fn install() {
    imp::install();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_starts_clear_and_install_is_idempotent() {
        install();
        install();
        assert!(!interrupted());
    }
}
