//! The perf-regression gate behind the `bench-gate` binary: parse a
//! committed `BENCH_scaling.json` baseline, re-run the scaling probe on
//! the overlapping sizes, and compare per-(tier, n) `ms_per_round`
//! ratios against a relative threshold.
//!
//! The comparison is one-sided — only slowdowns gate; speedups are
//! reported but never fail. Machine-to-machine absolute drift is expected
//! (the committed baseline came from one host), which is why the default
//! threshold is generous and CI runs the gate in informational
//! `--check` mode.

use std::fmt::Write as _;

use fading_cr::sim::telemetry::jsonl::{parse_json, JsonValue};

use crate::probe::{KernelSample, SizeSample};

/// One (tier, n) cell of a parsed baseline snapshot.
#[derive(Clone, Debug, PartialEq)]
pub struct BaselineEntry {
    /// Number of deployed nodes.
    pub n: usize,
    /// Tier name as committed (`"exact"`, `"gain-cache"`, `"farfield"`,
    /// `"hierarchical"`).
    pub tier: String,
    /// Committed mean wall time per resolve round, in milliseconds.
    pub ms_per_round: f64,
}

/// One kernel-class cell of a parsed baseline snapshot (the per-α
/// `gain_batch` micro-probe under the top-level `"kernels"` key).
#[derive(Clone, Debug, PartialEq)]
pub struct KernelBaselineEntry {
    /// Class label as committed (`"alpha2"` … `"generic"`).
    pub class: String,
    /// Committed milliseconds per million fused kernel points.
    pub ms_per_mpoint: f64,
}

/// Parses the optional top-level `"kernels"` array of a baseline snapshot.
/// Snapshots written before the kernel micro-probe existed simply lack
/// the key and yield an empty vector.
///
/// # Errors
///
/// Returns a description of the first structural problem (not JSON, or a
/// kernel cell missing `class` / a positive `ms_per_mpoint`).
pub fn parse_kernel_baseline(text: &str) -> Result<Vec<KernelBaselineEntry>, String> {
    let doc = parse_json(text).map_err(|e| format!("baseline is not JSON: {e}"))?;
    let Some(kernels) = doc.get("kernels").and_then(JsonValue::as_array) else {
        return Ok(Vec::new());
    };
    let mut out = Vec::new();
    for (i, k) in kernels.iter().enumerate() {
        let class = k
            .get("class")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("kernels[{i}] has no \"class\" label"))?;
        let ms = k
            .get("ms_per_mpoint")
            .and_then(JsonValue::as_f64)
            .filter(|v| v.is_finite() && *v > 0.0)
            .ok_or_else(|| format!("kernels[{i}] has no positive \"ms_per_mpoint\""))?;
        out.push(KernelBaselineEntry {
            class: class.to_string(),
            ms_per_mpoint: ms,
        });
    }
    Ok(out)
}

/// Compares fresh kernel micro-probe samples against kernel baseline
/// cells, reusing the tier [`Verdict`] shape (`n` = 0 marks a kernel
/// cell; the renderer prints the class in the tier column). The same
/// skip rules as [`judge`] apply: only matched classes are judged.
#[must_use]
pub fn judge_kernels(
    baseline: &[KernelBaselineEntry],
    measured: &[KernelSample],
    threshold: f64,
) -> Vec<Verdict> {
    let mut verdicts = Vec::new();
    for b in baseline {
        let Some(k) = measured.iter().find(|k| k.class == b.class) else {
            continue;
        };
        let ratio = k.ms_per_mpoint / b.ms_per_mpoint;
        verdicts.push(Verdict {
            n: 0,
            tier: format!("kernel:{}", b.class),
            baseline_ms: b.ms_per_mpoint,
            measured_ms: k.ms_per_mpoint,
            ratio,
            regressed: ratio > threshold,
        });
    }
    verdicts
}

/// Parses the `BENCH_scaling.json` schema into baseline cells.
///
/// # Errors
///
/// Returns a description of the first structural problem (not JSON, no
/// `sizes` array, a size without `n`/`tiers`, a tier without its fields).
pub fn parse_baseline(text: &str) -> Result<Vec<BaselineEntry>, String> {
    let doc = parse_json(text).map_err(|e| format!("baseline is not JSON: {e}"))?;
    let sizes = doc
        .get("sizes")
        .and_then(JsonValue::as_array)
        .ok_or_else(|| "baseline has no \"sizes\" array".to_string())?;
    let mut out = Vec::new();
    for (i, size) in sizes.iter().enumerate() {
        let n = size
            .get("n")
            .and_then(JsonValue::as_f64)
            .filter(|v| v.fract() == 0.0 && *v >= 1.0)
            .ok_or_else(|| format!("sizes[{i}] has no integer \"n\""))? as usize;
        let tiers = size
            .get("tiers")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| format!("sizes[{i}] has no \"tiers\" array"))?;
        for (j, tier) in tiers.iter().enumerate() {
            let name = tier
                .get("tier")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| format!("sizes[{i}].tiers[{j}] has no \"tier\" name"))?;
            let ms = tier
                .get("ms_per_round")
                .and_then(JsonValue::as_f64)
                .filter(|v| v.is_finite() && *v > 0.0)
                .ok_or_else(|| {
                    format!("sizes[{i}].tiers[{j}] has no positive \"ms_per_round\"")
                })?;
            out.push(BaselineEntry {
                n,
                tier: name.to_string(),
                ms_per_round: ms,
            });
        }
    }
    if out.is_empty() {
        return Err("baseline contains no tier samples".to_string());
    }
    Ok(out)
}

/// One gate comparison: a baseline cell matched against a fresh probe.
#[derive(Clone, Debug)]
pub struct Verdict {
    /// Number of deployed nodes.
    pub n: usize,
    /// Tier name.
    pub tier: String,
    /// Committed ms/round.
    pub baseline_ms: f64,
    /// Freshly measured ms/round.
    pub measured_ms: f64,
    /// `measured / baseline`.
    pub ratio: f64,
    /// Whether `ratio > threshold` — the cell regressed.
    pub regressed: bool,
}

/// Compares fresh probe samples against baseline cells at `threshold`
/// (e.g. `1.5` = fail beyond a 1.5× slowdown). Baseline cells for sizes
/// the probe did not run are skipped — the gate only judges what it
/// measured; probe tiers absent from the baseline are likewise skipped.
#[must_use]
pub fn judge(baseline: &[BaselineEntry], measured: &[SizeSample], threshold: f64) -> Vec<Verdict> {
    let mut verdicts = Vec::new();
    for b in baseline {
        let Some(size) = measured.iter().find(|s| s.n == b.n) else {
            continue;
        };
        let Some(tier) = size.tiers.iter().find(|t| t.tier == b.tier) else {
            continue;
        };
        let ratio = tier.ms_per_round / b.ms_per_round;
        verdicts.push(Verdict {
            n: b.n,
            tier: b.tier.clone(),
            baseline_ms: b.ms_per_round,
            measured_ms: tier.ms_per_round,
            ratio,
            regressed: ratio > threshold,
        });
    }
    verdicts
}

/// Renders the per-(n, tier) verdict table shown by `bench-gate`.
#[must_use]
pub fn render_verdicts(verdicts: &[Verdict], threshold: f64) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>7} {:>11} {:>14} {:>14} {:>8}  verdict (threshold {threshold:.2}x)",
        "n", "tier", "baseline ms", "measured ms", "ratio"
    );
    for v in verdicts {
        let _ = writeln!(
            out,
            "{:>7} {:>11} {:>14.4} {:>14.4} {:>7.2}x  {}",
            v.n,
            v.tier,
            v.baseline_ms,
            v.measured_ms,
            v.ratio,
            if v.regressed { "REGRESSED" } else { "ok" }
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::TierSample;

    fn baseline_json() -> &'static str {
        r#"{
  "bench": "resolve_scaling",
  "workload": {"tx_fraction": 0.25, "density": 0.25, "seed": 7, "channel": "sinr-single-hop"},
  "sizes": [
    {
      "n": 1024,
      "tiers": [{"tier": "exact", "iters": 50, "ms_per_round": 2.0},
                {"tier": "farfield", "iters": 80, "ms_per_round": 0.5}],
      "speedup_farfield_vs_exact": 4.00,
      "farfield_fallback_fraction": 0.01
    }
  ]
}"#
    }

    fn measured(exact_ms: f64, far_ms: f64) -> Vec<SizeSample> {
        vec![SizeSample {
            n: 1024,
            tiers: vec![
                TierSample {
                    tier: "exact",
                    iters: 3,
                    ms_per_round: exact_ms,
                },
                TierSample {
                    tier: "farfield",
                    iters: 3,
                    ms_per_round: far_ms,
                },
            ],
            speedup_farfield_vs_exact: exact_ms / far_ms,
            speedup_hierarchical_vs_exact: 0.0,
            farfield_fallback_fraction: 0.0,
            hierarchical_fallback_fraction: 0.0,
        }]
    }

    #[test]
    fn baseline_parses_committed_schema() {
        let entries = parse_baseline(baseline_json()).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].n, 1024);
        assert_eq!(entries[0].tier, "exact");
        assert!((entries[0].ms_per_round - 2.0).abs() < 1e-12);
        assert_eq!(entries[1].tier, "farfield");
    }

    #[test]
    fn committed_repo_baseline_parses() {
        let text = include_str!("../../../BENCH_scaling.json");
        let entries = parse_baseline(text).unwrap();
        assert!(
            entries.iter().any(|e| e.n == 65536 && e.tier == "farfield"),
            "committed baseline should cover the flat engine's range"
        );
        assert!(
            entries
                .iter()
                .any(|e| e.n == 1_048_576 && e.tier == "hierarchical"),
            "committed baseline should cover the hierarchical tier at n = 1M"
        );
    }

    #[test]
    fn malformed_baselines_are_rejected() {
        assert!(parse_baseline("not json").is_err());
        assert!(parse_baseline("{\"bench\": \"x\"}").is_err());
        assert!(parse_baseline("{\"sizes\": []}").is_err());
        assert!(parse_baseline("{\"sizes\": [{\"n\": 4}]}").is_err());
        assert!(
            parse_baseline(
                "{\"sizes\": [{\"n\": 4, \"tiers\": [{\"tier\": \"exact\", \"ms_per_round\": 0}]}]}"
            )
            .is_err(),
            "zero baseline time would divide by zero"
        );
    }

    #[test]
    fn threshold_separates_ok_from_regressed() {
        let baseline = parse_baseline(baseline_json()).unwrap();
        // Exact 1.4x slower, farfield 2x slower: only farfield gates at 1.5.
        let verdicts = judge(&baseline, &measured(2.8, 1.0), 1.5);
        assert_eq!(verdicts.len(), 2);
        assert!(!verdicts[0].regressed, "1.4x is under a 1.5x threshold");
        assert!(verdicts[1].regressed, "2x must gate at 1.5x");
        assert!((verdicts[1].ratio - 2.0).abs() < 1e-12);
        // Speedups never gate.
        let verdicts = judge(&baseline, &measured(0.1, 0.01), 1.5);
        assert!(verdicts.iter().all(|v| !v.regressed));
    }

    #[test]
    fn unmatched_sizes_and_tiers_are_skipped() {
        let baseline = parse_baseline(baseline_json()).unwrap();
        assert!(judge(&baseline, &[], 1.5).is_empty());
        let mut other_size = measured(1.0, 1.0);
        other_size[0].n = 2048;
        assert!(judge(&baseline, &other_size, 1.5).is_empty());
    }

    #[test]
    fn kernel_baseline_parses_and_judges() {
        let json = r#"{
  "bench": "resolve_scaling",
  "kernels": [{"class": "alpha3", "alpha": 3, "ms_per_mpoint": 1.0},
              {"class": "generic", "alpha": 2.5, "ms_per_mpoint": 4.0}],
  "sizes": [{"n": 4, "tiers": [{"tier": "exact", "ms_per_round": 1.0}]}]
}"#;
        let kernels = parse_kernel_baseline(json).unwrap();
        assert_eq!(kernels.len(), 2);
        assert_eq!(kernels[0].class, "alpha3");

        let measured = vec![
            KernelSample {
                class: "alpha3",
                alpha: 3.0,
                ms_per_mpoint: 2.5,
            },
            KernelSample {
                class: "generic",
                alpha: 2.5,
                ms_per_mpoint: 4.0,
            },
            KernelSample {
                class: "alpha6",
                alpha: 6.0,
                ms_per_mpoint: 1.0,
            },
        ];
        let verdicts = judge_kernels(&kernels, &measured, 1.5);
        assert_eq!(verdicts.len(), 2, "unmatched classes are skipped");
        assert!(verdicts[0].regressed, "2.5x must gate at 1.5x");
        assert!(!verdicts[1].regressed);
        assert_eq!(verdicts[0].tier, "kernel:alpha3");
        let table = render_verdicts(&verdicts, 1.5);
        assert!(table.contains("kernel:alpha3"));
    }

    #[test]
    fn baselines_without_kernels_yield_empty() {
        assert_eq!(parse_kernel_baseline(baseline_json()).unwrap(), vec![]);
        assert!(parse_kernel_baseline("not json").is_err());
        assert!(parse_kernel_baseline(
            "{\"kernels\": [{\"class\": \"alpha2\", \"ms_per_mpoint\": 0}]}"
        )
        .is_err());
    }

    #[test]
    fn verdict_table_renders_both_outcomes() {
        let baseline = parse_baseline(baseline_json()).unwrap();
        let table = render_verdicts(&judge(&baseline, &measured(2.8, 1.0), 1.5), 1.5);
        assert!(table.contains("REGRESSED"));
        assert!(table.contains(" ok"));
        assert!(table.contains("1024"));
    }
}
