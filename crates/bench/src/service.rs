//! The service-throughput harness behind the `loadgen` binary and
//! `bench-gate --service`.
//!
//! A [`ServiceMix`] describes a replayable workload — many small-n jobs
//! (the latency-sensitive bulk) plus a few far-field-tier huge-n jobs
//! (the head-of-line-blocking stress) — and [`run_loadgen`] replays it
//! against an in-process [`Server`], recording each job's
//! submit→complete latency. The result is rendered into the committed
//! `BENCH_service.json` schema; [`parse_service_baseline`] and
//! [`judge_service`] implement the regression comparison `bench-gate
//! --service` runs against it: a throughput drop or a p95 latency blow-up
//! beyond the threshold fails the gate (improvements never do).

use std::fmt::Write as _;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use fading_cr::jobspec::JobSpec;
use fading_cr::sim::montecarlo::percentile_f64;
use fading_cr::sim::obs::timeseries::frame_to_json;
use fading_cr::sim::telemetry::jsonl::{parse_json, JsonValue};
use fading_server::{ExitPolicy, MonitorConfig, Server, ServerConfig, Subscription};

/// How long [`run_loadgen`] waits for the fleet before declaring a hang.
const LOADGEN_DEADLINE: Duration = Duration::from_secs(900);

/// A replayable workload mix.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceMix {
    /// Count of small-n jobs.
    pub small_jobs: usize,
    /// Node counts the small jobs cycle through.
    pub small_ns: Vec<usize>,
    /// Trials per small job.
    pub small_trials: usize,
    /// Round cap per small trial (small jobs run to resolution).
    pub small_max_rounds: u64,
    /// Count of huge-n jobs (far-field engine tier).
    pub huge_jobs: usize,
    /// Node count of the huge jobs.
    pub huge_n: usize,
    /// Trials per huge job.
    pub huge_trials: usize,
    /// Round cap per huge trial (huge jobs are capped, not resolved —
    /// the gate times engine throughput, not protocol luck).
    pub huge_max_rounds: u64,
    /// Job workers in the server.
    pub workers: usize,
}

impl ServiceMix {
    /// The committed-baseline mix: a few hundred small jobs plus two
    /// far-field-tier stragglers.
    #[must_use]
    pub fn full() -> Self {
        ServiceMix {
            small_jobs: 240,
            small_ns: vec![32, 64, 96, 128, 160, 192],
            small_trials: 8,
            small_max_rounds: 20_000,
            huge_jobs: 2,
            huge_n: 16384,
            huge_trials: 2,
            huge_max_rounds: 150,
            workers: 2,
        }
    }

    /// A seconds-scale mix for smoke tests and the gate's own exit-code
    /// tests.
    #[must_use]
    pub fn quick() -> Self {
        ServiceMix {
            small_jobs: 24,
            small_ns: vec![32, 64, 96],
            small_trials: 1,
            small_max_rounds: 20_000,
            huge_jobs: 1,
            huge_n: 4096,
            huge_trials: 1,
            huge_max_rounds: 10,
            workers: 2,
        }
    }

    /// Expands the mix into concrete job specs. Ids are zero-padded so
    /// queue claiming order matches submission order; huge jobs are
    /// interleaved at the front third to exercise head-of-line behavior.
    #[must_use]
    pub fn specs(&self) -> Vec<JobSpec> {
        let mut specs = Vec::with_capacity(self.small_jobs + self.huge_jobs);
        for i in 0..self.small_jobs {
            let mut spec = JobSpec::example(&format!("lg-{i:05}-small"));
            spec.n = self.small_ns[i % self.small_ns.len().max(1)];
            spec.trials = self.small_trials;
            spec.deploy_seed = 7 + i as u64;
            spec.seed_base = 1 + i as u64;
            spec.max_rounds = self.small_max_rounds;
            specs.push(spec);
        }
        for i in 0..self.huge_jobs {
            // Sorts between the small jobs (zero-padded prefix), so a huge
            // job is claimed while small jobs still queue behind it.
            let slot = (i + 1) * self.small_jobs / (self.huge_jobs + 1).max(1);
            let mut spec = JobSpec::example(&format!("lg-{slot:05}-z-huge{i}"));
            spec.n = self.huge_n;
            spec.trials = self.huge_trials;
            spec.deploy_seed = 1000 + i as u64;
            spec.seed_base = 5000 + i as u64;
            spec.max_rounds = self.huge_max_rounds;
            specs.push(spec);
        }
        specs
    }
}

/// Observability attachments for a loadgen replay: the monitor recording
/// time-series frames, and/or a live watch subscriber draining the event
/// stream while the fleet runs (what `bench-gate --stream-overhead` pays
/// for on its "watched" side).
#[derive(Debug, Clone, Default)]
pub struct LoadgenObs {
    /// Run the server monitor at this interval and capture its frames.
    pub monitor_ms: Option<u64>,
    /// Attach a watch-everything subscriber drained by a live thread.
    pub subscriber: bool,
}

impl LoadgenObs {
    /// Monitor plus a draining subscriber — the fully-watched replay.
    #[must_use]
    pub fn watched(monitor_ms: u64) -> Self {
        LoadgenObs {
            monitor_ms: Some(monitor_ms),
            subscriber: true,
        }
    }
}

/// What one loadgen replay measured.
#[derive(Debug, Clone)]
pub struct ServiceResult {
    /// Jobs that completed (done or failed).
    pub jobs: usize,
    /// Jobs that retired into `failed/`.
    pub failed: usize,
    /// Submit-of-first to completion-of-last wall time.
    pub elapsed_secs: f64,
    /// `jobs / elapsed_secs`.
    pub jobs_per_sec: f64,
    /// Median submit→complete latency, milliseconds.
    pub p50_ms: f64,
    /// 95th-percentile latency.
    pub p95_ms: f64,
    /// 99th-percentile latency.
    pub p99_ms: f64,
    /// Worst-case latency.
    pub max_ms: f64,
    /// Time-series frames the monitor recorded (0 when it didn't run).
    pub ts_frames: usize,
    /// Trials counted across those frames' deltas.
    pub ts_trials: u64,
    /// Lines the attached subscriber drained (0 when none attached).
    pub watch_lines: usize,
    /// The recorded frames as JSONL lines (`frame_to_json`), oldest
    /// first — what `loadgen --dump-frames` writes out.
    pub frames_jsonl: Vec<String>,
}

/// Replays `mix` against a fresh in-process server rooted at `root`,
/// recording per-job submit→complete latency.
///
/// # Errors
///
/// Server/queue IO failures, or the fleet not finishing inside the
/// harness deadline.
pub fn run_loadgen(root: &Path, mix: &ServiceMix) -> Result<ServiceResult, String> {
    run_loadgen_observed(root, mix, &LoadgenObs::default())
}

/// [`run_loadgen`] with observability attached: optionally starts the
/// server monitor (capturing its time-series ring into the result) and
/// optionally drains a live watch subscriber for the whole replay — the
/// measured throughput then includes the full streaming cost.
///
/// # Errors
///
/// Same failure modes as [`run_loadgen`].
pub fn run_loadgen_observed(
    root: &Path,
    mix: &ServiceMix,
    obs: &LoadgenObs,
) -> Result<ServiceResult, String> {
    let cfg = ServerConfig {
        workers: mix.workers,
        ..ServerConfig::default()
    };
    let server = Server::open(root, cfg).map_err(|e| format!("open server: {e}"))?;
    if let Some(ms) = obs.monitor_ms {
        server.start_monitor(MonitorConfig {
            interval: Duration::from_millis(ms.max(10)),
            ..MonitorConfig::default()
        });
    }
    // The draining subscriber lives on its own thread so the stream is
    // consumed at realistic pace (bounded queues never back up) while the
    // main thread keeps polling job completion.
    let drainer = obs.subscriber.then(|| {
        let sub = server.hub().subscribe(Subscription::watch_all());
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            let mut lines = 0usize;
            loop {
                match sub.recv_timeout(Duration::from_millis(20)) {
                    Some(_) => lines += 1,
                    None if flag.load(Ordering::Relaxed) => break lines,
                    None => {}
                }
            }
        });
        (stop, handle)
    });
    let specs = mix.specs();

    let started = Instant::now();
    let mut pending: Vec<(String, Instant)> = Vec::with_capacity(specs.len());
    for spec in &specs {
        server
            .queue()
            .submit(spec)
            .map_err(|e| format!("submit {}: {e}", spec.id))?;
        server.metrics().record_submitted();
        pending.push((spec.id.clone(), Instant::now()));
    }

    let worker = {
        let server = server.clone();
        std::thread::spawn(move || server.run(ExitPolicy::drain()))
    };

    let mut latencies_ms: Vec<f64> = Vec::with_capacity(pending.len());
    let mut failed = 0usize;
    while !pending.is_empty() {
        if started.elapsed() > LOADGEN_DEADLINE {
            return Err(format!(
                "loadgen deadline exceeded with {} jobs outstanding",
                pending.len()
            ));
        }
        pending.retain(|(id, submitted)| {
            let done = server.queue().is_done(id);
            let failed_now = !done && server.queue().is_failed(id);
            if done || failed_now {
                latencies_ms.push(submitted.elapsed().as_secs_f64() * 1e3);
                if failed_now {
                    failed += 1;
                }
                false
            } else {
                true
            }
        });
        if !pending.is_empty() {
            std::thread::sleep(Duration::from_millis(2));
        }
    }
    let elapsed_secs = started.elapsed().as_secs_f64();
    worker.join().map_err(|_| "server worker panicked".to_string())?;

    let watch_lines = drainer.map_or(0, |(stop, handle)| {
        stop.store(true, Ordering::Relaxed);
        handle.join().unwrap_or(0)
    });
    let (ts_frames, ts_trials, frames_jsonl) = if obs.monitor_ms.is_some() {
        // The monitor keeps ticking after the drain; give it until one
        // more interval has passed so even a sub-interval replay records
        // at least one frame, then freeze the ring.
        let wait = Instant::now() + Duration::from_millis(obs.monitor_ms.unwrap_or(0).max(10) * 2);
        while server.timeseries_frames().is_empty() && Instant::now() < wait {
            std::thread::sleep(Duration::from_millis(2));
        }
        server.stop_monitor();
        let frames = server.timeseries_frames();
        (
            frames.len(),
            frames.iter().map(|f| f.d_trials).sum(),
            frames.iter().map(frame_to_json).collect(),
        )
    } else {
        (0, 0, Vec::new())
    };

    latencies_ms.sort_by(f64::total_cmp);
    let jobs = latencies_ms.len();
    Ok(ServiceResult {
        jobs,
        failed,
        elapsed_secs,
        jobs_per_sec: jobs as f64 / elapsed_secs.max(1e-9),
        p50_ms: percentile_f64(&latencies_ms, 0.50),
        p95_ms: percentile_f64(&latencies_ms, 0.95),
        p99_ms: percentile_f64(&latencies_ms, 0.99),
        max_ms: latencies_ms.last().copied().unwrap_or(0.0),
        ts_frames,
        ts_trials,
        watch_lines,
        frames_jsonl,
    })
}

fn fmt_list(ns: &[usize]) -> String {
    let items: Vec<String> = ns.iter().map(ToString::to_string).collect();
    format!("[{}]", items.join(", "))
}

/// Renders the `BENCH_service.json` schema: the replayed mix (so the gate
/// can re-run exactly it) plus the measured throughput and latency tail.
/// When the replay ran with the monitor attached, a `timeseries` section
/// records what the obs ring captured; baselines without it (or parsers
/// predating it) are unaffected — the gate never reads it.
#[must_use]
pub fn render_service_json(mix: &ServiceMix, result: &ServiceResult) -> String {
    let timeseries = if result.ts_frames > 0 {
        format!(
            ",\n    \"timeseries\": {{\"frames\": {}, \"d_trials\": {}}}",
            result.ts_frames, result.ts_trials
        )
    } else {
        String::new()
    };
    format!(
        "{{\n  \"bench\": \"service_loadgen\",\n  \"workload\": {{\n    \"small_jobs\": {},\n    \"small_ns\": {},\n    \"small_trials\": {},\n    \"small_max_rounds\": {},\n    \"huge_jobs\": {},\n    \"huge_n\": {},\n    \"huge_trials\": {},\n    \"huge_max_rounds\": {},\n    \"workers\": {}\n  }},\n  \"results\": {{\n    \"jobs\": {},\n    \"failed\": {},\n    \"elapsed_secs\": {:.3},\n    \"jobs_per_sec\": {:.3},\n    \"latency_ms\": {{\"p50\": {:.3}, \"p95\": {:.3}, \"p99\": {:.3}, \"max\": {:.3}}}{timeseries}\n  }}\n}}\n",
        mix.small_jobs,
        fmt_list(&mix.small_ns),
        mix.small_trials,
        mix.small_max_rounds,
        mix.huge_jobs,
        mix.huge_n,
        mix.huge_trials,
        mix.huge_max_rounds,
        mix.workers,
        result.jobs,
        result.failed,
        result.elapsed_secs,
        result.jobs_per_sec,
        result.p50_ms,
        result.p95_ms,
        result.p99_ms,
        result.max_ms,
    )
}

/// A parsed `BENCH_service.json`: the mix to re-run and the committed
/// numbers to compare against.
#[derive(Debug, Clone)]
pub struct ServiceBaseline {
    /// The workload the committed numbers came from.
    pub mix: ServiceMix,
    /// Committed throughput.
    pub jobs_per_sec: f64,
    /// Committed 95th-percentile latency, milliseconds.
    pub p95_ms: f64,
    /// Committed 99th-percentile latency, milliseconds.
    pub p99_ms: f64,
}

fn get_f64(v: &JsonValue, key: &str, ctx: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(JsonValue::as_f64)
        .filter(|x| x.is_finite())
        .ok_or_else(|| format!("{ctx} has no finite \"{key}\""))
}

fn get_usize(v: &JsonValue, key: &str, ctx: &str) -> Result<usize, String> {
    let x = get_f64(v, key, ctx)?;
    if x.fract() != 0.0 || x < 0.0 {
        return Err(format!("{ctx}.{key} is not a non-negative integer"));
    }
    Ok(x as usize)
}

/// Parses the `BENCH_service.json` schema.
///
/// # Errors
///
/// A description of the first structural problem.
pub fn parse_service_baseline(text: &str) -> Result<ServiceBaseline, String> {
    let doc = parse_json(text).map_err(|e| format!("baseline is not JSON: {e}"))?;
    let workload = doc
        .get("workload")
        .ok_or_else(|| "baseline has no \"workload\"".to_string())?;
    let small_ns: Vec<usize> = workload
        .get("small_ns")
        .and_then(JsonValue::as_array)
        .ok_or_else(|| "workload has no \"small_ns\" array".to_string())?
        .iter()
        .map(|v| {
            v.as_f64()
                .filter(|x| x.fract() == 0.0 && *x >= 1.0)
                .map(|x| x as usize)
                .ok_or_else(|| "small_ns entries must be positive integers".to_string())
        })
        .collect::<Result<_, _>>()?;
    if small_ns.is_empty() {
        return Err("workload.small_ns is empty".to_string());
    }
    let mix = ServiceMix {
        small_jobs: get_usize(workload, "small_jobs", "workload")?,
        small_ns,
        small_trials: get_usize(workload, "small_trials", "workload")?,
        small_max_rounds: get_usize(workload, "small_max_rounds", "workload")? as u64,
        huge_jobs: get_usize(workload, "huge_jobs", "workload")?,
        huge_n: get_usize(workload, "huge_n", "workload")?,
        huge_trials: get_usize(workload, "huge_trials", "workload")?,
        huge_max_rounds: get_usize(workload, "huge_max_rounds", "workload")? as u64,
        workers: get_usize(workload, "workers", "workload")?.max(1),
    };
    let results = doc
        .get("results")
        .ok_or_else(|| "baseline has no \"results\"".to_string())?;
    let latency = results
        .get("latency_ms")
        .ok_or_else(|| "results has no \"latency_ms\"".to_string())?;
    let jobs_per_sec = get_f64(results, "jobs_per_sec", "results")?;
    if jobs_per_sec <= 0.0 {
        return Err("results.jobs_per_sec must be positive".to_string());
    }
    let p95_ms = get_f64(latency, "p95", "latency_ms")?;
    if p95_ms <= 0.0 {
        return Err("latency_ms.p95 must be positive".to_string());
    }
    Ok(ServiceBaseline {
        mix,
        jobs_per_sec,
        p95_ms,
        p99_ms: get_f64(latency, "p99", "latency_ms")?,
    })
}

/// The gate's comparison of a fresh replay against the baseline.
#[derive(Debug, Clone)]
pub struct ServiceVerdict {
    /// `baseline.jobs_per_sec / measured.jobs_per_sec` — above 1 means
    /// throughput dropped.
    pub throughput_ratio: f64,
    /// `measured.p95_ms / baseline.p95_ms` — above 1 means the latency
    /// tail grew.
    pub p95_ratio: f64,
    /// Whether either ratio exceeds the threshold.
    pub regressed: bool,
}

/// Judges a fresh replay against the committed numbers: either a
/// throughput drop or a p95 blow-up beyond `threshold` regresses.
#[must_use]
pub fn judge_service(
    baseline: &ServiceBaseline,
    measured: &ServiceResult,
    threshold: f64,
) -> ServiceVerdict {
    let throughput_ratio = baseline.jobs_per_sec / measured.jobs_per_sec.max(1e-9);
    let p95_ratio = measured.p95_ms / baseline.p95_ms.max(1e-9);
    ServiceVerdict {
        throughput_ratio,
        p95_ratio,
        regressed: throughput_ratio > threshold || p95_ratio > threshold,
    }
}

/// Renders the `bench-gate --service` verdict block.
#[must_use]
pub fn render_service_verdict(
    baseline: &ServiceBaseline,
    measured: &ServiceResult,
    verdict: &ServiceVerdict,
    threshold: f64,
) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>14} {:>12} {:>12} {:>8}  verdict (threshold {threshold:.2}x)",
        "metric", "baseline", "measured", "ratio"
    );
    let _ = writeln!(
        out,
        "{:>14} {:>12.3} {:>12.3} {:>7.2}x  {}",
        "jobs/sec",
        baseline.jobs_per_sec,
        measured.jobs_per_sec,
        verdict.throughput_ratio,
        if verdict.throughput_ratio > threshold { "REGRESSED" } else { "ok" }
    );
    let _ = writeln!(
        out,
        "{:>14} {:>12.3} {:>12.3} {:>7.2}x  {}",
        "p95 ms",
        baseline.p95_ms,
        measured.p95_ms,
        verdict.p95_ratio,
        if verdict.p95_ratio > threshold { "REGRESSED" } else { "ok" }
    );
    let _ = writeln!(
        out,
        "{:>14} {:>12.3} {:>12.3}",
        "p99 ms", baseline.p99_ms, measured.p99_ms
    );
    out
}

/// The paired comparison behind `bench-gate --stream-overhead`: the same
/// mix replayed twice on the same host — once bare, once with the monitor
/// plus a live watch subscriber attached — so the ratio isolates the
/// streaming cost from host speed.
#[derive(Debug, Clone)]
pub struct StreamOverheadVerdict {
    /// `plain.jobs_per_sec / watched.jobs_per_sec` — above 1 means the
    /// watched replay was slower.
    pub throughput_ratio: f64,
    /// `watched.p95_ms / plain.p95_ms`.
    pub p95_ratio: f64,
    /// Whether the throughput cost exceeds the threshold (p95 is
    /// informational — short-run latency tails are too noisy to gate on).
    pub regressed: bool,
}

/// Judges the watched replay against the bare one: streaming observers
/// must not cost more than `threshold`-fold throughput.
#[must_use]
pub fn judge_stream_overhead(
    plain: &ServiceResult,
    watched: &ServiceResult,
    threshold: f64,
) -> StreamOverheadVerdict {
    let throughput_ratio = plain.jobs_per_sec / watched.jobs_per_sec.max(1e-9);
    StreamOverheadVerdict {
        throughput_ratio,
        p95_ratio: watched.p95_ms / plain.p95_ms.max(1e-9),
        regressed: throughput_ratio > threshold,
    }
}

/// Renders the `bench-gate --stream-overhead` verdict block.
#[must_use]
pub fn render_stream_overhead(
    plain: &ServiceResult,
    watched: &ServiceResult,
    verdict: &StreamOverheadVerdict,
    threshold: f64,
) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>14} {:>12} {:>12} {:>8}  verdict (threshold {threshold:.2}x)",
        "metric", "bare", "watched", "ratio"
    );
    let _ = writeln!(
        out,
        "{:>14} {:>12.3} {:>12.3} {:>7.2}x  {}",
        "jobs/sec",
        plain.jobs_per_sec,
        watched.jobs_per_sec,
        verdict.throughput_ratio,
        if verdict.regressed { "REGRESSED" } else { "ok" }
    );
    let _ = writeln!(
        out,
        "{:>14} {:>12.3} {:>12.3} {:>7.2}x  (informational)",
        "p95 ms", plain.p95_ms, watched.p95_ms, verdict.p95_ratio
    );
    let stream = format!("{} lines, {} frames", watched.watch_lines, watched.ts_frames);
    let _ = writeln!(out, "{:>14} {:>12} {stream:>12}", "stream", "-");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_result(jobs_per_sec: f64, p95_ms: f64) -> ServiceResult {
        ServiceResult {
            jobs: 25,
            failed: 0,
            elapsed_secs: 25.0 / jobs_per_sec,
            jobs_per_sec,
            p50_ms: p95_ms * 0.3,
            p95_ms,
            p99_ms: p95_ms * 1.5,
            max_ms: p95_ms * 2.0,
            ts_frames: 0,
            ts_trials: 0,
            watch_lines: 0,
            frames_jsonl: Vec::new(),
        }
    }

    #[test]
    fn mix_expands_to_unique_ordered_specs() {
        let mix = ServiceMix::quick();
        let specs = mix.specs();
        assert_eq!(specs.len(), mix.small_jobs + mix.huge_jobs);
        let mut ids: Vec<&str> = specs.iter().map(|s| s.id.as_str()).collect();
        let before = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), before, "job ids must be unique");
        for spec in &specs {
            spec.validate().expect("mix specs must validate");
        }
        assert!(specs.iter().any(|s| s.n == mix.huge_n));
    }

    #[test]
    fn service_json_round_trips_through_parser() {
        let mix = ServiceMix::full();
        let rendered = render_service_json(&mix, &fake_result(12.5, 840.0));
        let parsed = parse_service_baseline(&rendered).unwrap();
        assert_eq!(parsed.mix, mix);
        assert!((parsed.jobs_per_sec - 12.5).abs() < 1e-9);
        assert!((parsed.p95_ms - 840.0).abs() < 1e-9);
        assert!((parsed.p99_ms - 1260.0).abs() < 1e-9);
    }

    #[test]
    fn timeseries_section_renders_and_stays_parseable() {
        let mix = ServiceMix::quick();
        let mut result = fake_result(10.0, 500.0);
        result.ts_frames = 7;
        result.ts_trials = 120;
        let rendered = render_service_json(&mix, &result);
        assert!(rendered.contains("\"timeseries\": {\"frames\": 7, \"d_trials\": 120}"));
        // The gate's parser must keep accepting baselines with (and
        // without — covered by the round-trip test) the obs section.
        let parsed = parse_service_baseline(&rendered).unwrap();
        assert_eq!(parsed.mix, mix);
        let doc = parse_json(&rendered).unwrap();
        let frames = doc
            .get("results")
            .and_then(|r| r.get("timeseries"))
            .and_then(|t| t.get("frames"))
            .and_then(JsonValue::as_f64);
        assert_eq!(frames, Some(7.0));
    }

    #[test]
    fn stream_overhead_gate_separates_ok_from_regressed() {
        let plain = fake_result(10.0, 500.0);
        // 2% slower with watchers: fine at the 5% gate.
        let v = judge_stream_overhead(&plain, &fake_result(9.8, 520.0), 1.05);
        assert!(!v.regressed, "{v:?}");
        // 20% slower: gates.
        let v = judge_stream_overhead(&plain, &fake_result(8.0, 500.0), 1.05);
        assert!(v.regressed && v.throughput_ratio > 1.2, "{v:?}");
        // Watched somehow faster: never gates.
        let v = judge_stream_overhead(&plain, &fake_result(11.0, 400.0), 1.05);
        assert!(!v.regressed, "{v:?}");
        let mut watched = fake_result(8.0, 500.0);
        watched.watch_lines = 42;
        watched.ts_frames = 3;
        let table = render_stream_overhead(
            &plain,
            &watched,
            &judge_stream_overhead(&plain, &watched, 1.05),
            1.05,
        );
        assert!(table.contains("REGRESSED"));
        assert!(table.contains("42 lines, 3 frames"));
    }

    #[test]
    fn committed_repo_baseline_parses() {
        let text = include_str!("../../../BENCH_service.json");
        let baseline = parse_service_baseline(text).unwrap();
        assert!(baseline.mix.small_jobs >= 100, "baseline must be the full mix");
        assert!(baseline.mix.huge_jobs >= 1, "baseline must include huge jobs");
        assert!(baseline.mix.huge_n > 4096, "huge jobs must be far-field tier");
        assert!(baseline.jobs_per_sec > 0.0 && baseline.p95_ms > 0.0);
    }

    #[test]
    fn malformed_service_baselines_are_rejected() {
        assert!(parse_service_baseline("not json").is_err());
        assert!(parse_service_baseline("{}").is_err());
        let no_results =
            "{\"workload\": {\"small_jobs\": 1, \"small_ns\": [32], \"small_trials\": 1, \
             \"small_max_rounds\": 10, \"huge_jobs\": 0, \"huge_n\": 4096, \"huge_trials\": 1, \
             \"huge_max_rounds\": 10, \"workers\": 1}}";
        assert!(parse_service_baseline(no_results).is_err());
        let rendered = render_service_json(
            &ServiceMix::quick(),
            &ServiceResult {
                jobs_per_sec: 0.0,
                ..fake_result(1.0, 1.0)
            },
        );
        assert!(
            parse_service_baseline(&rendered).is_err(),
            "zero throughput would divide by zero in the gate"
        );
    }

    #[test]
    fn gate_separates_ok_from_regressed() {
        let baseline = parse_service_baseline(&render_service_json(
            &ServiceMix::quick(),
            &fake_result(10.0, 500.0),
        ))
        .unwrap();
        // Within threshold both ways.
        let v = judge_service(&baseline, &fake_result(8.0, 600.0), 1.5);
        assert!(!v.regressed, "{v:?}");
        // Throughput collapse gates.
        let v = judge_service(&baseline, &fake_result(4.0, 500.0), 1.5);
        assert!(v.regressed && v.throughput_ratio > 2.0, "{v:?}");
        // Latency-tail blow-up gates even at equal throughput.
        let v = judge_service(&baseline, &fake_result(10.0, 1200.0), 1.5);
        assert!(v.regressed && v.p95_ratio > 2.0, "{v:?}");
        // Speedups never gate.
        let v = judge_service(&baseline, &fake_result(40.0, 100.0), 1.5);
        assert!(!v.regressed, "{v:?}");
        let table = render_service_verdict(&baseline, &fake_result(4.0, 500.0),
            &judge_service(&baseline, &fake_result(4.0, 500.0), 1.5), 1.5);
        assert!(table.contains("REGRESSED") && table.contains("jobs/sec"));
    }

    #[test]
    fn loadgen_replays_a_tiny_mix() {
        let root = std::env::temp_dir()
            .join("fading-loadgen-test")
            .join(format!("tiny-{}", std::process::id()));
        std::fs::remove_dir_all(&root).ok();
        let mix = ServiceMix {
            small_jobs: 4,
            small_ns: vec![32, 48],
            small_trials: 1,
            small_max_rounds: 20_000,
            huge_jobs: 0,
            huge_n: 4096,
            huge_trials: 1,
            huge_max_rounds: 10,
            workers: 2,
        };
        let result = run_loadgen(&root, &mix).unwrap();
        assert_eq!(result.jobs, 4);
        assert_eq!(result.failed, 0);
        assert!(result.jobs_per_sec > 0.0);
        assert!(result.p50_ms <= result.p95_ms && result.p95_ms <= result.p99_ms);
        assert!(result.p99_ms <= result.max_ms);
        assert_eq!(
            (result.ts_frames, result.watch_lines),
            (0, 0),
            "bare replays must not record obs artifacts"
        );
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn observed_loadgen_captures_frames_and_drains_the_stream() {
        let root = std::env::temp_dir()
            .join("fading-loadgen-test")
            .join(format!("observed-{}", std::process::id()));
        std::fs::remove_dir_all(&root).ok();
        let mix = ServiceMix {
            small_jobs: 3,
            small_ns: vec![32, 64],
            small_trials: 2,
            small_max_rounds: 20_000,
            huge_jobs: 0,
            huge_n: 4096,
            huge_trials: 1,
            huge_max_rounds: 10,
            workers: 2,
        };
        let result = run_loadgen_observed(&root, &mix, &LoadgenObs::watched(10)).unwrap();
        assert_eq!(result.jobs, 3);
        assert_eq!(result.failed, 0);
        assert!(result.ts_frames > 0, "monitor recorded no frames");
        // 3 × (job_started + job_done) + 3 × 2 trials × (started + done),
        // plus whatever frames the subscriber caught.
        assert!(
            result.watch_lines >= 6 + 12,
            "subscriber drained only {} lines",
            result.watch_lines
        );
        std::fs::remove_dir_all(&root).ok();
    }
}
