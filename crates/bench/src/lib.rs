//! # fading-bench
//!
//! Benchmark harness for the `fading-cr` workspace:
//!
//! * the `experiments` binary regenerates every experiment table (E1–E12)
//!   recorded in `EXPERIMENTS.md`;
//! * the `sweep` binary runs one-off parameter sweeps;
//! * the Criterion benches (`benches/`) time the substrate kernels (channel
//!   resolution, simulator stepping, analysis machinery) and
//!   run-to-resolution latencies per experiment family.
//!
//! This crate's library part holds the small helpers shared between the
//! binaries and the benches.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod gate;
pub mod interrupt;
pub mod probe;
pub mod service;

use fading_cr::experiments::ExperimentConfig;

/// Parses the common CLI scale flags (`--smoke`, `--quick`, `--full`).
/// Defaults to quick. Unknown flags are ignored by this parser (binaries
/// handle their own extra flags).
#[must_use]
pub fn config_from_args(args: &[String]) -> ExperimentConfig {
    if args.iter().any(|a| a == "--full") {
        ExperimentConfig::full()
    } else if args.iter().any(|a| a == "--smoke") {
        ExperimentConfig::smoke()
    } else {
        ExperimentConfig::quick()
    }
}

/// Extracts the experiment ids requested on the command line (tokens that
/// are not flags and not flag values). Empty means "all".
#[must_use]
pub fn ids_from_args(args: &[String]) -> Vec<String> {
    let mut ids = Vec::new();
    let mut skip_next = false;
    for a in args {
        if skip_next {
            skip_next = false;
            continue;
        }
        if a == "--out" || a == "--telemetry" {
            skip_next = true;
            continue;
        }
        if a.starts_with("--") {
            continue;
        }
        ids.push(a.to_ascii_lowercase());
    }
    ids
}

/// The value following `--out <dir>`, if present.
#[must_use]
pub fn out_dir_from_args(args: &[String]) -> Option<String> {
    args.iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// The value following `--telemetry <dir>`, if present: the directory the
/// telemetry-recording experiments (E8, E9) write their JSONL round-event
/// streams into.
#[must_use]
pub fn telemetry_dir_from_args(args: &[String]) -> Option<String> {
    args.iter()
        .position(|a| a == "--telemetry")
        .and_then(|i| args.get(i + 1))
        .cloned()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| (*s).to_string()).collect()
    }

    #[test]
    fn scale_flags() {
        assert_eq!(
            config_from_args(&args(&["--full"])).trials,
            ExperimentConfig::full().trials
        );
        assert_eq!(
            config_from_args(&args(&["--smoke"])).trials,
            ExperimentConfig::smoke().trials
        );
        assert_eq!(
            config_from_args(&args(&[])).trials,
            ExperimentConfig::quick().trials
        );
    }

    #[test]
    fn id_extraction_skips_flags_and_out_values() {
        assert_eq!(
            ids_from_args(&args(&["E1", "--full", "e10"])),
            vec!["e1", "e10"]
        );
        assert!(ids_from_args(&args(&["--full"])).is_empty());
        assert_eq!(ids_from_args(&args(&["--out", "dir", "e2"])), vec!["e2"]);
        assert_eq!(
            ids_from_args(&args(&["--telemetry", "results/t", "e8"])),
            vec!["e8"]
        );
    }

    #[test]
    fn telemetry_dir_extraction() {
        assert_eq!(
            telemetry_dir_from_args(&args(&["e8", "--telemetry", "/tmp/t"])),
            Some("/tmp/t".to_string())
        );
        assert_eq!(telemetry_dir_from_args(&args(&["--telemetry"])), None);
        assert_eq!(telemetry_dir_from_args(&args(&["e8"])), None);
    }

    #[test]
    fn out_dir_extraction() {
        assert_eq!(
            out_dir_from_args(&args(&["e1", "--out", "/tmp/x"])),
            Some("/tmp/x".to_string())
        );
        assert_eq!(out_dir_from_args(&args(&["--out"])), None);
        assert_eq!(out_dir_from_args(&args(&["e1"])), None);
    }
}
