//! The resolve-tier scaling probe shared by the `scaling` snapshot binary
//! and the `bench-gate` regression gate: hand-timed per-round resolve cost
//! of the exact scan, the gain cache, and the far-field engine over a size
//! sweep, rendered as the `BENCH_scaling.json` schema.
//!
//! Timing is deliberately simple (adaptive iteration counts against a
//! wall-clock budget) so the probe stays runnable at `n = 65536`, where
//! one exact round costs seconds; the Criterion bench `resolve_scaling`
//! tracks the same workload with proper sampling.

use std::fmt::Write as _;
use std::time::Instant;

use fading_cr::channel::ChannelPerturbation;
use fading_cr::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Deployment density (nodes per unit²) of the standard experiment sweep.
pub const DENSITY: f64 = 0.25;
/// Deployment seed: fixed so snapshots are comparable across runs.
pub const SEED: u64 = 7;
/// The size sweep of the committed snapshot.
pub const DEFAULT_SIZES: [usize; 4] = [1024, 4096, 16384, 65536];

/// Times `f` with one warm-up call plus enough iterations to roughly fill
/// `budget_ms` (clamped to [3, 200]); returns `(iters, ms_per_call)`.
pub fn time_ms(mut f: impl FnMut(), budget_ms: f64) -> (u32, f64) {
    let start = Instant::now();
    f();
    let estimate = start.elapsed().as_secs_f64() * 1e3;
    let iters = ((budget_ms / estimate.max(1e-4)) as u32).clamp(3, 200);
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    (
        iters,
        start.elapsed().as_secs_f64() * 1e3 / f64::from(iters),
    )
}

/// One timed resolve tier at one deployment size.
#[derive(Clone, Debug)]
pub struct TierSample {
    /// Tier name: `"exact"`, `"gain-cache"`, or `"farfield"`.
    pub tier: &'static str,
    /// Iterations the adaptive loop settled on.
    pub iters: u32,
    /// Measured mean wall time per resolve round, in milliseconds.
    pub ms_per_round: f64,
}

/// All tier samples at one deployment size.
#[derive(Clone, Debug)]
pub struct SizeSample {
    /// Number of deployed nodes.
    pub n: usize,
    /// Per-tier timings (exact always first, far-field always last).
    pub tiers: Vec<TierSample>,
    /// `exact ms / farfield ms`.
    pub speedup_farfield_vs_exact: f64,
    /// Fraction of far-field listener decisions that fell back to the
    /// exact scan during the probe.
    pub farfield_fallback_fraction: f64,
}

/// Runs the scaling probe over `sizes`, timing each tier against
/// `budget_ms_for(n)` milliseconds, asserting cross-tier exactness at
/// every size. `report` sees each completed [`SizeSample`] as it lands
/// (the binaries print progressively; pass `|_| {}` for silence).
pub fn run_probe(
    sizes: &[usize],
    budget_ms_for: impl Fn(usize) -> f64,
    mut report: impl FnMut(&SizeSample),
) -> Vec<SizeSample> {
    let mut out = Vec::with_capacity(sizes.len());
    for &n in sizes {
        let d = Deployment::uniform_density(n, DENSITY, SEED);
        let positions = d.points().to_vec();
        let tx: Vec<usize> = (0..n).step_by(4).collect();
        let rx: Vec<usize> = (0..n).filter(|i| i % 4 != 0).collect();
        let params = SinrParams::default_single_hop().with_power_for(&d);
        let sinr = SinrChannel::new(params);
        let budget_ms = budget_ms_for(n);

        let mut tiers = Vec::new();
        let mut rng = SmallRng::seed_from_u64(0);

        let exact_rx = sinr.resolve(&positions, &tx, &rx, &mut rng);
        let (iters, ms) = time_ms(
            || {
                sinr.resolve(&positions, &tx, &rx, &mut rng);
            },
            budget_ms,
        );
        tiers.push(TierSample {
            tier: "exact",
            iters,
            ms_per_round: ms,
        });

        if let Some(cache) = sinr.build_gain_cache(&positions) {
            let cached_rx = sinr.resolve_cached(&positions, &tx, &rx, Some(&cache), &mut rng);
            assert_eq!(exact_rx, cached_rx, "gain cache broke exactness at n={n}");
            let (iters, ms) = time_ms(
                || {
                    sinr.resolve_cached(&positions, &tx, &rx, Some(&cache), &mut rng);
                },
                budget_ms,
            );
            tiers.push(TierSample {
                tier: "gain-cache",
                iters,
                ms_per_round: ms,
            });
        }

        let mut engine = sinr.build_farfield_engine(&positions);
        let far_rx = sinr.resolve_farfield(
            &positions,
            &tx,
            &rx,
            engine.as_mut(),
            &ChannelPerturbation::neutral(),
            &mut rng,
        );
        assert_eq!(exact_rx, far_rx, "farfield broke exactness at n={n}");
        let (iters, ms) = time_ms(
            || {
                sinr.resolve_farfield(
                    &positions,
                    &tx,
                    &rx,
                    engine.as_mut(),
                    &ChannelPerturbation::neutral(),
                    &mut rng,
                );
            },
            budget_ms,
        );
        tiers.push(TierSample {
            tier: "farfield",
            iters,
            ms_per_round: ms,
        });

        let exact_ms = tiers[0].ms_per_round;
        let far_ms = tiers.last().expect("farfield sample").ms_per_round;
        let stats = engine
            .as_ref()
            .map(FarFieldEngine::stats)
            .unwrap_or_default();
        let sample = SizeSample {
            n,
            tiers,
            speedup_farfield_vs_exact: exact_ms / far_ms,
            farfield_fallback_fraction: stats.fallback_fraction(),
        };
        report(&sample);
        out.push(sample);
    }
    out
}

/// The committed snapshot's per-size wall budget: the big sizes get more
/// room on purpose — the adaptive clamp still gives ≥ 3 honest iterations
/// and one exact round at `n = 65536` already costs seconds.
#[must_use]
pub fn default_budget_ms(n: usize) -> f64 {
    if n >= 16384 {
        3000.0
    } else {
        1000.0
    }
}

/// Renders probe output in the `BENCH_scaling.json` schema.
#[must_use]
pub fn render_snapshot_json(samples: &[SizeSample]) -> String {
    let mut size_blocks = Vec::with_capacity(samples.len());
    for s in samples {
        let mut tiers_json = String::new();
        for (i, t) in s.tiers.iter().enumerate() {
            if i > 0 {
                tiers_json.push_str(", ");
            }
            write!(
                tiers_json,
                "{{\"tier\": \"{}\", \"iters\": {}, \"ms_per_round\": {:.6}}}",
                t.tier, t.iters, t.ms_per_round
            )
            .expect("write to String cannot fail");
        }
        size_blocks.push(format!(
            "    {{\n      \"n\": {},\n      \"tiers\": [{tiers_json}],\n      \
             \"speedup_farfield_vs_exact\": {:.2},\n      \
             \"farfield_fallback_fraction\": {:.6}\n    }}",
            s.n, s.speedup_farfield_vs_exact, s.farfield_fallback_fraction
        ));
    }
    format!(
        "{{\n  \"bench\": \"resolve_scaling\",\n  \"workload\": {{\n    \
         \"tx_fraction\": 0.25,\n    \"density\": {DENSITY},\n    \"seed\": {SEED},\n    \
         \"channel\": \"sinr-single-hop\"\n  }},\n  \"sizes\": [\n{}\n  ]\n}}\n",
        size_blocks.join(",\n")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_runs_and_renders_at_a_tiny_size() {
        let samples = run_probe(&[256], |_| 5.0, |_| {});
        assert_eq!(samples.len(), 1);
        assert_eq!(samples[0].n, 256);
        assert_eq!(samples[0].tiers.first().map(|t| t.tier), Some("exact"));
        assert_eq!(samples[0].tiers.last().map(|t| t.tier), Some("farfield"));
        let json = render_snapshot_json(&samples);
        assert!(json.contains("\"bench\": \"resolve_scaling\""));
        assert!(json.contains("\"n\": 256"));
    }

    #[test]
    fn default_budget_grows_with_n() {
        assert_eq!(default_budget_ms(1024), 1000.0);
        assert_eq!(default_budget_ms(16384), 3000.0);
        assert_eq!(default_budget_ms(65536), 3000.0);
    }
}
