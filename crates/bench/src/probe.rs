//! The resolve-tier scaling probe shared by the `scaling` snapshot binary
//! and the `bench-gate` regression gate: hand-timed per-round resolve cost
//! of the exact scan, the gain cache, the flat far-field engine, and the
//! hierarchical (tile-tree) engine over a size sweep, rendered as the
//! `BENCH_scaling.json` schema.
//!
//! Timing is deliberately simple (adaptive iteration counts against a
//! wall-clock budget) so the probe stays runnable at `n = 1048576`, where
//! only the hierarchical tier is tractable — the quadratic tiers are
//! capped ([`EXACT_TIER_CEILING`], [`FARFIELD_TIER_CEILING`]) and skipped
//! above their ceilings; the Criterion bench `resolve_scaling` tracks the
//! same workload with proper sampling.

use std::fmt::Write as _;
use std::time::Instant;

use fading_cr::channel::ChannelPerturbation;
use fading_cr::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Deployment density (nodes per unit²) of the standard experiment sweep.
pub const DENSITY: f64 = 0.25;
/// Deployment seed: fixed so snapshots are comparable across runs.
pub const SEED: u64 = 7;
/// The size sweep of the committed snapshot.
pub const DEFAULT_SIZES: [usize; 6] = [1024, 4096, 16384, 65536, 262_144, 1_048_576];
/// Largest size at which the probe times the exact scan — one exact round
/// above this costs the better part of a minute.
pub const EXACT_TIER_CEILING: usize = 65_536;
/// Largest size at which the probe times the flat far-field engine: its
/// tile grid is capped at `MAX_TILES_PER_SIDE`, so occupancy — and with it
/// the near-ring scan — grows linearly in `n` past the cap. One size above
/// [`EXACT_TIER_CEILING`] is kept so the hierarchical tier is cross-checked
/// against an independent engine there.
pub const FARFIELD_TIER_CEILING: usize = 262_144;
/// Worker threads for the hierarchical tier's [`StealPool`] — the
/// committed snapshot's parallel configuration.
pub const HIER_PROBE_THREADS: usize = 8;
/// Points per `gain_batch` call in the kernel micro-probe: big enough to
/// amortize dispatch, small enough to stay L2-resident so the probe
/// measures arithmetic, not memory bandwidth.
pub const KERNEL_PROBE_POINTS: usize = 1 << 16;
/// One representative exponent per kernel class, in class order
/// (`alpha2`, `alpha3`, `alpha4`, `alpha6`, `generic`).
pub const KERNEL_PROBE_ALPHAS: [f64; 5] = [2.0, 3.0, 4.0, 6.0, 2.5];

/// Times `f` with one warm-up call plus enough iterations to roughly fill
/// `budget_ms` (clamped to [3, 200]); returns `(iters, ms_per_call)`.
pub fn time_ms(mut f: impl FnMut(), budget_ms: f64) -> (u32, f64) {
    let start = Instant::now();
    f();
    let estimate = start.elapsed().as_secs_f64() * 1e3;
    let iters = ((budget_ms / estimate.max(1e-4)) as u32).clamp(3, 200);
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    (
        iters,
        start.elapsed().as_secs_f64() * 1e3 / f64::from(iters),
    )
}

/// One timed resolve tier at one deployment size.
#[derive(Clone, Debug)]
pub struct TierSample {
    /// Tier name: `"exact"`, `"gain-cache"`, `"farfield"`, or
    /// `"hierarchical"`.
    pub tier: &'static str,
    /// Iterations the adaptive loop settled on.
    pub iters: u32,
    /// Measured mean wall time per resolve round, in milliseconds.
    pub ms_per_round: f64,
}

/// All tier samples at one deployment size.
#[derive(Clone, Debug)]
pub struct SizeSample {
    /// Number of deployed nodes.
    pub n: usize,
    /// Per-tier timings in ladder order (tiers above their ceiling are
    /// absent).
    pub tiers: Vec<TierSample>,
    /// `exact ms / farfield ms`; 0 when either tier was not probed.
    pub speedup_farfield_vs_exact: f64,
    /// `exact ms / hierarchical ms`; 0 when the exact tier was not probed.
    pub speedup_hierarchical_vs_exact: f64,
    /// Fraction of flat far-field listener decisions that fell back to the
    /// exact scan during the probe (0 when the tier was not probed).
    pub farfield_fallback_fraction: f64,
    /// Fraction of hierarchical listener decisions that fell back to the
    /// exact scan during the probe.
    pub hierarchical_fallback_fraction: f64,
}

impl SizeSample {
    /// The measured ms/round of one tier, when it was probed.
    #[must_use]
    pub fn tier_ms(&self, tier: &str) -> Option<f64> {
        self.tiers
            .iter()
            .find(|t| t.tier == tier)
            .map(|t| t.ms_per_round)
    }
}

/// One timed kernel class from the per-α micro-probe.
#[derive(Clone, Debug)]
pub struct KernelSample {
    /// Stable class label (`AlphaClass::label`): `"alpha2"`, `"alpha3"`,
    /// `"alpha4"`, `"alpha6"`, or `"generic"`.
    pub class: &'static str,
    /// The representative exponent probed for this class.
    pub alpha: f64,
    /// Measured milliseconds per million fused `gain_batch` points.
    pub ms_per_mpoint: f64,
}

/// Times the fused [`gain_batch`](fading_cr::channel::kernels::gain_batch)
/// kernel per exponent class over an L2-resident SoA buffer
/// ([`KERNEL_PROBE_POINTS`] points), reporting ms per million points. This
/// is the per-kernel cell of `BENCH_scaling.json` ("kernels"), diffed by
/// `bench-gate` alongside the tier cells.
#[must_use]
pub fn run_kernel_probe(budget_ms: f64) -> Vec<KernelSample> {
    use fading_cr::channel::kernels::{gain_batch, AlphaClass};
    use fading_cr::geom::PointsSoA;

    let n = KERNEL_PROBE_POINTS;
    let d = Deployment::uniform_density(n, DENSITY, SEED);
    let soa = PointsSoA::from_points(d.points());
    let v = d.points()[0];
    let mut gains = vec![0.0f64; n];
    let mut out = Vec::with_capacity(KERNEL_PROBE_ALPHAS.len());
    for &alpha in &KERNEL_PROBE_ALPHAS {
        let (_, ms_per_call) = time_ms(
            || {
                gain_batch(1e9, alpha, soa.xs(), soa.ys(), v.x, v.y, &mut gains);
                // The fold is part of every consumer's hot path; include
                // it so the cell reflects what the engines actually pay.
                std::hint::black_box(fading_cr::channel::kernels::fold_scan(&gains));
            },
            budget_ms,
        );
        out.push(KernelSample {
            class: AlphaClass::of(alpha).label(),
            alpha,
            ms_per_mpoint: ms_per_call * 1e6 / n as f64,
        });
    }
    out
}

/// Runs the scaling probe over `sizes`, timing each tier against
/// `budget_ms_for(n)` milliseconds, asserting cross-tier exactness at
/// every size (each probed tier's receptions must be byte-identical to
/// the cheapest independent reference: the exact scan up to
/// [`EXACT_TIER_CEILING`], the flat far-field engine above it). `report`
/// sees each completed [`SizeSample`] as it lands (the binaries print
/// progressively; pass `|_| {}` for silence).
///
/// The probe polls [`crate::interrupt::interrupted`] between sizes: on
/// SIGINT/SIGTERM it stops early and returns the sizes completed so far,
/// letting the binaries flush a partial snapshot instead of losing
/// everything.
pub fn run_probe(
    sizes: &[usize],
    budget_ms_for: impl Fn(usize) -> f64,
    mut report: impl FnMut(&SizeSample),
) -> Vec<SizeSample> {
    let pool = StealPool::new(HIER_PROBE_THREADS);
    let mut out = Vec::with_capacity(sizes.len());
    for &n in sizes {
        if crate::interrupt::interrupted() {
            break;
        }
        let d = Deployment::uniform_density(n, DENSITY, SEED);
        let positions = d.points().to_vec();
        let tx: Vec<usize> = (0..n).step_by(4).collect();
        let rx: Vec<usize> = (0..n).filter(|i| i % 4 != 0).collect();
        let params = SinrParams::default_single_hop().with_power_for(&d);
        let sinr = SinrChannel::new(params);
        let budget_ms = budget_ms_for(n);

        let mut tiers = Vec::new();
        let mut rng = SmallRng::seed_from_u64(0);

        let exact_rx = (n <= EXACT_TIER_CEILING).then(|| {
            let receptions = sinr.resolve(&positions, &tx, &rx, &mut rng);
            let (iters, ms) = time_ms(
                || {
                    sinr.resolve(&positions, &tx, &rx, &mut rng);
                },
                budget_ms,
            );
            tiers.push(TierSample {
                tier: "exact",
                iters,
                ms_per_round: ms,
            });
            receptions
        });

        if let Some(cache) = sinr.build_gain_cache(&positions) {
            let cached_rx = sinr.resolve_cached(&positions, &tx, &rx, Some(&cache), &mut rng);
            let reference = exact_rx
                .as_ref()
                .expect("the cache size guard is far below the exact-tier ceiling");
            assert_eq!(reference, &cached_rx, "gain cache broke exactness at n={n}");
            let (iters, ms) = time_ms(
                || {
                    sinr.resolve_cached(&positions, &tx, &rx, Some(&cache), &mut rng);
                },
                budget_ms,
            );
            tiers.push(TierSample {
                tier: "gain-cache",
                iters,
                ms_per_round: ms,
            });
        }

        let mut farfield_fallback_fraction = 0.0;
        let far_rx = (n <= FARFIELD_TIER_CEILING).then(|| {
            let mut engine = sinr.build_farfield_engine(&positions);
            let receptions = sinr.resolve_farfield(
                &positions,
                &tx,
                &rx,
                engine.as_mut(),
                &ChannelPerturbation::neutral(),
                &mut rng,
            );
            if let Some(reference) = &exact_rx {
                assert_eq!(reference, &receptions, "farfield broke exactness at n={n}");
            }
            let (iters, ms) = time_ms(
                || {
                    sinr.resolve_farfield(
                        &positions,
                        &tx,
                        &rx,
                        engine.as_mut(),
                        &ChannelPerturbation::neutral(),
                        &mut rng,
                    );
                },
                budget_ms,
            );
            tiers.push(TierSample {
                tier: "farfield",
                iters,
                ms_per_round: ms,
            });
            farfield_fallback_fraction = engine
                .as_ref()
                .map(FarFieldEngine::stats)
                .unwrap_or_default()
                .fallback_fraction();
            receptions
        });

        let mut hier_engine = sinr.build_hierarchical_engine(&positions);
        let hier_rx = sinr.resolve_hierarchical(
            &positions,
            &tx,
            &rx,
            hier_engine.as_mut(),
            &pool,
            &ChannelPerturbation::neutral(),
            &mut rng,
        );
        // Cross-check against the cheapest independently computed tier.
        if let Some(reference) = exact_rx.as_ref().or(far_rx.as_ref()) {
            assert_eq!(reference, &hier_rx, "hierarchical broke exactness at n={n}");
        }
        let (iters, ms) = time_ms(
            || {
                sinr.resolve_hierarchical(
                    &positions,
                    &tx,
                    &rx,
                    hier_engine.as_mut(),
                    &pool,
                    &ChannelPerturbation::neutral(),
                    &mut rng,
                );
            },
            budget_ms,
        );
        tiers.push(TierSample {
            tier: "hierarchical",
            iters,
            ms_per_round: ms,
        });
        let hierarchical_fallback_fraction = hier_engine
            .as_ref()
            .map(HierarchicalFarFieldEngine::stats)
            .unwrap_or_default()
            .fallback_fraction();

        let exact_ms = tiers
            .iter()
            .find(|t| t.tier == "exact")
            .map(|t| t.ms_per_round);
        let far_ms = tiers
            .iter()
            .find(|t| t.tier == "farfield")
            .map(|t| t.ms_per_round);
        let hier_ms = tiers
            .last()
            .expect("hierarchical sample always present")
            .ms_per_round;
        let sample = SizeSample {
            n,
            tiers,
            speedup_farfield_vs_exact: match (exact_ms, far_ms) {
                (Some(e), Some(f)) => e / f,
                _ => 0.0,
            },
            speedup_hierarchical_vs_exact: exact_ms.map_or(0.0, |e| e / hier_ms),
            farfield_fallback_fraction,
            hierarchical_fallback_fraction,
        };
        report(&sample);
        out.push(sample);
    }
    out
}

/// The committed snapshot's per-size wall budget: the big sizes get more
/// room on purpose — the adaptive clamp still gives ≥ 3 honest iterations
/// and one exact round at `n = 65536` already costs seconds.
#[must_use]
pub fn default_budget_ms(n: usize) -> f64 {
    if n >= 16384 {
        3000.0
    } else {
        1000.0
    }
}

/// Renders probe output in the `BENCH_scaling.json` schema. `kernels` is
/// the per-α micro-probe ([`run_kernel_probe`]); pass `&[]` to omit the
/// section (older snapshots without it still parse).
#[must_use]
pub fn render_snapshot_json(samples: &[SizeSample], kernels: &[KernelSample]) -> String {
    let mut kernels_json = String::new();
    for (i, k) in kernels.iter().enumerate() {
        if i > 0 {
            kernels_json.push_str(", ");
        }
        write!(
            kernels_json,
            "{{\"class\": \"{}\", \"alpha\": {}, \"ms_per_mpoint\": {:.6}}}",
            k.class, k.alpha, k.ms_per_mpoint
        )
        .expect("write to String cannot fail");
    }
    let mut size_blocks = Vec::with_capacity(samples.len());
    for s in samples {
        let mut tiers_json = String::new();
        for (i, t) in s.tiers.iter().enumerate() {
            if i > 0 {
                tiers_json.push_str(", ");
            }
            write!(
                tiers_json,
                "{{\"tier\": \"{}\", \"iters\": {}, \"ms_per_round\": {:.6}}}",
                t.tier, t.iters, t.ms_per_round
            )
            .expect("write to String cannot fail");
        }
        size_blocks.push(format!(
            "    {{\n      \"n\": {},\n      \"tiers\": [{tiers_json}],\n      \
             \"speedup_farfield_vs_exact\": {:.2},\n      \
             \"speedup_hierarchical_vs_exact\": {:.2},\n      \
             \"farfield_fallback_fraction\": {:.6},\n      \
             \"hierarchical_fallback_fraction\": {:.6}\n    }}",
            s.n,
            s.speedup_farfield_vs_exact,
            s.speedup_hierarchical_vs_exact,
            s.farfield_fallback_fraction,
            s.hierarchical_fallback_fraction
        ));
    }
    let kernels_section = if kernels.is_empty() {
        String::new()
    } else {
        format!("  \"kernels\": [{kernels_json}],\n")
    };
    format!(
        "{{\n  \"bench\": \"resolve_scaling\",\n  \"workload\": {{\n    \
         \"tx_fraction\": 0.25,\n    \"density\": {DENSITY},\n    \"seed\": {SEED},\n    \
         \"channel\": \"sinr-single-hop\",\n    \"hierarchical_threads\": {HIER_PROBE_THREADS}\n  \
         }},\n{kernels_section}  \"sizes\": [\n{}\n  ]\n}}\n",
        size_blocks.join(",\n")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_runs_and_renders_at_a_tiny_size() {
        let samples = run_probe(&[256], |_| 5.0, |_| {});
        assert_eq!(samples.len(), 1);
        assert_eq!(samples[0].n, 256);
        assert_eq!(samples[0].tiers.first().map(|t| t.tier), Some("exact"));
        assert_eq!(
            samples[0].tiers.last().map(|t| t.tier),
            Some("hierarchical")
        );
        assert!(samples[0].tier_ms("farfield").is_some());
        assert!(samples[0].speedup_hierarchical_vs_exact > 0.0);
        let json = render_snapshot_json(&samples, &[]);
        assert!(json.contains("\"bench\": \"resolve_scaling\""));
        assert!(json.contains("\"n\": 256"));
        assert!(json.contains("\"tier\": \"hierarchical\""));
        assert!(json.contains("\"hierarchical_fallback_fraction\""));
        assert!(
            !json.contains("\"kernels\""),
            "empty kernel probe must omit the section"
        );
    }

    #[test]
    fn kernel_probe_covers_every_class_and_renders() {
        let kernels = run_kernel_probe(2.0);
        let labels: Vec<&str> = kernels.iter().map(|k| k.class).collect();
        assert_eq!(
            labels,
            vec!["alpha2", "alpha3", "alpha4", "alpha6", "generic"]
        );
        assert!(kernels.iter().all(|k| k.ms_per_mpoint > 0.0));
        let json = render_snapshot_json(&[], &kernels);
        assert!(json.contains("\"kernels\""));
        assert!(json.contains("\"class\": \"alpha2\""));
        assert!(json.contains("\"ms_per_mpoint\""));
    }

    #[test]
    fn default_budget_grows_with_n() {
        assert_eq!(default_budget_ms(1024), 1000.0);
        assert_eq!(default_budget_ms(16384), 3000.0);
        assert_eq!(default_budget_ms(65536), 3000.0);
    }

    #[test]
    fn tier_ceilings_cover_the_default_sweep() {
        // The two largest default sizes must exercise the ceilings: one
        // size runs hierarchical + farfield only, the top size runs
        // hierarchical alone.
        assert!(DEFAULT_SIZES.contains(&FARFIELD_TIER_CEILING));
        assert!(DEFAULT_SIZES.iter().any(|&n| n > FARFIELD_TIER_CEILING));
        const { assert!(EXACT_TIER_CEILING < FARFIELD_TIER_CEILING) };
    }
}
