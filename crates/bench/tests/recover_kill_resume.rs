//! The recovery drill: SIGKILL a checkpointing run mid-flight, resume it
//! from the surviving checkpoint, and require the resumed result to be
//! byte-identical to an uninterrupted reference run.
//!
//! Drives the `checkpoint_demo` binary (built by Cargo for this test),
//! whose single `RESULT …` stdout line digests the run. The demo run
//! carries a full fault plan — jamming, a noise burst, churn, and
//! Gilbert–Elliott loss — so the checkpoint must round-trip every fault
//! cursor, not just the happy path.

#![cfg(unix)]

use std::path::Path;
use std::process::{Command, Output, Stdio};
use std::time::Duration;

const BIN: &str = env!("CARGO_BIN_EXE_checkpoint_demo");
const COMMON_ARGS: [&str; 6] = ["--n", "48", "--seed", "11", "--max-rounds", "4000"];

fn result_line(out: &Output) -> String {
    assert!(
        out.status.success(),
        "checkpoint_demo failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout)
        .lines()
        .find(|l| l.starts_with("RESULT "))
        .expect("checkpoint_demo must print a RESULT line")
        .to_string()
}

fn run(extra: &[&str]) -> Output {
    Command::new(BIN)
        .args(COMMON_ARGS)
        .args(extra)
        .output()
        .expect("spawn checkpoint_demo")
}

#[test]
fn sigkill_then_resume_is_byte_identical() {
    let dir = std::env::temp_dir().join(format!("fading-recover-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    let ckpt = dir.join("demo.snap");
    let ckpt_str = ckpt.to_str().expect("utf-8 temp path");

    // Reference: one uninterrupted run, no checkpointing, full speed.
    let reference = result_line(&run(&[]));

    // Victim: same run, slowed to ~25 ms/round and checkpointing every
    // round; SIGKILL it mid-flight (no chance to flush anything).
    let mut child = Command::new(BIN)
        .args(COMMON_ARGS)
        .args(["--round-delay-ms", "25", "--checkpoint", ckpt_str])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn victim");
    std::thread::sleep(Duration::from_millis(500));
    child.kill().expect("SIGKILL the victim");
    child.wait().expect("reap the victim");
    assert!(
        Path::new(ckpt_str).exists(),
        "the killed run must leave its last atomic checkpoint behind"
    );

    // Resume from whatever round the kill left behind, full speed.
    let resumed = run(&["--checkpoint", ckpt_str, "--resume"]);
    assert!(
        String::from_utf8_lossy(&resumed.stderr).contains("resumed at round"),
        "the resumed run must actually restore the checkpoint"
    );
    assert_eq!(
        result_line(&resumed),
        reference,
        "resume after SIGKILL must reproduce the uninterrupted run byte for byte"
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_checkpoint_fails_loudly() {
    let dir = std::env::temp_dir().join(format!("fading-recover-corrupt-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    let ckpt = dir.join("bad.snap");
    std::fs::write(&ckpt, b"FSNPgarbage-that-is-not-a-snapshot").expect("write garbage");

    let out = run(&["--checkpoint", ckpt.to_str().expect("utf-8"), "--resume"]);
    assert_eq!(
        out.status.code(),
        Some(3),
        "a corrupt checkpoint must be a loud typed error, not a silent fresh start"
    );
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("unreadable checkpoint"),
        "stderr must name the unreadable checkpoint"
    );

    std::fs::remove_dir_all(&dir).ok();
}
