//! End-to-end exercise of the `bench-gate` binary: the gate must exit
//! nonzero on a synthetic 2× slowdown and zero when everything is within
//! threshold or `--check` mode is on.
//!
//! Test binaries run the *debug* build while the committed baseline was
//! measured in release, so absolute ratios here are meaningless — the
//! exit-code logic is what these tests pin (threshold arithmetic itself is
//! unit-tested in `fading_bench::gate`). A tiny probed size and a huge
//! pass-threshold keep the real-measurement cases deterministic.

use std::process::Command;

fn bench_gate(extra: &[&str]) -> std::process::Output {
    let baseline = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_scaling.json");
    Command::new(env!("CARGO_BIN_EXE_bench-gate"))
        .args(["--baseline", baseline, "--sizes", "1024", "--budget-ms", "40"])
        .args(extra)
        .output()
        .expect("bench-gate binary runs")
}

#[test]
fn synthetic_slowdown_trips_the_gate() {
    // A 1000x injected slowdown regresses every cell whatever the host.
    let out = bench_gate(&["--inject-slowdown", "1000.0", "--threshold", "1.5"]);
    assert!(
        !out.status.success(),
        "gate must exit nonzero on a synthetic slowdown; stdout:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("REGRESSED"), "verdict table says so:\n{stdout}");
    assert!(stdout.contains("cells regressed"));
}

#[test]
fn within_threshold_passes() {
    // Debug-vs-release drift is what it is; a huge threshold always passes.
    let out = bench_gate(&["--threshold", "10000"]);
    assert!(
        out.status.success(),
        "gate must exit zero inside threshold; stdout:\n{}\nstderr:\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("all"), "pass summary printed:\n{stdout}");
}

#[test]
fn check_mode_reports_but_never_fails() {
    let out = bench_gate(&[
        "--inject-slowdown",
        "1000.0",
        "--threshold",
        "1.5",
        "--check",
    ]);
    assert!(
        out.status.success(),
        "--check mode must exit zero even on regression; stdout:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("check mode: not failing"), "{stdout}");
}

#[test]
fn unmatched_sizes_fail_loudly() {
    // n=512 is not in the committed baseline: no cells to judge is an error,
    // not a silent pass.
    let baseline = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_scaling.json");
    let out = Command::new(env!("CARGO_BIN_EXE_bench-gate"))
        .args(["--baseline", baseline, "--sizes", "512", "--budget-ms", "20"])
        .output()
        .expect("bench-gate binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("no baseline cells"));
}
