//! Regression gate on the hierarchical engine's pruning quality: the
//! fraction of listener decisions that give up on the bracket and fall
//! back to the exact scan must stay small at every probed size, or the
//! "hierarchical tier is fast" claim silently erodes into "hierarchical
//! tier is a slow wrapper around the exact scan".
//!
//! The bound (6%) sits above the committed snapshot's measured fractions
//! (≤ ~4.5% across the sweep) with headroom for geometry jitter, and far
//! below the ~100% a broken bracket would produce.

use fading_bench::probe::run_probe;

/// The quick-mode sizes (`bench-gate --quick` probes ≤ 4096) plus one
/// mid-size point; kept small enough for a test-suite run.
const SIZES: [usize; 3] = [1024, 4096, 16384];

const MAX_FALLBACK_FRACTION: f64 = 0.06;

#[test]
fn hierarchical_fallback_fraction_stays_low() {
    let samples = run_probe(&SIZES, |_| 5.0, |_| {});
    assert_eq!(samples.len(), SIZES.len());
    for s in &samples {
        assert!(
            s.hierarchical_fallback_fraction <= MAX_FALLBACK_FRACTION,
            "hierarchical fallback fraction {:.4} at n={} exceeds {MAX_FALLBACK_FRACTION}",
            s.hierarchical_fallback_fraction,
            s.n
        );
        // The flat engine is probed at these sizes too and shares the
        // decision ladder; hold it to the same bar so a shared-ladder
        // regression cannot hide in either engine.
        assert!(
            s.farfield_fallback_fraction <= MAX_FALLBACK_FRACTION,
            "flat farfield fallback fraction {:.4} at n={} exceeds {MAX_FALLBACK_FRACTION}",
            s.farfield_fallback_fraction,
            s.n
        );
    }
}
