//! Exit-code contract of `bench-gate --service`: a freshly generated
//! same-host baseline passes, and a synthetic injected slowdown beyond
//! the threshold exits nonzero — proving a real service regression would
//! fail CI rather than drown in the noise of an informational log line.

#![cfg(unix)]

use std::path::PathBuf;
use std::process::{Command, Output};

const LOADGEN: &str = env!("CARGO_BIN_EXE_loadgen");
const GATE: &str = env!("CARGO_BIN_EXE_bench-gate");

fn scratch() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fading-service-gate-test-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn gate(baseline: &str, extra: &[&str]) -> Output {
    Command::new(GATE)
        .args(["--service", "--baseline", baseline, "--threshold", "4.0"])
        .args(extra)
        .output()
        .expect("spawn bench-gate")
}

#[test]
fn service_gate_passes_fresh_baseline_and_fails_injected_regression() {
    let dir = scratch();
    let baseline = dir.join("service.json");
    let baseline = baseline.to_str().expect("utf-8 path");

    // Same-host quick baseline, written by the real loadgen binary.
    let out = Command::new(LOADGEN)
        .args(["--quick", "--out", baseline])
        .output()
        .expect("spawn loadgen");
    assert!(
        out.status.success(),
        "loadgen --quick failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Fresh replay of the same mix on the same host: comfortably inside a
    // generous threshold.
    let ok = gate(baseline, &[]);
    assert!(
        ok.status.success(),
        "clean replay must pass: {}\n{}",
        String::from_utf8_lossy(&ok.stdout),
        String::from_utf8_lossy(&ok.stderr)
    );
    let stdout = String::from_utf8_lossy(&ok.stdout);
    assert!(stdout.contains("jobs/sec"), "verdict table missing: {stdout}");

    // A synthetic 10x slowdown beyond the 4x threshold must exit nonzero.
    let bad = gate(baseline, &["--inject-slowdown", "10.0"]);
    assert!(
        !bad.status.success(),
        "injected regression must fail the gate: {}",
        String::from_utf8_lossy(&bad.stdout)
    );
    assert!(
        String::from_utf8_lossy(&bad.stdout).contains("REGRESSED"),
        "verdict must name the regression"
    );

    // …but --check demotes it to informational (what CI runs).
    let checked = gate(baseline, &["--inject-slowdown", "10.0", "--check"]);
    assert!(
        checked.status.success(),
        "--check mode must never fail: {}",
        String::from_utf8_lossy(&checked.stdout)
    );

    std::fs::remove_dir_all(&dir).ok();
}
