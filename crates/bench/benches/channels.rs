//! Kernel benches: per-round channel resolution cost across models and
//! sizes — the inner loop of every experiment.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::time::Duration;

use fading_cr::prelude::*;

fn split(n: usize) -> (Vec<usize>, Vec<usize>) {
    // 25% transmitters, the FKN default.
    let transmitters: Vec<usize> = (0..n).step_by(4).collect();
    let listeners: Vec<usize> = (0..n).filter(|i| i % 4 != 0).collect();
    (transmitters, listeners)
}

fn bench_channels(c: &mut Criterion) {
    let mut group = c.benchmark_group("channel_resolve");
    group.warm_up_time(Duration::from_secs(1));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(20);
    for &n in &[256usize, 1024, 4096] {
        let d = Deployment::uniform_density(n, 0.25, 7);
        let positions = d.points().to_vec();
        let (tx, rx) = split(n);
        let params = SinrParams::default_single_hop().with_power_for(&d);

        let sinr = SinrChannel::new(params);
        group.bench_with_input(BenchmarkId::new("sinr", n), &n, |b, _| {
            let mut rng = SmallRng::seed_from_u64(0);
            b.iter(|| sinr.resolve(&positions, &tx, &rx, &mut rng));
        });

        let cache = sinr
            .build_gain_cache(&positions)
            .expect("bench sizes are within the cache guard");
        group.bench_with_input(BenchmarkId::new("sinr-cached", n), &n, |b, _| {
            let mut rng = SmallRng::seed_from_u64(0);
            b.iter(|| sinr.resolve_cached(&positions, &tx, &rx, Some(&cache), &mut rng));
        });

        let rayleigh = RayleighSinrChannel::new(params);
        group.bench_with_input(BenchmarkId::new("rayleigh", n), &n, |b, _| {
            let mut rng = SmallRng::seed_from_u64(0);
            b.iter(|| rayleigh.resolve(&positions, &tx, &rx, &mut rng));
        });

        group.bench_with_input(BenchmarkId::new("rayleigh-cached", n), &n, |b, _| {
            let mut rng = SmallRng::seed_from_u64(0);
            b.iter(|| rayleigh.resolve_cached(&positions, &tx, &rx, Some(&cache), &mut rng));
        });

        let radio = RadioChannel::new();
        group.bench_with_input(BenchmarkId::new("radio", n), &n, |b, _| {
            let mut rng = SmallRng::seed_from_u64(0);
            b.iter(|| radio.resolve(&positions, &tx, &rx, &mut rng));
        });
    }
    group.finish();
}

/// The acceptance workload for the gain cache: n = 2048 with *half* the
/// nodes transmitting (maximal per-listener interference work). The cached
/// path must come in at least 2× faster than the uncached one.
fn bench_cached_vs_uncached(c: &mut Criterion) {
    let mut group = c.benchmark_group("cached_vs_uncached_n2048_half_tx");
    group.warm_up_time(Duration::from_secs(1));
    group.measurement_time(Duration::from_secs(3));
    let n = 2048usize;
    let d = Deployment::uniform_density(n, 0.25, 7);
    let positions = d.points().to_vec();
    let tx: Vec<usize> = (0..n).step_by(2).collect();
    let rx: Vec<usize> = (1..n).step_by(2).collect();
    let params = SinrParams::default_single_hop().with_power_for(&d);
    let sinr = SinrChannel::new(params);
    let cache = sinr
        .build_gain_cache(&positions)
        .expect("n = 2048 is within the cache guard");

    group.bench_function("uncached", |b| {
        let mut rng = SmallRng::seed_from_u64(0);
        b.iter(|| sinr.resolve(&positions, &tx, &rx, &mut rng));
    });
    group.bench_function("cached", |b| {
        let mut rng = SmallRng::seed_from_u64(0);
        b.iter(|| sinr.resolve_cached(&positions, &tx, &rx, Some(&cache), &mut rng));
    });
    group.finish();
}

/// The fault-injection overhead check at n = 2048: a simulation round with
/// an **empty** fault plan must track the plain resolve within a few
/// percent (the acceptance target is < 10%), and the perturbed path with an
/// active jammer shows the true cost of fault evaluation.
fn bench_faulted_vs_unfaulted(c: &mut Criterion) {
    use fading_cr::channel::ChannelPerturbation;
    use fading_cr::sim::faults::{FaultPlan, Jammer};

    let mut group = c.benchmark_group("faulted_vs_unfaulted_n2048");
    group.warm_up_time(Duration::from_secs(1));
    group.measurement_time(Duration::from_secs(3));
    let n = 2048usize;
    let d = Deployment::uniform_density(n, 0.25, 7);
    let positions = d.points().to_vec();
    let (tx, rx) = split(n);
    let params = SinrParams::default_single_hop().with_power_for(&d);
    let sinr = SinrChannel::new(params);
    let cache = sinr
        .build_gain_cache(&positions)
        .expect("n = 2048 is within the cache guard");

    // Channel layer: the neutral perturbation must cost nothing beyond a
    // branch; a jamming perturbation adds one add per listener.
    group.bench_function("resolve-cached", |b| {
        let mut rng = SmallRng::seed_from_u64(0);
        b.iter(|| sinr.resolve_cached(&positions, &tx, &rx, Some(&cache), &mut rng));
    });
    group.bench_function("resolve-perturbed-neutral", |b| {
        let mut rng = SmallRng::seed_from_u64(0);
        let neutral = ChannelPerturbation::neutral();
        b.iter(|| sinr.resolve_perturbed(&positions, &tx, &rx, Some(&cache), &neutral, &mut rng));
    });
    let jam: Vec<f64> = positions
        .iter()
        .map(|&p| sinr.interferer_gain(Point::new(0.0, 0.0), p, params.power() * 16.0))
        .collect();
    group.bench_function("resolve-perturbed-jammed", |b| {
        let mut rng = SmallRng::seed_from_u64(0);
        let perturbation = ChannelPerturbation::new(2.0, &jam);
        b.iter(|| {
            sinr.resolve_perturbed(&positions, &tx, &rx, Some(&cache), &perturbation, &mut rng)
        });
    });

    // Simulation layer: a full round with no plan vs. an empty plan vs. an
    // active jammer — the empty-plan delta is the acceptance number. The
    // no-knockout protocol keeps all n nodes contending forever, so every
    // measured step does full-contention work (FKN would resolve within a
    // few rounds and leave the iteration loop timing near-empty steps).
    let make_sim = |plan: Option<FaultPlan>| {
        let d = Deployment::uniform_density(n, 0.25, 7);
        let params = SinrParams::default_single_hop().with_power_for(&d);
        let mut sim = Simulation::new(d, Box::new(SinrChannel::new(params)), 1, |id| {
            fading_cr::protocols::ProtocolKind::FixedProbability { p: 0.25 }.build(id)
        });
        if let Some(p) = plan {
            sim.set_fault_plan(p).expect("plan fits");
        }
        sim
    };
    group.bench_function("sim-step-no-plan", |b| {
        let mut sim = make_sim(None);
        b.iter(|| sim.step());
    });
    group.bench_function("sim-step-empty-plan", |b| {
        let mut sim = make_sim(Some(FaultPlan::new()));
        b.iter(|| sim.step());
    });
    group.bench_function("sim-step-jammed", |b| {
        let power = SinrParams::default_single_hop().power() * 1e6;
        let plan = FaultPlan::new()
            .with_jammer(Jammer::continuous(Point::new(45.0, 45.0), power, 1).expect("valid"));
        let mut sim = make_sim(Some(plan));
        b.iter(|| sim.step());
    });
    group.finish();
}

/// The gain-cache knockout maintenance kernel: one deactivate + activate
/// cycle updates every listener's standing interference total via a single
/// cache-row walk. This is the hot loop the incremental-totals design
/// keeps O(n) per knockout instead of O(n²) re-summation.
fn bench_active_interference_knockout(c: &mut Criterion) {
    let mut group = c.benchmark_group("active_interference_knockout_n2048");
    group.warm_up_time(Duration::from_secs(1));
    group.measurement_time(Duration::from_secs(2));
    let n = 2048usize;
    let d = Deployment::uniform_density(n, 0.25, 7);
    let positions = d.points().to_vec();
    let params = SinrParams::default_single_hop().with_power_for(&d);
    let sinr = SinrChannel::new(params);
    let cache = sinr
        .build_gain_cache(&positions)
        .expect("n = 2048 is within the cache guard");

    group.bench_function("deactivate-activate-cycle", |b| {
        let mut active = ActiveInterference::new(&cache);
        let mut w = 0usize;
        b.iter(|| {
            active.deactivate(&cache, w);
            active.activate(&cache, w);
            w = (w + 1) % n;
        });
    });
    group.finish();
}

fn bench_pow_alpha(c: &mut Criterion) {
    let mut group = c.benchmark_group("pow_alpha");
    group.warm_up_time(Duration::from_secs(1));
    group.measurement_time(Duration::from_secs(2));
    let d_sq: Vec<f64> = (1..1000).map(|i| f64::from(i) * 0.37).collect();
    for &alpha in &[2.5f64, 3.0, 4.0] {
        group.bench_with_input(BenchmarkId::from_parameter(alpha), &alpha, |b, &alpha| {
            b.iter(|| {
                d_sq.iter()
                    .map(|&x| fading_cr::channel::pow_alpha(x, alpha))
                    .sum::<f64>()
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().without_plots();
    targets = bench_channels, bench_cached_vs_uncached, bench_faulted_vs_unfaulted,
        bench_active_interference_knockout, bench_pow_alpha
}
criterion_main!(benches);
