//! `telemetry_overhead_n2048`: guards the zero-cost-when-disabled contract
//! of the telemetry layer.
//!
//! A `NoopSink` attached at counts detail must keep stepping within 5% of
//! an identical simulation with no sink at all (`n = 2048`, maximum
//! contention). This is a plain timing harness rather than a Criterion
//! bench so it can *assert* the contract: interleaved A/B reps, median of
//! the per-rep times, up to three attempts to ride out scheduler noise.
//! A `MemorySink` at counts detail is also timed, for information only.

use std::time::{Duration, Instant};

use fading_cr::prelude::*;
use fading_cr::sim::{MemorySink, NoopSink, TelemetryDetail};

const N: usize = 2048;
const ROUNDS: u64 = 48;
const REPS: usize = 11;
const TOLERANCE: f64 = 1.05;

fn build_sim() -> Simulation {
    let d = Deployment::uniform_density(N, 0.25, 7);
    let params = SinrParams::default_single_hop().with_power_for(&d);
    Simulation::new(d, Box::new(SinrChannel::new(params)), 7, |_| {
        Box::new(Fkn::new())
    })
}

#[derive(Clone, Copy)]
enum Sink {
    None,
    Noop,
    Memory,
}

fn time_stepping(sink: Sink) -> Duration {
    let mut sim = build_sim();
    match sink {
        Sink::None => {}
        Sink::Noop => sim.set_telemetry_sink(Box::new(NoopSink)),
        Sink::Memory => {
            sim.set_telemetry_sink(Box::new(MemorySink::new(TelemetryDetail::counts())));
        }
    }
    let start = Instant::now();
    for _ in 0..ROUNDS {
        sim.step();
    }
    start.elapsed()
}

fn median(mut samples: Vec<Duration>) -> Duration {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn measure() -> (Duration, Duration, Duration) {
    let mut base = Vec::with_capacity(REPS);
    let mut noop = Vec::with_capacity(REPS);
    let mut memory = Vec::with_capacity(REPS);
    // Warm-up: fault the gain-cache code paths and the allocator once.
    let _ = time_stepping(Sink::None);
    for _ in 0..REPS {
        base.push(time_stepping(Sink::None));
        noop.push(time_stepping(Sink::Noop));
        memory.push(time_stepping(Sink::Memory));
    }
    (median(base), median(noop), median(memory))
}

fn main() {
    let attempts = 3;
    let mut last = None;
    for attempt in 1..=attempts {
        let (base, noop, memory) = measure();
        let ratio = noop.as_secs_f64() / base.as_secs_f64();
        println!(
            "telemetry_overhead_n2048 attempt {attempt}: baseline {base:?}, \
             noop sink {noop:?} (x{ratio:.3}), memory sink {memory:?}"
        );
        if ratio <= TOLERANCE {
            println!("telemetry_overhead_n2048: PASS (no-op sink within 5% of baseline)");
            return;
        }
        last = Some(ratio);
    }
    panic!(
        "telemetry_overhead_n2048: no-op sink overhead x{:.3} exceeds the 5% budget \
         in {attempts} attempts",
        last.unwrap()
    );
}
