//! E2 bench: wall-clock of FKN resolution on geometric chains as R grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use fading_cr::prelude::*;

fn bench_e2(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_rounds_vs_r");
    group.warm_up_time(Duration::from_secs(1));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(10);
    for &pow in &[8u32, 16, 24] {
        group.bench_with_input(BenchmarkId::new("r_2pow", pow), &pow, |b, &pow| {
            let ratio = 2f64.powi(pow as i32);
            let d = generators::geometric_line(24, ratio).expect("valid chain");
            let params = SinrParams::default_single_hop().with_power_for(&d);
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                Simulation::new(d.clone(), Box::new(SinrChannel::new(params)), seed, |_| {
                    Box::new(Fkn::new())
                })
                .run_until_resolved(1_000_000)
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().without_plots();
    targets = bench_e2
}
criterion_main!(benches);
