//! Kernel benches: full run-to-resolution latency of the simulator with the
//! paper's algorithm, across n.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use fading_cr::prelude::*;

fn bench_fkn_run(c: &mut Criterion) {
    let mut group = c.benchmark_group("fkn_run_to_resolution");
    group.warm_up_time(Duration::from_secs(1));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(10);
    for &n in &[64usize, 256, 1024] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let d = Deployment::uniform_density(n, 0.25, seed);
                let params = SinrParams::default_single_hop().with_power_for(&d);
                let mut sim = Simulation::new(d, Box::new(SinrChannel::new(params)), seed, |_| {
                    Box::new(Fkn::new())
                });
                sim.run_until_resolved(1_000_000)
            });
        });
    }
    group.finish();
}

fn bench_single_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("fkn_first_step");
    group.warm_up_time(Duration::from_secs(1));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(10);
    for &n in &[1024usize, 4096] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let d = Deployment::uniform_density(n, 0.25, 3);
            let params = SinrParams::default_single_hop().with_power_for(&d);
            b.iter(|| {
                // Rebuild to measure a fresh (maximum-contention) round.
                let mut sim =
                    Simulation::new(d.clone(), Box::new(SinrChannel::new(params)), 3, |_| {
                        Box::new(Fkn::new())
                    });
                sim.step()
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().without_plots();
    targets = bench_fkn_run, bench_single_step
}
criterion_main!(benches);
