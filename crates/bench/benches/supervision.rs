//! `supervision_overhead_n2048`: guards the zero-cost contract of the
//! trial supervisor.
//!
//! Running a trial through `supervise_trial` with the default inline
//! configuration (no watchdog thread) and self-checking disabled must stay
//! within 2% of calling the trial closure directly (`n = 2048`, maximum
//! contention — the `resolve_scaling` workload shape). Plain timing
//! harness rather than Criterion so it can *assert* the budget:
//! interleaved A/B reps, median of the per-rep times, up to three attempts
//! to ride out scheduler noise.

use std::sync::Arc;
use std::time::{Duration, Instant};

use fading_cr::prelude::*;
use fading_cr::sim::recover::{supervise_trial, SupervisorConfig, TrialFn};

const N: usize = 2048;
const ROUNDS: u64 = 48;
const REPS: usize = 11;
const TOLERANCE: f64 = 1.02;

fn run_trial(seed: u64) -> RunResult {
    let d = Deployment::uniform_density(N, 0.25, seed);
    let params = SinrParams::default_single_hop().with_power_for(&d);
    let mut sim = Simulation::new(d, Box::new(SinrChannel::new(params)), seed, |_| {
        Box::new(Fkn::new())
    });
    assert!(!sim.self_check_enabled(), "self-check must default off");
    sim.run_until_resolved(ROUNDS)
}

fn time_direct() -> Duration {
    let start = Instant::now();
    let result = run_trial(7);
    let elapsed = start.elapsed();
    std::hint::black_box(result);
    elapsed
}

fn time_supervised(cfg: &SupervisorConfig, trial: &Arc<TrialFn>) -> Duration {
    let start = Instant::now();
    let outcome = supervise_trial(cfg, 7, trial);
    let elapsed = start.elapsed();
    assert!(outcome.is_success(), "the trial itself must not fail");
    std::hint::black_box(outcome);
    elapsed
}

fn median(mut samples: Vec<Duration>) -> Duration {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn measure() -> (Duration, Duration) {
    let cfg = SupervisorConfig::default();
    assert!(cfg.timeout.is_none(), "default config must be the inline path");
    let trial: Arc<TrialFn> = Arc::new(run_trial);
    let mut direct = Vec::with_capacity(REPS);
    let mut supervised = Vec::with_capacity(REPS);
    // Warm-up: fault the gain-cache code paths and the allocator once.
    let _ = time_direct();
    for _ in 0..REPS {
        direct.push(time_direct());
        supervised.push(time_supervised(&cfg, &trial));
    }
    (median(direct), median(supervised))
}

fn main() {
    let attempts = 3;
    let mut last = None;
    for attempt in 1..=attempts {
        let (direct, supervised) = measure();
        let ratio = supervised.as_secs_f64() / direct.as_secs_f64();
        println!(
            "supervision_overhead_n2048 attempt {attempt}: direct {direct:?}, \
             supervised {supervised:?} (x{ratio:.3})"
        );
        if ratio <= TOLERANCE {
            println!("supervision_overhead_n2048: PASS (supervisor within 2% of direct)");
            return;
        }
        last = Some(ratio);
    }
    panic!(
        "supervision_overhead_n2048: supervisor overhead x{:.3} exceeds the 2% budget \
         in {attempts} attempts",
        last.unwrap()
    );
}
