//! E10 bench: hitting-game wall-clock per player strategy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use fading_cr::prelude::*;

fn bench_e10(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10_hitting_game");
    group.warm_up_time(Duration::from_secs(1));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(20);
    for &k in &[64usize, 1024, 16384] {
        group.bench_with_input(BenchmarkId::new("halving", k), &k, |b, &k| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut game = RestrictedHitting::new(k, seed).expect("k >= 2");
                let mut player = HalvingPlayer::new(k);
                game.play(&mut player, 10_000, seed)
            });
        });
        group.bench_with_input(BenchmarkId::new("random", k), &k, |b, &k| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut game = RestrictedHitting::new(k, seed).expect("k >= 2");
                let mut player = UniformRandomPlayer::new(k);
                game.play(&mut player, 10_000, seed)
            });
        });
        group.bench_with_input(BenchmarkId::new("fkn_reduction", k), &k, |b, &k| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut game = RestrictedHitting::new(k, seed).expect("k >= 2");
                let mut player = ProtocolPlayer::new(k, seed, |_| Box::new(Fkn::new()));
                game.play(&mut player, 100_000, seed)
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().without_plots();
    targets = bench_e10
}
criterion_main!(benches);
