//! Tier-scaling benches: per-round resolve cost of the exact scan, the
//! gain cache, and the far-field engine as `n` grows into the regime where
//! the quadratic tiers stop being viable.
//!
//! The snapshot numbers recorded in `BENCH_scaling.json` come from the
//! `scaling` binary (which times the same workload without Criterion's
//! sampling overhead at the biggest sizes); this bench is the
//! statistically careful version for regression tracking at the sizes
//! Criterion can afford.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::time::Duration;

use fading_cr::channel::ChannelPerturbation;
use fading_cr::prelude::*;

fn split(n: usize) -> (Vec<usize>, Vec<usize>) {
    // 25% transmitters, the FKN default.
    let transmitters: Vec<usize> = (0..n).step_by(4).collect();
    let listeners: Vec<usize> = (0..n).filter(|i| i % 4 != 0).collect();
    (transmitters, listeners)
}

fn bench_resolve_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("resolve_scaling");
    group.warm_up_time(Duration::from_secs(1));
    group.sample_size(10);
    for &n in &[1024usize, 4096, 16384, 65536] {
        // Bigger sizes get a longer budget: a single exact round at
        // n = 16384 is already tens of milliseconds.
        group.measurement_time(Duration::from_secs(if n >= 16384 { 6 } else { 2 }));
        let d = Deployment::uniform_density(n, 0.25, 7);
        let positions = d.points().to_vec();
        let (tx, rx) = split(n);
        let params = SinrParams::default_single_hop().with_power_for(&d);
        let sinr = SinrChannel::new(params);

        // The exact quadratic scan: affordable under Criterion sampling up
        // to n = 16384 (the `scaling` binary covers 65536 with hand-timed
        // iterations).
        if n <= 16384 {
            group.bench_with_input(BenchmarkId::new("exact", n), &n, |b, _| {
                let mut rng = SmallRng::seed_from_u64(0);
                b.iter(|| sinr.resolve(&positions, &tx, &rx, &mut rng));
            });
        }

        // The gain cache refuses deployments above its size guard.
        if let Some(cache) = sinr.build_gain_cache(&positions) {
            group.bench_with_input(BenchmarkId::new("gain-cache", n), &n, |b, _| {
                let mut rng = SmallRng::seed_from_u64(0);
                b.iter(|| sinr.resolve_cached(&positions, &tx, &rx, Some(&cache), &mut rng));
            });
        }

        let mut engine = sinr.build_farfield_engine(&positions);
        assert!(engine.is_some(), "farfield engine must build at any n");
        group.bench_with_input(BenchmarkId::new("farfield", n), &n, |b, _| {
            let mut rng = SmallRng::seed_from_u64(0);
            b.iter(|| {
                sinr.resolve_farfield(
                    &positions,
                    &tx,
                    &rx,
                    engine.as_mut(),
                    &ChannelPerturbation::neutral(),
                    &mut rng,
                )
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().without_plots();
    targets = bench_resolve_scaling
}
criterion_main!(benches);
