//! E6 bench: run-to-resolution wall-clock across path-loss exponents
//! (non-integer alphas also exercise the slow `powf` path of the SINR
//! kernel), plus the kernel-level batched-vs-scalar sweep: the fused
//! `gain_batch` SoA kernel against the equivalent scalar `pow_alpha`
//! loop over `Point`s, per exponent class.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use fading_cr::channel::kernels::gain_batch;
use fading_cr::channel::pow_alpha;
use fading_cr::geom::PointsSoA;
use fading_cr::prelude::*;

fn bench_e6(c: &mut Criterion) {
    let n = 512;
    let mut group = c.benchmark_group("e6_alpha_sweep");
    group.warm_up_time(Duration::from_secs(1));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(10);
    for &alpha in &[2.1f64, 3.0, 4.0, 6.0] {
        group.bench_with_input(BenchmarkId::from_parameter(alpha), &alpha, |b, &alpha| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let d = Deployment::uniform_density(n, 0.25, seed);
                let params = SinrParams::builder()
                    .alpha(alpha)
                    .build()
                    .expect("valid alpha")
                    .with_power_for(&d);
                Simulation::new(d, Box::new(SinrChannel::new(params)), seed, |_| {
                    Box::new(Fkn::new())
                })
                .run_until_resolved(2_000_000)
            });
        });
    }
    group.finish();
}

/// Batched vs scalar gain computation over one listener's scan of a
/// 65536-point deployment, per exponent class (α = 2 is kernel-only: the
/// channel itself requires α > 2, but the class exists for raw consumers).
fn bench_kernels(c: &mut Criterion) {
    let n = 1 << 16;
    let d = Deployment::uniform_density(n, 0.25, 7);
    let positions = d.points().to_vec();
    let soa = PointsSoA::from_points(&positions);
    let v = positions[0];
    let mut gains = vec![0.0f64; n];
    let mut group = c.benchmark_group("kernel_alpha_sweep");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for &alpha in &[2.0f64, 2.5, 3.0, 4.0, 6.0] {
        group.bench_with_input(
            BenchmarkId::new("batched", alpha),
            &alpha,
            |b, &alpha| {
                b.iter(|| {
                    gain_batch(1e9, alpha, soa.xs(), soa.ys(), v.x, v.y, &mut gains);
                    std::hint::black_box(gains.last().copied())
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("scalar", alpha),
            &alpha,
            |b, &alpha| {
                b.iter(|| {
                    for (g, p) in gains.iter_mut().zip(&positions) {
                        *g = 1e9 / pow_alpha(p.distance_sq(v), alpha);
                    }
                    std::hint::black_box(gains.last().copied())
                });
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().without_plots();
    targets = bench_e6, bench_kernels
}
criterion_main!(benches);
