//! E6 bench: run-to-resolution wall-clock across path-loss exponents
//! (non-integer alphas also exercise the slow `powf` path of the SINR
//! kernel).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use fading_cr::prelude::*;

fn bench_e6(c: &mut Criterion) {
    let n = 512;
    let mut group = c.benchmark_group("e6_alpha_sweep");
    group.warm_up_time(Duration::from_secs(1));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(10);
    for &alpha in &[2.1f64, 3.0, 4.0, 6.0] {
        group.bench_with_input(BenchmarkId::from_parameter(alpha), &alpha, |b, &alpha| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let d = Deployment::uniform_density(n, 0.25, seed);
                let params = SinrParams::builder()
                    .alpha(alpha)
                    .build()
                    .expect("valid alpha")
                    .with_power_for(&d);
                Simulation::new(d, Box::new(SinrChannel::new(params)), seed, |_| {
                    Box::new(Fkn::new())
                })
                .run_until_resolved(2_000_000)
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().without_plots();
    targets = bench_e6
}
criterion_main!(benches);
