//! E5 bench: run-to-resolution wall-clock across FKN broadcast
//! probabilities.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use fading_cr::prelude::*;

fn bench_e5(c: &mut Criterion) {
    let n = 512;
    let mut group = c.benchmark_group("e5_p_sweep");
    group.warm_up_time(Duration::from_secs(1));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(10);
    for &p in &[0.05f64, 0.25, 0.5] {
        group.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, &p| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let d = Deployment::uniform_density(n, 0.25, seed);
                let params = SinrParams::default_single_hop().with_power_for(&d);
                Simulation::new(d, Box::new(SinrChannel::new(params)), seed, |_| {
                    Box::new(Fkn::with_probability(p).expect("valid p"))
                })
                .run_until_resolved(2_000_000)
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().without_plots();
    targets = bench_e5
}
criterion_main!(benches);
