//! E3 bench: run-to-resolution wall-clock per protocol on the SINR channel.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use fading_cr::prelude::*;

fn run_protocol(kind: ProtocolKind, n: usize, seed: u64) -> RunResult {
    let d = Deployment::uniform_density(n, 0.25, seed);
    let params = SinrParams::default_single_hop().with_power_for(&d);
    Simulation::new(d, Box::new(SinrChannel::new(params)), seed, |id| {
        kind.build(id)
    })
    .run_until_resolved(2_000_000)
}

fn bench_e3(c: &mut Criterion) {
    let n = 512;
    let mut group = c.benchmark_group("e3_protocols_on_sinr");
    group.warm_up_time(Duration::from_secs(1));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(10);
    let kinds = [
        ProtocolKind::fkn_default(),
        ProtocolKind::Aloha { n },
        ProtocolKind::DecayClassic,
        ProtocolKind::Decay,
        ProtocolKind::JurdzinskiStachowiak { n_bound: 2 * n },
        ProtocolKind::CyclicSweep { n_bound: 2 * n },
        ProtocolKind::FknInterleavedJs {
            p: 0.25,
            n_bound: 2 * n,
        },
    ];
    for kind in kinds {
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.label()),
            &kind,
            |b, &kind| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    run_protocol(kind, n, seed)
                });
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().without_plots();
    targets = bench_e3
}
criterion_main!(benches);
