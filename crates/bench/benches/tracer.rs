//! `tracer_overhead_n2048`: guards the zero-cost-when-disabled contract
//! of the span tracer.
//!
//! A *disabled* tracer attached to the simulation must keep stepping
//! within 2% of an identical simulation with no tracer at all
//! (`n = 2048`, maximum contention) — the disabled fast path is one
//! relaxed atomic load per would-be span and no allocation. This is a
//! plain timing harness rather than a Criterion bench so it can *assert*
//! the contract: interleaved A/B reps, median of the per-rep times, up to
//! three attempts to ride out scheduler noise. An *enabled* tracer is
//! also timed, for information only (its cost is the price of real span
//! recording, not a regression).
//!
//! `--quick` (used by CI) drops to fewer reps and rounds so the assert
//! still runs everywhere without dominating the job.

use std::sync::Arc;
use std::time::{Duration, Instant};

use fading_cr::prelude::*;
use fading_cr::sim::Tracer;

const N: usize = 2048;
const TOLERANCE: f64 = 1.02;

fn build_sim() -> Simulation {
    let d = Deployment::uniform_density(N, 0.25, 7);
    let params = SinrParams::default_single_hop().with_power_for(&d);
    Simulation::new(d, Box::new(SinrChannel::new(params)), 7, |_| {
        Box::new(Fkn::new())
    })
}

#[derive(Clone, Copy)]
enum Mode {
    None,
    Disabled,
    Enabled,
}

fn time_stepping(mode: Mode, rounds: u64) -> Duration {
    let mut sim = build_sim();
    match mode {
        Mode::None => {}
        Mode::Disabled => sim.set_tracer(Tracer::disabled()),
        Mode::Enabled => sim.set_tracer(Tracer::new()),
    }
    let start = Instant::now();
    for _ in 0..rounds {
        sim.step();
    }
    start.elapsed()
}

fn median(mut samples: Vec<Duration>) -> Duration {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn measure(reps: usize, rounds: u64) -> (Duration, Duration, Duration) {
    let mut base = Vec::with_capacity(reps);
    let mut disabled = Vec::with_capacity(reps);
    let mut enabled = Vec::with_capacity(reps);
    // Warm-up: fault the gain-cache code paths and the allocator once.
    let _ = time_stepping(Mode::None, rounds);
    for _ in 0..reps {
        base.push(time_stepping(Mode::None, rounds));
        disabled.push(time_stepping(Mode::Disabled, rounds));
        enabled.push(time_stepping(Mode::Enabled, rounds));
    }
    (median(base), median(disabled), median(enabled))
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (reps, rounds) = if quick { (5, 24) } else { (11, 48) };
    // Sanity-check that an enabled tracer actually records while stepping.
    {
        let mut sim = build_sim();
        let tracer = Tracer::new();
        sim.set_tracer(Arc::clone(&tracer));
        sim.step();
        assert!(
            tracer.finished_spans().iter().any(|s| s.name == "step"),
            "enabled tracer recorded no step span"
        );
    }
    let attempts = 3;
    let mut last = None;
    for attempt in 1..=attempts {
        let (base, disabled, enabled) = measure(reps, rounds);
        let ratio = disabled.as_secs_f64() / base.as_secs_f64();
        let enabled_ratio = enabled.as_secs_f64() / base.as_secs_f64();
        println!(
            "tracer_overhead_n2048 attempt {attempt}: baseline {base:?}, \
             disabled tracer {disabled:?} (x{ratio:.3}), \
             enabled tracer {enabled:?} (x{enabled_ratio:.3})"
        );
        if ratio <= TOLERANCE {
            println!("tracer_overhead_n2048: PASS (disabled tracer within 2% of baseline)");
            return;
        }
        last = Some(ratio);
    }
    panic!(
        "tracer_overhead_n2048: disabled-tracer overhead x{:.3} exceeds the 2% budget \
         in {attempts} attempts",
        last.unwrap()
    );
}
