//! E1 bench: wall-clock of FKN resolution as n grows (the workload behind
//! the rounds-vs-n table).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use fading_cr::prelude::*;

fn bench_e1(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_rounds_vs_n");
    group.warm_up_time(Duration::from_secs(1));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(10);
    for &n in &[128usize, 512, 2048] {
        // Gain cache on (the simulator default) vs. forced off — same
        // seeds, bit-identical results, different wall-clock.
        group.bench_with_input(BenchmarkId::new("cached", n), &n, |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let d = Deployment::uniform_density(n, 0.25, seed);
                let params = SinrParams::default_single_hop().with_power_for(&d);
                Simulation::new(d, Box::new(SinrChannel::new(params)), seed, |_| {
                    Box::new(Fkn::new())
                })
                .run_until_resolved(1_000_000)
            });
        });
        group.bench_with_input(BenchmarkId::new("uncached", n), &n, |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let d = Deployment::uniform_density(n, 0.25, seed);
                let params = SinrParams::default_single_hop().with_power_for(&d);
                let mut sim =
                    Simulation::new(d, Box::new(SinrChannel::new(params)), seed, |_| {
                        Box::new(Fkn::new())
                    });
                sim.set_gain_cache_enabled(false);
                sim.run_until_resolved(1_000_000)
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().without_plots();
    targets = bench_e1
}
criterion_main!(benches);
