//! Kernel benches for the analysis machinery (E7–E9 building blocks):
//! link-class partition, good-node classification, separated-subset
//! construction, and schedule adherence checking.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use fading_cr::analysis::{
    separated_subset, ClassBoundSchedule, GoodNodes, LinkClasses, ScheduleParams,
};
use fading_cr::prelude::*;

fn bench_partition(c: &mut Criterion) {
    let mut group = c.benchmark_group("link_class_partition");
    group.warm_up_time(Duration::from_secs(1));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(20);
    for &n in &[256usize, 1024, 4096] {
        let d = Deployment::uniform_density(n, 0.25, 5);
        let active: Vec<usize> = (0..n).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| LinkClasses::partition(d.points(), &active, d.min_link()));
        });
    }
    group.finish();
}

fn bench_good_nodes(c: &mut Criterion) {
    let mut group = c.benchmark_group("good_node_classification");
    group.warm_up_time(Duration::from_secs(1));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(10);
    for &n in &[256usize, 1024] {
        let d = Deployment::uniform_density(n, 0.25, 5);
        let active: Vec<usize> = (0..n).collect();
        let classes = LinkClasses::partition(d.points(), &active, d.min_link());
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| GoodNodes::classify(d.points(), &active, &classes, 3.0));
        });
    }
    group.finish();
}

fn bench_separated_subset(c: &mut Criterion) {
    let mut group = c.benchmark_group("separated_subset");
    group.warm_up_time(Duration::from_secs(1));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(20);
    let n = 1024;
    let d = Deployment::uniform_density(n, 0.25, 5);
    let active: Vec<usize> = (0..n).collect();
    let classes = LinkClasses::partition(d.points(), &active, d.min_link());
    let good = GoodNodes::classify(d.points(), &active, &classes, 3.0);
    let i = classes.smallest_nonempty().expect("nonempty class");
    group.bench_function("smallest_class", |b| {
        b.iter(|| separated_subset(d.points(), &classes, &good, i, 2.0));
    });
    group.finish();
}

fn bench_schedule(c: &mut Criterion) {
    let mut group = c.benchmark_group("schedule_adherence");
    group.warm_up_time(Duration::from_secs(1));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(20);
    let sched = ClassBoundSchedule::new(4096, 12, ScheduleParams::default());
    // A synthetic 300-round trace of 12-class size vectors.
    let series: Vec<Vec<usize>> = (0..300u64)
        .map(|r| {
            (0..12)
                .map(|i| sched.bound(r / 3, i).floor() as usize)
                .collect()
        })
        .collect();
    group.bench_function("adherence_300_rounds", |b| {
        b.iter(|| sched.adherence(&series));
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().without_plots();
    targets = bench_partition, bench_good_nodes, bench_separated_subset, bench_schedule
}
criterion_main!(benches);
