//! The paper's headline claims, asserted as integration tests at moderate
//! scale. These are the "does the reproduction reproduce?" gates.

use fading::prelude::*;

fn fkn_mean_rounds(n: usize, trials: usize, seed_base: u64) -> f64 {
    let results = montecarlo::run_trials(trials, 4, seed_base, |seed| {
        let d = Deployment::uniform_density(n, 0.25, seed);
        let params = SinrParams::default_single_hop().with_power_for(&d);
        Simulation::new(d, Box::new(SinrChannel::new(params)), seed, |_| {
            Box::new(Fkn::new())
        })
        .run_until_resolved(1_000_000)
    });
    let s = montecarlo::Summary::from_results(&results);
    assert_eq!(s.success_rate, 1.0, "n={n}: some trial failed");
    s.mean_rounds
}

/// Theorem 1 shape: quadrupling n adds roughly a constant number of rounds
/// (logarithmic growth), not a constant factor.
#[test]
fn theorem1_logarithmic_growth_in_n() {
    let r64 = fkn_mean_rounds(64, 30, 0);
    let r256 = fkn_mean_rounds(256, 30, 1_000);
    let r1024 = fkn_mean_rounds(1024, 30, 2_000);
    // Additive increments for 4x n should be comparable, not multiplicative.
    let inc1 = r256 - r64;
    let inc2 = r1024 - r256;
    assert!(
        inc2 < 3.0 * inc1.abs().max(3.0),
        "increments {inc1} then {inc2} look super-logarithmic ({r64}, {r256}, {r1024})"
    );
    // And total growth from 64 to 1024 (16x nodes) is well under 3x rounds.
    assert!(r1024 < 3.0 * r64, "{r64} -> {r1024}");
}

/// Theorem 1 in R: on chains the upper bound `O(log n + log R)` holds with
/// a small constant; the measured dependence on `R` is weak (the log R term
/// is conservative — chains empty their classes concurrently, see E2).
#[test]
fn theorem1_upper_bound_holds_in_r() {
    let mean_at = |pow: i32, seed_base: u64| -> f64 {
        let results = montecarlo::run_trials(30, 4, seed_base, |seed| {
            let d = generators::geometric_line(24, 2f64.powi(pow)).expect("valid chain");
            let params = SinrParams::default_single_hop().with_power_for(&d);
            Simulation::new(d, Box::new(SinrChannel::new(params)), seed, |_| {
                Box::new(Fkn::new())
            })
            .run_until_resolved(1_000_000)
        });
        let s = montecarlo::Summary::from_results(&results);
        assert_eq!(s.success_rate, 1.0, "chain R=2^{pow} failed");
        s.mean_rounds
    };
    let log_n = 24f64.log2();
    for (pow, seed_base) in [(10, 0u64), (25, 100), (40, 200)] {
        let mean = mean_at(pow, seed_base);
        let bound_units = log_n + f64::from(pow);
        assert!(
            mean < 2.0 * bound_units,
            "R=2^{pow}: mean {mean} exceeds 2x the bound unit {bound_units}"
        );
    }
    // Weak dependence: a 2^30 increase in R shifts the mean by only a few
    // rounds, not by ~30 rounds per bound unit.
    let low = mean_at(10, 300);
    let high = mean_at(40, 400);
    assert!(
        (high - low).abs() < 15.0,
        "R-dependence unexpectedly strong: {low} -> {high}"
    );
}

/// The headline: FKN on SINR decisively beats Decay on the radio network
/// model at every scale (the paper's square-root improvement; the asymptotic
/// *widening* of the gap needs scales beyond a laptop simulation, but the
/// multiple must already be large and must not collapse as n grows).
#[test]
fn fading_beats_the_radio_network_speed_limit() {
    let decay_mean = |n: usize, seed_base: u64| -> f64 {
        let results = montecarlo::run_trials(20, 4, seed_base, |seed| {
            let d = Deployment::uniform_density(n, 0.25, seed);
            Simulation::new(d, Box::new(RadioChannel::new()), seed, |_| {
                Box::new(Decay::without_knockout())
            })
            .run_until_resolved(2_000_000)
        });
        let s = montecarlo::Summary::from_results(&results);
        assert_eq!(s.success_rate, 1.0, "decay failed at n={n}");
        s.mean_rounds
    };
    let fkn256 = fkn_mean_rounds(256, 20, 5_000);
    let decay256 = decay_mean(256, 6_000);
    let fkn1024 = fkn_mean_rounds(1024, 20, 7_000);
    let decay1024 = decay_mean(1024, 8_000);
    let speedup256 = decay256 / fkn256;
    let speedup1024 = decay1024 / fkn1024;
    assert!(speedup256 > 3.0, "speedup at 256: {speedup256}");
    assert!(speedup1024 > 3.0, "speedup at 1024: {speedup1024}");
    assert!(
        speedup1024 > 0.6 * speedup256,
        "speedup collapsed: {speedup256} -> {speedup1024}"
    );
}

/// Fading buys what collision detection buys: FKN on SINR is within a
/// constant factor of CD-election on radio-CD.
#[test]
fn fading_matches_collision_detection() {
    let cd_mean = |n: usize| -> f64 {
        let results = montecarlo::run_trials(20, 4, 0, |seed| {
            let d = Deployment::uniform_density(n, 0.25, seed);
            Simulation::new(d, Box::new(RadioCdChannel::new()), seed, |_| {
                Box::new(CdElection::new())
            })
            .run_until_resolved(100_000)
        });
        montecarlo::Summary::from_results(&results).mean_rounds
    };
    let fkn = fkn_mean_rounds(512, 20, 9_000);
    let cd = cd_mean(512);
    assert!(
        fkn < 10.0 * cd && cd < 10.0 * fkn,
        "fkn {fkn} vs cd {cd} differ by more than a constant-ish factor"
    );
}

/// Lemma 13 shape: the w.h.p. cost of the hitting game grows with k even
/// though the expected cost is constant.
#[test]
fn hitting_game_whp_cost_grows() {
    let whp_rounds = |k: usize| -> f64 {
        // Empirical (1 - 1/k)-quantile over many games.
        let trials = 4 * k.max(64);
        let mut rounds: Vec<u64> = (0..trials as u64)
            .map(|seed| {
                let mut game = RestrictedHitting::new(k, seed).expect("k >= 2");
                let mut player = UniformRandomPlayer::new(k);
                game.play(&mut player, 100_000, seed)
                    .expect("random player wins")
            })
            .collect();
        rounds.sort_unstable();
        let idx = ((trials as f64) * (1.0 - 1.0 / k as f64)).ceil() as usize - 1;
        rounds[idx.min(trials - 1)] as f64
    };
    let small = whp_rounds(16);
    let large = whp_rounds(256);
    assert!(
        large > small,
        "whp cost did not grow with k: {small} vs {large}"
    );
}

/// The two-player game matches its closed form: FKN at p = 1/4 resolves in
/// 8/3 rounds expected, and the tail is geometric.
#[test]
fn two_player_closed_form() {
    let game = TwoPlayerCr::new(|_| Box::new(Fkn::with_probability(0.25).expect("valid p")));
    let rounds: Vec<u64> = game
        .play_many(2_000, 0, 100_000)
        .into_iter()
        .flatten()
        .collect();
    assert_eq!(rounds.len(), 2_000);
    let mean = rounds.iter().sum::<u64>() as f64 / rounds.len() as f64;
    assert!((mean - 8.0 / 3.0).abs() < 0.3, "mean {mean}");
}
