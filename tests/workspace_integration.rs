//! Cross-crate integration: the facade API end-to-end over every channel
//! and protocol combination that makes sense, plus reproducibility.

use fading::prelude::*;

fn uniform(n: usize, seed: u64) -> Deployment {
    Deployment::uniform_density(n, 0.25, seed)
}

#[test]
fn scenario_end_to_end_on_every_channel() {
    let d = uniform(48, 3);
    let params = SinrParams::default_single_hop().with_power_for(&d);
    let cases: Vec<(ChannelKind, ProtocolKind)> = vec![
        (ChannelKind::Sinr(params), ProtocolKind::fkn_default()),
        (
            ChannelKind::RayleighSinr(params),
            ProtocolKind::fkn_default(),
        ),
        (ChannelKind::Radio, ProtocolKind::DecayClassic),
        (ChannelKind::RadioCd, ProtocolKind::CdElection),
    ];
    for (channel, protocol) in cases {
        let s = Scenario::builder()
            .deployment(d.clone())
            .channel(channel)
            .protocol(protocol)
            .seed(11)
            .build()
            .expect("valid scenario");
        let r = s.run(500_000);
        assert!(
            r.resolved(),
            "{}/{} did not resolve",
            channel.label(),
            protocol.label()
        );
    }
}

#[test]
fn identical_scenarios_reproduce_identical_results() {
    let build = || {
        Scenario::builder()
            .deployment(uniform(64, 5))
            .sinr(SinrParams::default_single_hop().with_power_for(&uniform(64, 5)))
            .protocol(ProtocolKind::fkn_default())
            .seed(77)
            .trace_level(TraceLevel::Full)
            .build()
            .expect("valid scenario")
    };
    let a = build().run(100_000);
    let b = build().run(100_000);
    assert_eq!(a.resolved_at(), b.resolved_at());
    assert_eq!(a.winner(), b.winner());
    assert_eq!(a.trace(), b.trace());
}

#[test]
fn montecarlo_matches_individual_runs() {
    let s = Scenario::builder()
        .deployment(uniform(32, 9))
        .sinr(SinrParams::default_single_hop().with_power_for(&uniform(32, 9)))
        .protocol(ProtocolKind::fkn_default())
        .seed(100)
        .build()
        .expect("valid scenario");
    let batch = s.montecarlo(5, 3, 100_000);
    for (i, r) in batch.iter().enumerate() {
        let solo = s
            .simulation_with_seed(100 + i as u64)
            .run_until_resolved(100_000);
        assert_eq!(r.resolved_at(), solo.resolved_at(), "trial {i}");
    }
}

#[test]
fn winner_is_last_knockout_survivor_for_fkn() {
    // For FKN the winner's solo broadcast knocks out every remaining
    // listener that can hear it; the winner itself must still be active.
    let d = uniform(64, 21);
    let params = SinrParams::default_single_hop().with_power_for(&d);
    let s = Scenario::builder()
        .deployment(d)
        .sinr(params)
        .protocol(ProtocolKind::fkn_default())
        .seed(21)
        .build()
        .expect("valid scenario");
    let mut sim = s.simulation();
    let r = sim.run_until_resolved(100_000);
    let winner = r.winner().expect("resolved");
    assert!(sim.is_active(winner), "winner was knocked out");
}

#[test]
fn analysis_machinery_composes_with_simulator_state() {
    let d = uniform(128, 2);
    let unit = d.min_link();
    let params = SinrParams::default_single_hop().with_power_for(&d);
    let mut sim = Simulation::new(d.clone(), Box::new(SinrChannel::new(params)), 2, |_| {
        Box::new(Fkn::new())
    });
    for _ in 0..5 {
        sim.step();
    }
    let active = sim.active_ids();
    if active.len() >= 2 {
        let classes = LinkClasses::partition(d.points(), &active, unit);
        let total: usize = classes.sizes().iter().sum();
        assert_eq!(total, active.len());
        let good = GoodNodes::classify(d.points(), &active, &classes, 3.0);
        for &u in &active {
            if classes.class_of(u).is_none() {
                assert!(!good.is_good(u));
            }
        }
    }
}

#[test]
fn experiments_registry_smoke() {
    use fading::experiments::{run_by_id, ExperimentConfig};
    let mut cfg = ExperimentConfig::smoke();
    cfg.trials = 3;
    cfg.max_n_pow2 = 6;
    for id in ["e1", "e7", "e10"] {
        let t = run_by_id(id, &cfg).expect("known id");
        assert!(!t.is_empty(), "{id} empty");
        // Every table renders and serializes.
        assert!(t.render().contains("##"));
        assert!(!t.to_csv().is_empty());
    }
}

#[test]
fn theory_predictions_are_consistent_with_measurements() {
    // A loose sanity link between `theory` and the simulator: FKN at n = 256
    // should resolve within 10× the unit-constant prediction.
    let d = uniform(256, 4);
    let r = d.link_ratio();
    let params = SinrParams::default_single_hop().with_power_for(&d);
    let s = Scenario::builder()
        .deployment(d)
        .sinr(params)
        .protocol(ProtocolKind::fkn_default())
        .seed(50)
        .build()
        .expect("valid scenario");
    let results = s.montecarlo(10, 4, 1_000_000);
    let summary = montecarlo::Summary::from_results(&results);
    assert_eq!(summary.success_rate, 1.0);
    let predicted = fading::theory::fkn_rounds(256, r, 1.0);
    assert!(
        summary.mean_rounds < 10.0 * predicted,
        "measured {} vs predicted unit {}",
        summary.mean_rounds,
        predicted
    );
}
