//! Property tests over the facade: arbitrary valid deployments and seeds
//! must always yield resolvable, reproducible, invariant-respecting runs.

use fading::prelude::*;
use proptest::prelude::*;

/// Deployments from a jittered lattice (non-coincident by construction),
/// with random size and spacing.
fn arb_deployment() -> impl Strategy<Value = Deployment> {
    (2usize..60, 1.0..8.0f64, any::<u64>()).prop_map(|(n, spacing, seed)| {
        let cols = (n as f64).sqrt().ceil() as usize;
        let rows = n.div_ceil(cols);
        fading::geom::generators::grid_lattice(cols, rows, spacing, 0.3, seed)
            .expect("valid lattice parameters")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// FKN resolves on any reasonable deployment, and the winner is one of
    /// the deployed nodes.
    #[test]
    fn fkn_always_resolves(d in arb_deployment(), seed in any::<u64>()) {
        let params = SinrParams::default_single_hop().with_power_for(&d);
        let n = d.len();
        let scenario = Scenario::builder()
            .deployment(d)
            .sinr(params)
            .protocol(ProtocolKind::fkn_default())
            .seed(seed)
            .build()
            .expect("valid scenario");
        let result = scenario.run(500_000);
        prop_assert!(result.resolved());
        let winner = result.winner().expect("resolved");
        prop_assert!(winner < n);
        prop_assert!(result.final_active() >= 1);
        prop_assert!(result.final_active() <= n);
    }

    /// Runs are bitwise reproducible per seed.
    #[test]
    fn runs_are_deterministic(d in arb_deployment(), seed in any::<u64>()) {
        let params = SinrParams::default_single_hop().with_power_for(&d);
        let build = || Scenario::builder()
            .deployment(d.clone())
            .sinr(params)
            .protocol(ProtocolKind::fkn_default())
            .seed(seed)
            .trace_level(TraceLevel::Full)
            .build()
            .expect("valid scenario");
        let a = build().run(500_000);
        let b = build().run(500_000);
        prop_assert_eq!(a.resolved_at(), b.resolved_at());
        prop_assert_eq!(a.trace(), b.trace());
    }

    /// The active count never increases over a run (knockouts are
    /// permanent), and transmitter counts never exceed active counts.
    #[test]
    fn active_counts_are_monotone(d in arb_deployment(), seed in any::<u64>()) {
        let params = SinrParams::default_single_hop().with_power_for(&d);
        let scenario = Scenario::builder()
            .deployment(d)
            .sinr(params)
            .protocol(ProtocolKind::fkn_default())
            .seed(seed)
            .trace_level(TraceLevel::Counts)
            .build()
            .expect("valid scenario");
        let result = scenario.run(500_000);
        let rounds = result.trace().rounds();
        for w in rounds.windows(2) {
            prop_assert!(w[1].active_before <= w[0].active_before);
        }
        for r in rounds {
            prop_assert!(r.transmitters <= r.active_before);
            prop_assert!(r.knocked_out <= r.active_before);
        }
    }

    /// Link classes computed on any live snapshot partition the active set.
    #[test]
    fn link_classes_partition_active_set(d in arb_deployment(), steps in 0u64..20) {
        let params = SinrParams::default_single_hop().with_power_for(&d);
        let unit = d.min_link();
        let mut sim = Simulation::new(
            d.clone(),
            Box::new(SinrChannel::new(params)),
            3,
            |_| Box::new(Fkn::new()),
        );
        for _ in 0..steps {
            sim.step();
        }
        let active = sim.active_ids();
        let classes = LinkClasses::partition(d.points(), &active, unit);
        if active.len() >= 2 {
            let total: usize = classes.sizes().iter().sum();
            prop_assert_eq!(total, active.len());
            for &u in &active {
                prop_assert!(classes.class_of(u).is_some());
            }
        } else {
            prop_assert_eq!(classes.num_classes(), 0);
        }
    }

    /// The hitting game's winning condition is symmetric in the proposal
    /// order and stable under permutation.
    #[test]
    fn hitting_win_condition_is_set_semantics(
        k in 4usize..64,
        seed in any::<u64>(),
        mut proposal in prop::collection::vec(0usize..64, 0..32),
    ) {
        proposal.retain(|&x| x < k);
        let game = RestrictedHitting::new(k, seed).expect("k >= 2");
        let forward = game.is_winning(&proposal);
        proposal.reverse();
        prop_assert_eq!(game.is_winning(&proposal), forward);
    }
}
