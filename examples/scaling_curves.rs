//! Terminal rendering of the paper's headline scaling picture: measured
//! rounds for FKN-on-SINR vs Decay-on-radio, with the theory curves
//! overlaid, as ASCII plots.
//!
//! ```text
//! cargo run --release --example scaling_curves
//! ```

use fading::plot::{AsciiPlot, Series};
use fading::prelude::*;

fn mean_rounds(n: usize, trials: usize, make: impl Fn(u64) -> Simulation + Sync) -> f64 {
    let results = montecarlo::run_trials(trials, 4, 0, |seed| {
        make(seed).run_until_resolved(2_000_000)
    });
    let s = montecarlo::Summary::from_results(&results);
    assert_eq!(s.success_rate, 1.0, "n={n} had failures");
    s.mean_rounds
}

fn main() {
    let ns = [64usize, 128, 256, 512, 1024, 2048];
    let trials = 30;

    let mut fkn_points = Vec::new();
    let mut decay_points = Vec::new();
    for &n in &ns {
        let fkn = mean_rounds(n, trials, |seed| {
            let d = Deployment::uniform_density(n, 0.25, seed);
            let params = SinrParams::default_single_hop().with_power_for(&d);
            Simulation::new(d, Box::new(SinrChannel::new(params)), seed, |_| {
                Box::new(Fkn::new())
            })
        });
        let decay = mean_rounds(n, trials, |seed| {
            let d = Deployment::uniform_density(n, 0.25, seed);
            Simulation::new(d, Box::new(RadioChannel::new()), seed, |_| {
                Box::new(Decay::without_knockout())
            })
        });
        let x = (n as f64).log2();
        fkn_points.push((x, fkn));
        decay_points.push((x, decay));
        println!(
            "n = {n:>5}: fkn {fkn:>6.1} rounds | decay {decay:>6.1} rounds | speedup {:.1}x",
            decay / fkn
        );
    }

    // Theory overlays, scaled through the first measured point.
    let c_fkn = fkn_points[0].1 / fkn_points[0].0;
    let c_decay = decay_points[0].1 / (decay_points[0].0 * decay_points[0].0);
    let fkn_theory: Vec<(f64, f64)> = fkn_points.iter().map(|&(x, _)| (x, c_fkn * x)).collect();
    let decay_theory: Vec<(f64, f64)> = decay_points
        .iter()
        .map(|&(x, _)| (x, c_decay * x * x))
        .collect();

    let plot = AsciiPlot::new("mean rounds vs log2(n)", 60, 18)
        .x_label("log2(n)")
        .y_label("rounds")
        .series(Series::new("c*log2(n) theory", '.', fkn_theory))
        .series(Series::new("c*log2^2(n) theory", ',', decay_theory))
        .series(Series::new("fkn @ sinr", 'F', fkn_points))
        .series(Series::new("decay @ radio", 'D', decay_points));
    println!("\n{plot}");
    println!(
        "the F curve tracks the '.' logarithmic overlay; the D curve tracks the\n\
         ',' quadratic overlay — the square-root improvement of Theorem 1."
    );
}
