//! Quickstart: run the paper's contention-resolution algorithm once and
//! watch it work.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use fading::prelude::*;

fn main() {
    // 1. Deploy 64 wireless nodes uniformly at random in a 40×40 area.
    let deployment = Deployment::uniform_square(64, 40.0, 7);
    println!(
        "deployment: n = {}, shortest link = {:.2}, longest link = {:.2}, R = {:.1}",
        deployment.len(),
        deployment.min_link(),
        deployment.max_link(),
        deployment.link_ratio()
    );

    // 2. The paper's fading channel: reception is governed by the SINR
    //    equation with path loss alpha = 3, threshold beta = 2, noise 1.
    let params = SinrParams::default_single_hop();
    params
        .admits_single_hop(&deployment)
        .expect("power is high enough for a single-hop network");

    // 3. Every node runs the paper's algorithm: broadcast with probability
    //    1/4 each round; go quiet forever after hearing anything.
    let scenario = Scenario::builder()
        .deployment(deployment)
        .sinr(params)
        .protocol(ProtocolKind::fkn_default())
        .seed(42)
        .trace_level(TraceLevel::Counts)
        .build()
        .expect("valid scenario");

    // 4. Run until some node transmits alone — contention resolved.
    let result = scenario.run(10_000);
    assert!(result.resolved());
    println!(
        "resolved in {} rounds (theory: O(log n + log R) ≈ {:.0} round-units); winner: node {}",
        result.resolved_at().expect("resolved"),
        fading::theory::fkn_rounds(64, scenario.deployment().link_ratio(), 1.0),
        result.winner().expect("resolved"),
    );

    println!("\nround | active | transmitters | knocked out");
    for r in result.trace().rounds() {
        println!(
            "{:>5} | {:>6} | {:>12} | {:>11}",
            r.round, r.active_before, r.transmitters, r.knocked_out
        );
    }

    // 5. The same scenario over many seeds: the high-probability picture.
    let summary = montecarlo::Summary::from_results(&scenario.montecarlo(100, 4, 10_000));
    println!(
        "\nover 100 seeds: success rate {:.2}, mean {:.1} rounds, p95 {:.1}, max {}",
        summary.success_rate, summary.mean_rounds, summary.p95_rounds, summary.max_rounds
    );
}
