//! The adversarial regime: a chain of relay nodes down a long warehouse
//! aisle, with link lengths growing geometrically — the footnote-1 world
//! where `R` is exponential in `n` and the `log R` term dominates
//! `O(log n + log R)`.
//!
//! Here the trade-off between the paper's algorithm (`R`-sensitive) and the
//! Jurdziński–Stachowiak baseline (`R`-insensitive, but needs a size bound)
//! flips — and the paper's remedy, interleaving the two, gets the best of
//! both within a factor of 2.
//!
//! ```text
//! cargo run --release --example warehouse_chain
//! ```

use fading::prelude::*;

fn measure(kind: ProtocolKind, ratio: f64, trials: usize) -> montecarlo::Summary {
    let results = montecarlo::run_trials(trials, 4, 20, |seed| {
        let deployment = generators::geometric_line(24, ratio).expect("ratio >= n-1");
        let params = SinrParams::default_single_hop().with_power_for(&deployment);
        let mut sim = Simulation::new(deployment, Box::new(SinrChannel::new(params)), seed, |id| {
            kind.build(id)
        });
        sim.run_until_resolved(1_000_000)
    });
    montecarlo::Summary::from_results(&results)
}

fn main() {
    let n = 24;
    println!("warehouse chain: n = {n} relays, link ratio R swept to extremes\n");
    println!("      R | fkn mean | js15 mean | interleaved mean");
    println!("--------|----------|-----------|------------------");
    for pow in [5u32, 10, 20, 30, 40] {
        let ratio = 2f64.powi(pow as i32);
        let fkn = measure(ProtocolKind::fkn_default(), ratio, 30);
        let js = measure(
            ProtocolKind::JurdzinskiStachowiak { n_bound: 2 * n },
            ratio,
            30,
        );
        let combo = measure(
            ProtocolKind::FknInterleavedJs {
                p: 0.25,
                n_bound: 2 * n,
            },
            ratio,
            30,
        );
        println!(
            "   2^{pow:<3}| {:>8.1} | {:>9.1} | {:>16.1}",
            fkn.mean_rounds, js.mean_rounds, combo.mean_rounds
        );
    }
    println!(
        "\nTheorem 1 allows fkn to slow with log R, but measured it stays flat\n\
         (chains empty their link classes concurrently — see E2); js15 is flat\n\
         by design; the interleaved protocol tracks the winner within a factor\n\
         ~2 — the paper's prescription when R is unknown."
    );
}
