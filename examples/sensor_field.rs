//! A realistic workload from the paper's motivation: a dense sensor field
//! wakes up after an event, and every sensor wants the channel. Clustered
//! deployments span many link classes — the hard case the paper's link-class
//! analysis is built for.
//!
//! The example compares the paper's algorithm against the classical radio
//! network strategy ported unchanged to the same physical channel, plus
//! size-aware baselines.
//!
//! ```text
//! cargo run --release --example sensor_field
//! ```

use fading::prelude::*;

fn measure(kind: ProtocolKind, trials: usize) -> montecarlo::Summary {
    let results = montecarlo::run_trials(trials, 4, 10, |seed| {
        // 12 clusters of 32 sensors each: tight intra-cluster links (class
        // ~0) plus long inter-cluster links (classes 6+).
        let deployment =
            generators::clustered(12, 32, 0.8, 300.0, seed).expect("valid cluster parameters");
        let params = SinrParams::default_single_hop().with_power_for(&deployment);
        let mut sim = Simulation::new(deployment, Box::new(SinrChannel::new(params)), seed, |id| {
            kind.build(id)
        });
        sim.run_until_resolved(1_000_000)
    });
    montecarlo::Summary::from_results(&results)
}

fn main() {
    let n = 12 * 32;
    println!("sensor field: {n} sensors in 12 clusters, SINR channel\n");

    // Show the link-class structure of one instance.
    let d = generators::clustered(12, 32, 0.8, 300.0, 10).expect("valid parameters");
    let active: Vec<usize> = (0..d.len()).collect();
    let classes = LinkClasses::partition(d.points(), &active, d.min_link());
    println!(
        "link ratio R = {:.0}; occupied link classes: {:?}",
        d.link_ratio(),
        classes.sizes()
    );

    println!("\nprotocol                      | success | mean rounds | p95");
    println!("------------------------------|---------|-------------|------");
    let contenders = [
        ("fkn (paper, knows nothing)", ProtocolKind::fkn_default()),
        ("decay-classic (radio port)", ProtocolKind::DecayClassic),
        (
            "js15 (knows N >= n)",
            ProtocolKind::JurdzinskiStachowiak { n_bound: 2 * n },
        ),
        ("aloha (knows n exactly)", ProtocolKind::Aloha { n }),
    ];
    for (label, kind) in contenders {
        let s = measure(kind, 40);
        println!(
            "{label:<30}| {:>7.2} | {:>11.1} | {:>5.1}",
            s.success_rate, s.mean_rounds, s.p95_rounds
        );
    }

    println!(
        "\nthe paper's point: the first row needs no network knowledge at all,\n\
         yet lands within a small constant of the omniscient ALOHA row and far\n\
         ahead of the radio-network-model strategy."
    );
}
