//! Contention resolution as a primitive: TDMA-style slot assignment by
//! repeated elections.
//!
//! The paper's introduction notes that contention resolution "reduces to
//! most non-trivial tasks in MAC models". This example builds one such
//! task: `k` nodes each need a dedicated slot; we run the paper's algorithm
//! repeatedly, removing each round's winner from contention, until every
//! node owns a slot — an `O(k·log n)`-round schedule built from nothing but
//! the CR primitive.
//!
//! ```text
//! cargo run --release --example slot_assignment
//! ```

use fading::prelude::*;

fn main() {
    let n = 48;
    let slots_needed = 8;
    let deployment = Deployment::uniform_square(n, 30.0, 13);
    let params = SinrParams::default_single_hop().with_power_for(&deployment);

    println!("assigning {slots_needed} slots among {n} nodes by repeated contention resolution\n");
    println!("slot | winner | rounds | cumulative rounds");
    println!("-----|--------|--------|-------------------");

    let mut owners: Vec<usize> = Vec::new();
    let mut cumulative = 0u64;
    for slot in 0..slots_needed {
        // Nodes that already own a slot sit the next election out: model
        // them as initially inactive FKN instances.
        let excluded = owners.clone();
        let mut sim = Simulation::new(
            deployment.clone(),
            Box::new(SinrChannel::new(params)),
            1000 + slot as u64,
            |id| {
                if excluded.contains(&id) {
                    // An already-served node: permanently silent.
                    Box::new(Sleeper) as Box<dyn Protocol>
                } else {
                    Box::new(Fkn::new())
                }
            },
        );
        let result = sim.run_until_resolved(100_000);
        let winner = result.winner().expect("election resolves");
        assert!(
            !owners.contains(&winner),
            "winner {winner} already owns a slot"
        );
        cumulative += result.rounds_executed();
        println!(
            "{slot:>4} | {winner:>6} | {:>6} | {cumulative:>17}",
            result.rounds_executed()
        );
        owners.push(winner);
    }

    println!(
        "\n{slots_needed} distinct owners elected in {cumulative} total rounds \
         (~{:.1} rounds per slot; theory: O(log n) each).",
        cumulative as f64 / slots_needed as f64
    );
}

/// A node that has already been served: never acts, never contends.
#[derive(Debug)]
struct Sleeper;

impl Protocol for Sleeper {
    fn act(&mut self, _round: u64, _rng: &mut rand::rngs::SmallRng) -> Action {
        Action::Listen
    }
    fn feedback(&mut self, _round: u64, _rx: &Reception) {}
    fn is_active(&self) -> bool {
        false
    }
    fn name(&self) -> &'static str {
        "sleeper"
    }
}
