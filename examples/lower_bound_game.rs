//! The lower-bound machinery of §4, live: the restricted k-hitting game,
//! four player strategies, and the Lemma 14 reduction that turns any
//! contention-resolution protocol into a player.
//!
//! ```text
//! cargo run --release --example lower_bound_game
//! ```

use fading::prelude::*;

fn mean_rounds<F>(k: usize, trials: usize, mut make: F) -> (f64, u64)
where
    F: FnMut(u64) -> Box<dyn HittingPlayer>,
{
    let mut total = 0u64;
    let mut worst = 0u64;
    let mut wins = 0usize;
    for seed in 0..trials as u64 {
        let mut game = RestrictedHitting::new(k, seed).expect("k >= 2");
        let mut player = make(seed);
        if let Some(r) = game.play(player.as_mut(), 1_000_000, seed) {
            total += r;
            worst = worst.max(r);
            wins += 1;
        }
    }
    (total as f64 / wins.max(1) as f64, worst)
}

fn main() {
    println!("restricted k-hitting game: referee hides a 2-element target;");
    println!("win by proposing a set covering exactly one element.\n");

    println!("      k | halving mean/worst | random mean | fkn-reduction mean | singleton mean");
    println!("--------|--------------------|-------------|--------------------|---------------");
    for pow in [4u32, 8, 12] {
        let k = 1usize << pow;
        let trials = 100;
        let (h_mean, h_worst) = mean_rounds(k, trials, |_| Box::new(HalvingPlayer::new(k)));
        let (r_mean, _) = mean_rounds(k, trials, |_| Box::new(UniformRandomPlayer::new(k)));
        let (f_mean, _) = mean_rounds(k, trials, |seed| {
            Box::new(ProtocolPlayer::new(k, seed, |_| Box::new(Fkn::new())))
        });
        let (s_mean, _) = mean_rounds(k, trials, |_| {
            Box::new(fading::hitting::SingletonPlayer::new(k))
        });
        println!(
            "   2^{pow:<3}| {h_mean:>10.1} / {h_worst:<4} | {r_mean:>11.1} | {f_mean:>18.1} | {s_mean:>13.1}"
        );
    }

    println!(
        "\nLemma 13: winning with probability 1 - 1/k takes Ω(log k) rounds —\n\
         the halving player's worst case (= ceil(log2 k)) is the matching upper\n\
         bound. Lemma 14: the fkn-reduction column shows a real contention-\n\
         resolution protocol playing the game through the simulation argument."
    );

    // The two-player game the reduction routes through.
    println!("\ntwo-player contention resolution with FKN (1000 seeds):");
    let game = TwoPlayerCr::new(|_| Box::new(Fkn::new()));
    let rounds: Vec<u64> = game
        .play_many(1000, 0, 100_000)
        .into_iter()
        .flatten()
        .collect();
    let mean = rounds.iter().sum::<u64>() as f64 / rounds.len() as f64;
    let max = rounds.iter().max().copied().unwrap_or(0);
    println!("  mean {mean:.2} rounds (theory 8/3 ≈ 2.67), worst observed {max}");
}
