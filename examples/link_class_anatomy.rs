//! Anatomy of one execution: watch the paper's §3 analysis objects — link
//! classes, good-node fractions, the separated subsets `S_i`, and the §3.3
//! class-bound schedule — evolve over a live run of the algorithm.
//!
//! ```text
//! cargo run --release --example link_class_anatomy
//! ```

use fading::analysis::separated_subset;
use fading::prelude::*;

fn main() {
    let n = 384;
    let deployment = generators::clustered(8, 48, 0.7, 220.0, 4).expect("valid parameters");
    let unit = deployment.min_link();
    let params = SinrParams::default_single_hop().with_power_for(&deployment);
    println!(
        "n = {}, R = {:.0}, {} potential link classes\n",
        n,
        deployment.link_ratio(),
        deployment.num_link_classes()
    );

    let mut sim = Simulation::new(
        deployment.clone(),
        Box::new(SinrChannel::new(params)),
        9,
        |_| Box::new(Fkn::new()),
    );

    let sched =
        ClassBoundSchedule::new(n, deployment.num_link_classes(), ScheduleParams::default());
    println!(
        "schedule: gamma_slow = {:.3}, stagger l = {}, horizon T = {}\n",
        sched.gamma_slow(),
        sched.stagger(),
        sched.horizon()
    );

    println!("round | active | class sizes (n_0, n_1, …) | good% smallest | |S_i|");
    println!("------|--------|----------------------------|----------------|------");
    let mut series: Vec<Vec<usize>> = Vec::new();
    for round in 0..10_000u64 {
        let active = sim.active_ids();
        let classes = LinkClasses::partition(deployment.points(), &active, unit);
        series.push(classes.sizes());

        if round % 2 == 0 || sim.resolved_at().is_some() {
            let (good_pct, s_len) = match classes.smallest_nonempty() {
                Some(i) => {
                    let good = GoodNodes::classify(deployment.points(), &active, &classes, 3.0);
                    let s_i = separated_subset(deployment.points(), &classes, &good, i, 2.0);
                    (100.0 * good.good_fraction(i), s_i.len())
                }
                None => (100.0, 0),
            };
            println!(
                "{:>5} | {:>6} | {:<26} | {:>13.0}% | {:>4}",
                round,
                active.len(),
                format!("{:?}", classes.sizes()),
                good_pct,
                s_len
            );
        }
        if sim.resolved_at().is_some() {
            break;
        }
        sim.step();
    }

    let resolved = sim.resolved_at().expect("run resolves");
    let adherence = sched.adherence(&series);
    println!("\nresolved in {resolved} rounds");
    println!(
        "schedule adherence: coverage {:.2}, monotone {}, completion round {:?} (horizon {})",
        adherence.coverage(),
        adherence.is_monotone(),
        adherence.completion_round(),
        sched.horizon()
    );
}
