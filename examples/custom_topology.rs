//! Bring-your-own topology: load surveyed node positions from CSV, check
//! the paper's single-hop admissibility condition, and resolve contention.
//!
//! ```text
//! cargo run --release --example custom_topology [path/to/nodes.csv]
//! ```
//!
//! With no argument, uses the embedded example topology (a small campus:
//! two buildings and a connecting corridor).

use fading::prelude::*;

const CAMPUS_CSV: &str = "\
x,y
# building A (dense office floor)
0,0
2,1
1,3
3,3
4,0
2,5
# corridor relays
12,4
22,5
# building B (lab hall)
30,0
31,2
33,1
32,4
30,5
34,4
";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let csv = match args.first() {
        Some(path) => std::fs::read_to_string(path).expect("read topology file"),
        None => CAMPUS_CSV.to_string(),
    };

    let deployment = Deployment::from_csv(&csv).expect("valid x,y CSV topology");
    println!(
        "loaded {} nodes: shortest link {:.2}, longest link {:.2}, R = {:.1}, {} link classes",
        deployment.len(),
        deployment.min_link(),
        deployment.max_link(),
        deployment.link_ratio(),
        deployment.num_link_classes(),
    );

    // Size the transmission power to the topology per the paper's
    // single-hop condition (P > 4·β·N·d^α for every pair, with 2x margin).
    let params = SinrParams::default_single_hop().with_power_for(&deployment);
    params
        .admits_single_hop(&deployment)
        .expect("auto-scaled power admits a single-hop network");
    println!(
        "power sized to {:.3e} for single-hop admissibility (alpha = {}, beta = {})",
        params.power(),
        params.alpha(),
        params.beta()
    );

    // Show the link-class structure the analysis would see.
    let active: Vec<usize> = (0..deployment.len()).collect();
    let classes = LinkClasses::partition(deployment.points(), &active, deployment.min_link());
    println!("link-class profile (n_0, n_1, …): {:?}", classes.sizes());

    // Resolve contention over many seeds.
    let scenario = Scenario::builder()
        .deployment(deployment)
        .sinr(params)
        .protocol(ProtocolKind::fkn_default())
        .seed(7)
        .build()
        .expect("valid scenario");
    let summary = montecarlo::Summary::from_results(&scenario.montecarlo(200, 4, 100_000));
    println!(
        "FKN over 200 seeds: success {:.2}, mean {:.1} rounds, p95 {:.1}, max {}",
        summary.success_rate, summary.mean_rounds, summary.p95_rounds, summary.max_rounds
    );
    println!(
        "(round-trip check: the topology re-exports as {} CSV bytes)",
        scenario.deployment().to_csv().len()
    );
}
