//! Offline stand-in for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its public data types
//! as forward-looking annotations, but nothing in the workspace serializes
//! through serde traits (reports are written via `Display`/hand-rolled
//! formatting). In network-isolated builds the real serde stack is
//! unavailable, so these derives expand to nothing: the annotation is kept
//! at zero cost, and any future *use* of serde serialization will fail to
//! compile loudly rather than silently misbehave.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
