//! Offline stand-in for `proptest`.
//!
//! Implements the property-testing API subset this workspace uses —
//! [`proptest!`], strategies over ranges/tuples/collections, `prop_map`,
//! `prop_oneof!`, `Just`, `any`, and `prop_assert*` — on top of the vendored
//! `rand` crate, with no other dependencies.
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case panics with the generated inputs via
//!   the assertion message; cases are deterministic per (test name, case
//!   index), so failures reproduce exactly by re-running the test.
//! * **Deterministic by default.** The real proptest derives its seed from
//!   the OS; this stand-in seeds from the test name, so CI runs are
//!   reproducible (a `PROPTEST_RNG_SEED` env var perturbs the base seed for
//!   exploratory fuzzing).
//! * `prop_assert!`/`prop_assert_eq!` panic immediately instead of
//!   returning `Err`, which is equivalent under "no shrinking".

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Everything a property test file needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};

    /// Mirrors the real prelude's `prop` module path (`prop::collection::…`).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines property tests: each `fn name(arg in strategy, …) { body }`
/// becomes a `#[test]` that runs the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($argpat:pat_param in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            for __case in 0..config.cases {
                let mut __rng = $crate::test_runner::case_rng(stringify!($name), __case);
                $(let $argpat = $crate::strategy::Strategy::generate(&$strat, &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
}

/// Skips the current generated case when its precondition does not hold.
///
/// Expands to a `continue` of the case loop, so it is only valid directly
/// inside a `proptest!` test body (not inside a nested loop).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !$cond {
            continue;
        }
    };
}

/// Asserts a condition inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Picks uniformly among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 0usize..10, y in -1.0..1.0f64) {
            prop_assert!(x < 10);
            prop_assert!((-1.0..1.0).contains(&y));
        }

        #[test]
        fn vec_strategy_respects_size(v in prop::collection::vec(0u64..5, 2..7)) {
            prop_assert!((2..7).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn prop_map_applies(mut doubled in (0u32..100).prop_map(|x| x * 2)) {
            prop_assert_eq!(doubled % 2, 0);
            doubled += 2; // exercise `mut` argument patterns
            prop_assert_eq!(doubled % 2, 0);
        }

        #[test]
        fn oneof_covers_all_branches(x in prop_oneof![Just(1u8), Just(2u8), 3u8..5]) {
            prop_assert!((1..5).contains(&x));
        }

        #[test]
        fn tuples_and_any(t in (any::<bool>(), any::<u64>(), 0.0..1.0f64)) {
            let (_b, _u, f) = t;
            prop_assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn cases_are_deterministic_per_name() {
        use crate::strategy::Strategy;
        let s = 0u64..1_000_000;
        let a: Vec<u64> = (0..10)
            .map(|i| s.generate(&mut crate::test_runner::case_rng("det", i)))
            .collect();
        let b: Vec<u64> = (0..10)
            .map(|i| s.generate(&mut crate::test_runner::case_rng("det", i)))
            .collect();
        assert_eq!(a, b);
        // A different test name yields a different stream.
        let c: Vec<u64> = (0..10)
            .map(|i| s.generate(&mut crate::test_runner::case_rng("other", i)))
            .collect();
        assert_ne!(a, c);
    }
}
