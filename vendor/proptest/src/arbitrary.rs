//! The `any::<T>()` entry point.

use std::marker::PhantomData;

use rand::rngs::SmallRng;
use rand::{Rng, SampleStandard};

use crate::strategy::{Any, Strategy};

/// Strategy over the full uniform domain of `T` (primitives only).
#[must_use]
pub fn any<T: SampleStandard>() -> Any<T> {
    Any(PhantomData)
}

impl<T: SampleStandard> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut SmallRng) -> T {
        rng.gen::<T>()
    }
}
