//! Collection strategies (`prop::collection::vec`).

use std::ops::{Range, RangeInclusive};

use rand::rngs::SmallRng;
use rand::Rng;

use crate::strategy::Strategy;

/// An inclusive size interval for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        let (lo, hi) = r.into_inner();
        assert!(lo <= hi, "empty collection size range");
        SizeRange { lo, hi }
    }
}

/// Generates `Vec`s whose length is drawn from `size` and whose elements
/// come from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// The strategy returned by [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut SmallRng) -> Self::Value {
        let len = rng.gen_range(self.size.lo..=self.size.hi);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
