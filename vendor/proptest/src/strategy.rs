//! Value-generation strategies (no shrinking; see the crate docs).

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use rand::rngs::SmallRng;
use rand::Rng;

/// A recipe for generating values of one type from a seeded RNG.
///
/// Object-safe: combinators like [`Strategy::prop_map`] require
/// `Self: Sized`, so `Box<dyn Strategy<Value = T>>` works (see
/// [`BoxedStrategy`]).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut SmallRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut SmallRng) -> T {
        (**self).generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut SmallRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among strategies of one value type ([`prop_oneof!`]).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; panics if `options` is empty.
    #[must_use]
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one branch");
        Union { options }
    }
}

impl<T> std::fmt::Debug for Union<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Union({} options)", self.options.len())
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut SmallRng) -> T {
        let k = rng.gen_range(0..self.options.len());
        self.options[k].generate(rng)
    }
}

/// Uniform strategy over the full domain of a type ([`crate::arbitrary::any`]).
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(pub(crate) PhantomData<T>);

macro_rules! impl_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+),)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A, B),
    (A, B, C),
    (A, B, C, D),
    (A, B, C, D, E),
    (A, B, C, D, E, F),
}
