//! Test-run configuration and per-case RNG derivation.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Configuration for one `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test function.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    /// 256 cases, matching the real proptest's default.
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Derives the deterministic RNG for one test case.
///
/// The seed mixes an FNV-1a hash of the test name with the case index, so
/// every test function explores an independent deterministic stream. Set
/// `PROPTEST_RNG_SEED=<u64>` to perturb the base seed for exploratory runs.
#[must_use]
pub fn case_rng(test_name: &str, case: u32) -> SmallRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    let env_seed = std::env::var("PROPTEST_RNG_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(0);
    SmallRng::seed_from_u64(h ^ env_seed ^ (u64::from(case) << 32))
}
