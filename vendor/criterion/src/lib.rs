//! Offline stand-in for `criterion`.
//!
//! Implements the benchmarking API subset this workspace's benches use —
//! `Criterion`, `benchmark_group`, `bench_function` / `bench_with_input`,
//! `Bencher::iter`, `BenchmarkId`, and the `criterion_group!` /
//! `criterion_main!` macros — as a plain wall-clock harness with no
//! dependencies.
//!
//! Compared to the real crate there is no statistical analysis, HTML
//! reporting, or outlier rejection: each benchmark warms up for the
//! configured duration, then measures batches until the measurement window
//! elapses and reports the mean time per iteration to stdout as
//!
//! ```text
//! bench group/id ... 123.4 ns/iter (n iterations)
//! ```
//!
//! which is sufficient for the relative (cached vs. uncached, model vs.
//! model) comparisons the workspace records.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a value (re-export of
/// `std::hint::black_box`).
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Harness configuration and entry point (stand-in for `criterion::Criterion`).
#[derive(Debug, Clone)]
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up: Duration::from_millis(500),
            measurement: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    /// Accepted for compatibility; this harness never produces plots.
    #[must_use]
    pub fn without_plots(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            warm_up: self.warm_up,
            measurement: self.measurement,
            _parent: self,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut routine: F)
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_bench(None, &id, self.warm_up, self.measurement, &mut routine);
    }
}

/// A group of benchmarks sharing timing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    warm_up: Duration,
    measurement: Duration,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the warm-up duration for benchmarks in this group.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Sets the measurement window for benchmarks in this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Accepted for compatibility; this harness sizes samples by time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Benchmarks `routine` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut routine: F)
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_bench(
            Some(&self.name),
            &id,
            self.warm_up,
            self.measurement,
            &mut routine,
        );
    }

    /// Benchmarks `routine` under `id`, passing it `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut routine: F,
    ) where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        run_bench(Some(&self.name), &id, self.warm_up, self.measurement, &mut |b| {
            routine(b, input)
        });
    }

    /// Ends the group (no-op; provided for API compatibility).
    pub fn finish(self) {}
}

fn run_bench(
    group: Option<&str>,
    id: &BenchmarkId,
    warm_up: Duration,
    measurement: Duration,
    routine: &mut dyn FnMut(&mut Bencher),
) {
    let mut bencher = Bencher {
        warm_up,
        measurement,
        report: None,
    };
    routine(&mut bencher);
    let label = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    match bencher.report {
        Some((per_iter_ns, iters)) => {
            println!("bench {label} ... {} ({iters} iterations)", format_ns(per_iter_ns));
        }
        None => println!("bench {label} ... no measurement (Bencher::iter never called)"),
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s/iter", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2} ms/iter", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2} µs/iter", ns / 1e3)
    } else {
        format!("{ns:.1} ns/iter")
    }
}

/// Passed to benchmark routines; [`Bencher::iter`] does the timing.
#[derive(Debug)]
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    report: Option<(f64, u64)>,
}

impl Bencher {
    /// Times `f`: warms up, then runs batches until the measurement window
    /// elapses, recording the mean wall-clock time per iteration.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        // Warm-up, also calibrating a batch size targeting ~1 ms per batch.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up {
            hint::black_box(f());
            warm_iters += 1;
        }
        let per_iter = self.warm_up.as_secs_f64() / warm_iters.max(1) as f64;
        let batch = ((1e-3 / per_iter) as u64).clamp(1, 1_000_000);

        let mut total_iters: u64 = 0;
        let start = Instant::now();
        loop {
            for _ in 0..batch {
                hint::black_box(f());
            }
            total_iters += batch;
            if start.elapsed() >= self.measurement {
                break;
            }
        }
        let per_iter_ns = start.elapsed().as_nanos() as f64 / total_iters as f64;
        self.report = Some((per_iter_ns, total_iters));
    }
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// An id combining a function name and a parameter, rendered `name/param`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            text: format!("{}/{parameter}", function_name.into()),
        }
    }

    /// An id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { text: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { text: s }
    }
}

/// Collects benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generates `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("t");
        group.warm_up_time(Duration::from_millis(10));
        group.measurement_time(Duration::from_millis(20));
        group.bench_with_input(BenchmarkId::new("sum", 100), &100u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>());
        });
        group.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 7).to_string(), "f/7");
        assert_eq!(BenchmarkId::from_parameter(3.5).to_string(), "3.5");
    }
}
