//! Offline stand-in for `serde`.
//!
//! Re-exports the no-op `Serialize`/`Deserialize` derive macros from the
//! vendored `serde_derive`, so `#[derive(Serialize, Deserialize)]`
//! annotations across the workspace compile in network-isolated builds.
//! See the `serde_derive` stand-in for the rationale.

#![forbid(unsafe_code)]

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
