//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// A small, fast, seedable PRNG: xoshiro256++ (Blackman–Vigna), the same
/// algorithm the real `rand 0.8` uses for 64-bit `SmallRng`.
///
/// Not cryptographically secure; statistically solid for simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SmallRng {
    /// The full internal xoshiro256++ state, for checkpointing. Restoring
    /// via [`SmallRng::from_state`] reproduces the exact output stream from
    /// this point on.
    #[must_use]
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator from a state captured by [`SmallRng::state`].
    ///
    /// The all-zero state is remapped to the same non-zero constants as
    /// [`SeedableRng::from_seed`] (xoshiro must never run from all zeros);
    /// every state actually captured from a live generator is non-zero and
    /// round-trips bit-exactly.
    #[must_use]
    pub fn from_state(s: [u64; 4]) -> Self {
        if s == [0; 4] {
            return Self::from_seed([0; 32]);
        }
        SmallRng { s }
    }
}

impl RngCore for SmallRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for SmallRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (lane, chunk) in s.iter_mut().zip(seed.chunks_exact(8)) {
            *lane = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        // xoshiro must not start from the all-zero state.
        if s == [0; 4] {
            s = [
                0x9E37_79B9_7F4A_7C15,
                0xBF58_476D_1CE4_E5B9,
                0x94D0_49BB_1331_11EB,
                0x2545_F491_4F6C_DD1D,
            ];
        }
        SmallRng { s }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_seed_is_remapped() {
        let mut rng = SmallRng::from_seed([0; 32]);
        // All-zero state would emit only zeros; the remap must not.
        let words: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        assert!(words.iter().any(|&w| w != 0));
    }

    #[test]
    fn state_round_trips_bit_exactly() {
        let mut rng = SmallRng::seed_from_u64(42);
        let _ = rng.next_u64();
        let saved = rng.state();
        let ahead: Vec<u64> = (0..8).map(|_| rng.next_u64()).collect();
        let mut restored = SmallRng::from_state(saved);
        let replay: Vec<u64> = (0..8).map(|_| restored.next_u64()).collect();
        assert_eq!(ahead, replay);
        assert_eq!(rng, restored);
    }

    #[test]
    fn zero_state_is_remapped_like_zero_seed() {
        assert_eq!(SmallRng::from_state([0; 4]), SmallRng::from_seed([0; 32]));
    }

    #[test]
    fn next_u32_uses_high_bits() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(1);
        assert_eq!(a.next_u32() as u64, b.next_u64() >> 32);
    }
}
