//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// A small, fast, seedable PRNG: xoshiro256++ (Blackman–Vigna), the same
/// algorithm the real `rand 0.8` uses for 64-bit `SmallRng`.
///
/// Not cryptographically secure; statistically solid for simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

impl RngCore for SmallRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for SmallRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (lane, chunk) in s.iter_mut().zip(seed.chunks_exact(8)) {
            *lane = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        // xoshiro must not start from the all-zero state.
        if s == [0; 4] {
            s = [
                0x9E37_79B9_7F4A_7C15,
                0xBF58_476D_1CE4_E5B9,
                0x94D0_49BB_1331_11EB,
                0x2545_F491_4F6C_DD1D,
            ];
        }
        SmallRng { s }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_seed_is_remapped() {
        let mut rng = SmallRng::from_seed([0; 32]);
        // All-zero state would emit only zeros; the remap must not.
        let words: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        assert!(words.iter().any(|&w| w != 0));
    }

    #[test]
    fn next_u32_uses_high_bits() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(1);
        assert_eq!(a.next_u32() as u64, b.next_u64() >> 32);
    }
}
