//! Offline stand-in for the `rand` crate.
//!
//! This workspace builds in network-isolated environments where crates.io is
//! unreachable, so the external `rand` dependency is replaced by this
//! vendored implementation of exactly the API subset the workspace uses:
//!
//! * [`rngs::SmallRng`] — a small, fast, seedable PRNG (xoshiro256++, the
//!   same algorithm the real `rand 0.8` uses for its 64-bit `SmallRng`).
//! * [`SeedableRng`] with `seed_from_u64` (SplitMix64 seed expansion, as in
//!   the real crate).
//! * [`Rng`] with `gen`, `gen_bool`, and `gen_range` over integer and float
//!   ranges.
//!
//! The generator is deterministic per seed and of standard statistical
//! quality, but its output stream is **not** bit-compatible with the real
//! `rand 0.8`: tests must assert distributional properties under fixed
//! seeds, never exact values of the upstream crate's stream.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod rngs;

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: uniformly distributed raw words.
pub trait RngCore {
    /// Returns the next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with uniformly distributed bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// A generator that can be constructed deterministically from a seed.
pub trait SeedableRng: Sized {
    /// The raw seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Constructs the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the generator from a `u64`, spreading it over the full
    /// seed with the SplitMix64 permutation (like the real `rand`).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = split_mix64_next(&mut sm).to_le_bytes();
            let len = chunk.len();
            chunk.copy_from_slice(&word[..len]);
        }
        Self::from_seed(seed)
    }
}

/// Advances a SplitMix64 state and returns the next output.
fn split_mix64_next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types that can be sampled from a generator's raw uniform output (the
/// stand-in for the real crate's `Standard` distribution).
pub trait SampleStandard {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleStandard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl SampleStandard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl SampleStandard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleStandard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

/// Range types that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty float range");
                let u: $t = SampleStandard::sample(rng);
                let v = self.start + (self.end - self.start) * u;
                // Guard the half-open upper bound against rounding.
                if v >= self.end { self.start } else { v }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty float range");
                let u: $t = SampleStandard::sample(rng);
                lo + (hi - lo) * u
            }
        }
    )*};
}
impl_range_float!(f32, f64);

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty integer range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = sample_below(rng, span);
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty integer range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span == 0 {
                    // Full-width inclusive range: any word is valid.
                    return rng.next_u64() as $t;
                }
                let v = sample_below(rng, span);
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform in `[0, span)` via unbiased rejection sampling (Lemire's method).
fn sample_below<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u64 {
    debug_assert!(span > 0 && span <= u128::from(u64::MAX) + 1);
    if span == u128::from(u64::MAX) + 1 {
        return rng.next_u64();
    }
    let span = span as u64;
    loop {
        let x = rng.next_u64();
        let m = u128::from(x) * u128::from(span);
        let low = m as u64;
        if low >= span || low >= (u64::MAX - span + 1) % span {
            return (m >> 64) as u64;
        }
    }
}

/// Convenience extension methods over [`RngCore`] (the user-facing trait).
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T` (floats in `[0, 1)`).
    fn gen<T: SampleStandard>(&mut self) -> T {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} not in [0, 1]");
        let u: f64 = self.gen();
        u < p
    }

    /// Draws a value uniformly from `range` (half-open or inclusive).
    fn gen_range<T, U>(&mut self, range: U) -> T
    where
        U: SampleRange<T>,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let a: u64 = SmallRng::seed_from_u64(1).gen();
        let b: u64 = SmallRng::seed_from_u64(2).gen();
        assert_ne!(a, b);
    }

    #[test]
    fn f64_samples_lie_in_unit_interval_and_spread() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut sum = 0.0;
        let n = 10_000;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = SmallRng::seed_from_u64(11);
        let n = 20_000;
        let hits = (0..n).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / f64::from(n);
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn int_range_is_uniform_and_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut counts = [0usize; 10];
        let n = 50_000;
        for _ in 0..n {
            let v: usize = rng.gen_range(0..10);
            counts[v] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let freq = c as f64 / n as f64;
            assert!((freq - 0.1).abs() < 0.01, "bucket {i}: {freq}");
        }
    }

    #[test]
    fn float_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..10_000 {
            let v: f64 = rng.gen_range(-2.5..7.5);
            assert!((-2.5..7.5).contains(&v));
        }
    }

    #[test]
    fn negative_integer_ranges_work() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..1_000 {
            let v: i64 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&v));
        }
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn avalanche_between_adjacent_seeds() {
        // seed_from_u64 must spread adjacent seeds far apart.
        let a: u64 = SmallRng::seed_from_u64(100).gen();
        let b: u64 = SmallRng::seed_from_u64(101).gen();
        let differing = (a ^ b).count_ones();
        assert!(differing > 8, "adjacent seeds too close: {differing} bits");
    }
}
